#!/usr/bin/env python3
"""Co-design methodology vs. a search-based lifelong MAPF baseline.

The paper's evaluation benchmarks the methodology against Iterated EECBS: the
baseline gets the start position of every agent of the co-design solution and
must route each agent through the same sequence of shelves and stations.  On
the largest instance the baseline fails to terminate within an hour while the
methodology finishes in about a minute.

This example reproduces the shape of that comparison at laptop scale: it
solves a WSP instance with the co-design pipeline, extracts the agents' visit
sequences, and replays growing prefixes of the team through the iterated
bounded-suboptimal planner, printing how the two runtimes scale with the team
size.

Run with:  python examples/baseline_comparison.py [--agents 4 8 12] [--goals 4]
"""

import argparse

from repro.analysis import scaling_report
from repro.core import WSPSolver
from repro.maps import fulfillment_center_1_small
from repro.mapf import IteratedPlanner, IteratedPlannerOptions, goal_sequences_from_plan
from repro.warehouse import Workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--agents", type=int, nargs="*", default=[4, 8, 12],
                        help="team-size prefixes handed to the baseline")
    parser.add_argument("--goals", type=int, default=4,
                        help="goals per agent given to the baseline")
    parser.add_argument("--time-limit", type=float, default=30.0,
                        help="per-run time limit for the baseline (seconds)")
    args = parser.parse_args()

    designed = fulfillment_center_1_small()
    warehouse = designed.warehouse
    workload = Workload.uniform(warehouse.catalog, 40)

    print(warehouse.summary())
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=1500)
    if not solution.succeeded:
        raise SystemExit(f"co-design solve failed: {solution.message}")
    print(f"co-design: {solution.num_agents} agents, "
          f"synthesis {solution.synthesis_seconds:.2f}s, "
          f"end-to-end {solution.total_seconds:.2f}s "
          f"(runtime is independent of the team-size prefixes below)")
    print()

    tasks = goal_sequences_from_plan(solution.plan, max_goals_per_agent=args.goals)
    rows = [("co-design (full team)", solution.num_agents, solution.total_seconds)]
    for team_size in args.agents:
        subset = tasks[: min(team_size, len(tasks))]
        planner = IteratedPlanner(
            warehouse.floorplan,
            IteratedPlannerOptions(engine="ecbs", time_limit=args.time_limit),
        )
        result = planner.solve(subset)
        label = f"iterated ECBS ({'done' if result.completed else 'TIMEOUT'})"
        rows.append((label, len(subset), result.runtime_seconds))
        print(f"baseline with {len(subset):3d} agents: {result.summary()}")

    print()
    print(scaling_report(rows))
    print()
    print("The baseline's runtime grows steeply with the team size (and hits the")
    print("time limit well before the full team), while the co-design runtime is")
    print("paid once for the whole team — the scaling contrast reported in Sec. V.")


if __name__ == "__main__":
    main()
