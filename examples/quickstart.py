#!/usr/bin/env python3
"""Quickstart: solve a small Warehouse Servicing Problem end to end.

This walks through the full methodology of the paper (Fig. 2) on a small
generated warehouse:

1. generate a warehouse together with a traffic system (co-design);
2. state a workload and a timestep limit (a WSP instance, Problem 3.1);
3. synthesize an agent flow set from the component + workload contracts;
4. decompose the flow set into agent cycles;
5. realize the cycles as a concrete, collision-free plan;
6. independently validate the plan and check that it services the workload.

Run with:  python examples/quickstart.py
"""

from repro.analysis import compute_plan_metrics, render_plan_frame, render_traffic_system
from repro.core import SolverOptions, WSPSolver
from repro.maps import figure1_warehouse, toy_warehouse
from repro.warehouse import PlanValidator, Workload


def show_figure1_model() -> None:
    """The Fig. 1 toy warehouse: the formal model without any planning."""
    warehouse = figure1_warehouse()
    floorplan = warehouse.floorplan
    print("=== Fig. 1 example warehouse (model only) ===")
    print(warehouse.summary())
    print(f"floorplan: {floorplan.summary()}")
    shelf_cells = sorted(floorplan.cell_of(v) for v in floorplan.shelf_access)
    station_cells = sorted(floorplan.cell_of(v) for v in floorplan.stations)
    print(f"shelf-access cells S: {shelf_cells}")
    print(f"station cells R:      {station_cells}")
    print()


def solve_toy_instance() -> None:
    """The full pipeline on the smallest generated warehouse."""
    print("=== Co-design pipeline on the toy warehouse ===")
    designed = toy_warehouse()
    warehouse = designed.warehouse
    traffic_system = designed.traffic_system
    print(warehouse.summary())
    print(traffic_system.summary())
    print()
    print("Traffic system (arrows point along components, '!' marks exits):")
    print(render_traffic_system(traffic_system))
    print()

    # A workload: two units of every product within 600 timesteps.
    workload = Workload.uniform(warehouse.catalog, 8)
    solver = WSPSolver(traffic_system, SolverOptions())
    solution = solver.solve(workload, horizon=600)

    print("--- stage by stage (the paper's Fig. 2 workflow) ---")
    print(f"1. flow synthesis:   {solution.flow_set.summary()}")
    print(f"                     model: {solution.synthesis.num_variables} variables, "
          f"{solution.synthesis.num_constraints} constraints, "
          f"{solution.synthesis.solve_seconds:.3f}s solve time")
    print(f"2. decomposition:    {solution.cycle_set.summary()}")
    print(f"3. realization:      {solution.realization.summary()}")
    report = PlanValidator(warehouse).validate(solution.plan)
    print(f"4. validation:       {report.summary()}")
    print(f"   services workload: {solution.services_workload}")
    print()

    metrics = compute_plan_metrics(solution.plan, workload)
    print("--- plan metrics ---")
    for key, value in metrics.as_dict().items():
        print(f"  {key:18s} {value:.3f}" if isinstance(value, float) else f"  {key:18s} {value}")
    print()
    print("Warehouse snapshot a few periods in (a = empty agent, A = loaded agent):")
    print(render_plan_frame(solution.plan, min(3 * solution.flow_set.cycle_time,
                                               solution.plan.horizon - 1)))
    print()
    print(solution.summary())


if __name__ == "__main__":
    show_figure1_model()
    solve_toy_instance()
