#!/usr/bin/env python3
"""Sorting-center scenario: the paper's package-sorting variant of the WSP.

A sorting center moves packages from perimeter bins to destination chutes.
Sec. V of the paper reduces it to a WSP instance (chute = shelf stocked with a
destination "product", bin = station); solving the instance and swapping
pickup / drop-off roles yields the sorting plan.  This example builds the
paper's sorting map, generates a package stream with a skewed destination
distribution, solves the reduced WSP and reports per-destination service.

Run with:        python examples/sorting_center.py
Fast variant:    python examples/sorting_center.py --small
"""

import argparse

import numpy as np

from repro.analysis import compute_plan_metrics, render_traffic_system
from repro.core import WSPSolver
from repro.maps import sorting_center, sorting_center_small
from repro.warehouse import Workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small preset (fast)")
    parser.add_argument("--packages", type=int, default=320, help="number of packages to sort")
    parser.add_argument("--horizon", type=int, default=3600, help="timestep limit T")
    parser.add_argument("--seed", type=int, default=7, help="random seed for the package stream")
    args = parser.parse_args()

    center = sorting_center_small() if args.small else sorting_center()
    packages = 32 if args.small else args.packages
    horizon = 1500 if args.small else args.horizon

    print(center.summary())
    print(center.traffic_system.summary())
    print()
    if args.small:
        print("Traffic system:")
        print(render_traffic_system(center.traffic_system))
        print()

    # A skewed package stream: a few destinations dominate (as in real sorting
    # centers); Workload.zipf keeps the total exact.
    workload = Workload.zipf(
        center.warehouse.catalog, packages, rng=np.random.default_rng(args.seed)
    )
    print(f"package stream: {workload.total_units} packages over "
          f"{workload.num_requested_products}/{center.num_chutes} destinations")

    solution = WSPSolver(center.traffic_system).solve(workload, horizon=horizon)
    if not solution.succeeded:
        print(f"INFEASIBLE: {solution.message}")
        return

    metrics = compute_plan_metrics(solution.plan, workload)
    print()
    print(f"agents:                {solution.num_agents}")
    print(f"flow synthesis:        {solution.synthesis_seconds:.2f}s")
    print(f"end-to-end:            {solution.total_seconds:.2f}s")
    print(f"plan feasible:         {solution.plan_is_feasible}")
    print(f"all packages sorted:   {solution.services_workload} "
          f"(by timestep {metrics.service_makespan})")
    print()

    delivered = solution.plan.delivered_units()
    print("per-destination service (top 10 by demand):")
    top = sorted(workload.as_dict().items(), key=lambda item: -item[1])[:10]
    for product, demand in top:
        print(
            f"  chute {product - 1:3d}: demanded {demand:4d}, "
            f"delivered {delivered.get(product, 0):4d}"
        )


if __name__ == "__main__":
    main()
