"""Failure injection & online recovery: the digital twin under disruption.

Solves one small instance, then executes the realized plan through the
digital twin under a ladder of disruption profiles — the nominal baseline,
each failure family in isolation, and a combined storm with and without the
online recovery policies.  Prints the resilience comparison table (throughput
retention, recovery actions, downtime, contract-breach windows) and the
disruption timeline of the storm run.

This is the falsifiable side of the paper's claim: the assume-guarantee
monitor watches the *degraded* system drift away from the synthesized flows
and names the broken contract when the disruptions push it past the slack.

Run with:
    PYTHONPATH=src python examples/resilient_simulation.py
"""

from repro.analysis import render_disruption_timeline, resilience_comparison_table
from repro.core import WSPSolver
from repro.experiments import ScenarioSpec
from repro.sim import SimulationConfig, parse_disruptions

PROFILES = (
    ("nominal", "none"),
    ("breakdowns", "breakdown:0.03:15"),
    ("slowdowns", "slowdown:0.05:20"),
    ("station outage", "outage:0.02:25"),
    ("blocked aisles", "block:0.03:10"),
    ("demand surge", "surge:0.08:3,deadline:60"),
    ("storm", "breakdown:0.02:12,slowdown:0.02:10,outage:0.01:20,block:0.02:8,surge:0.05:2"),
    ("storm, no recovery", "breakdown:0.02:12,slowdown:0.02:10,outage:0.01:20,block:0.02:8,surge:0.05:2,norecover"),
)


def main() -> None:
    spec = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
    )
    designed, workload = spec.build()
    solver = WSPSolver(designed.traffic_system)
    solution = solver.solve(workload, horizon=spec.horizon)
    if not solution.succeeded:
        raise SystemExit(f"solve failed: {solution.message}")
    print(solution.summary())
    print()

    reports, labels = [], []
    for label, profile in PROFILES:
        config = SimulationConfig(seed=7, disruptions=parse_disruptions(profile))
        report = solver.simulate(solution, config)
        reports.append(report)
        labels.append(label)
        verdict = "contracts ok" if report.contracts_ok else (
            f"{report.num_violations} contract violation(s)"
        )
        print(
            f"{label:>20s}: {report.units_served} units served, "
            f"retention {report.throughput_retention:.3f} — {verdict}"
        )

    print()
    print(resilience_comparison_table(reports, labels=labels))

    storm = reports[-2]
    print()
    print("Storm timeline (disruption/recovery event density):")
    print(render_disruption_timeline(storm.trace))


if __name__ == "__main__":
    main()
