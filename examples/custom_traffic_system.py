#!/usr/bin/env python3
"""Designing a custom traffic system by hand with the framework's rules.

The map generators in ``repro.maps`` emit ready-made traffic systems, but the
design framework of Sec. IV-A is exposed directly so an operator can lay out
their own components.  This example builds a small warehouse from an ASCII
drawing, partitions it into three hand-picked components (a station queue, a
boustrophedon shelving row, and a down-corridor transport), lets the validator
check every design rule, and then runs the full pipeline on the custom design.

Run with:  python examples/custom_traffic_system.py
"""

from repro.analysis import render_component_legend, render_traffic_system
from repro.core import WSPSolver
from repro.traffic import build_traffic_system, validate
from repro.warehouse import (
    FloorplanGraph,
    GridMap,
    LocationMatrix,
    ProductCatalog,
    Warehouse,
    Workload,
)

#: A single-slice warehouse: two shelf rows, stations on the bottom row, a
#: dedicated down-corridor column on the east edge.  The two ``@`` cells cap
#: the shelf rows on the side the circulation does not use (exactly like the
#: generated maps), so every shelf-access cell lies on a component.
#: (The last text line is row y = 0.)
ASCII_MAP = """
.........
.SSSSSS@.
.........
@SSSSSS..
.........
.TT..TT..
""".strip("\n")


def build_warehouse() -> Warehouse:
    grid = GridMap.from_ascii(ASCII_MAP, name="custom-warehouse")
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog(("widgets", "gadgets", "gizmos"))
    stock = LocationMatrix(catalog, floorplan)
    # Stock each product at an aisle cell adjacent to a shelf (a shelf-access
    # vertex) that lies on the shelving-row component designed below.
    stock.place(1, floorplan.vertex_at((1, 1)), 300)   # below the lower shelf row
    stock.place(2, floorplan.vertex_at((4, 3)), 300)   # middle aisle
    stock.place(3, floorplan.vertex_at((6, 5)), 300)   # above the upper shelf row
    warehouse = Warehouse(floorplan=floorplan, catalog=catalog, stock=stock)
    warehouse.validate()
    return warehouse


def design_traffic_system(warehouse: Warehouse):
    """Partition the floorplan into components by hand.

    Circulation: the station row flows west past both stations, feeds a
    boustrophedon shelving row that snakes up through the three aisles, and a
    down corridor on the east edge brings loaded agents back to the station
    row's entry.
    """

    def row(y, x0, x1):
        step = 1 if x0 <= x1 else -1
        return [(x, y) for x in range(x0, x1 + step, step)]

    def column(x, y0, y1):
        step = 1 if y0 <= y1 else -1
        return [(x, y) for y in range(y0, y1 + step, step)]

    serpentine = (
        row(1, 0, 7)            # bottom aisle, eastbound
        + column(7, 2, 3)       # turn up on the east side
        + row(3, 6, 0)          # middle aisle, westbound
        + column(0, 4, 5)       # turn up on the west side
        + row(5, 1, 7)          # top aisle, eastbound
    )
    cell_paths = [
        ("station-row", row(0, 8, 0)),       # westbound past the stations
        ("shelving-serpentine", serpentine),  # all pickups happen here
        ("down-corridor", column(8, 5, 1)),   # back down to the station row
    ]
    connections = [
        ("station-row", "shelving-serpentine"),
        ("shelving-serpentine", "down-corridor"),
        ("down-corridor", "station-row"),
    ]
    return build_traffic_system(
        warehouse, cell_paths, connections, name="custom-traffic-system"
    )


def main() -> None:
    warehouse = build_warehouse()
    print(warehouse.summary())

    traffic_system = design_traffic_system(warehouse)
    report = validate(traffic_system)
    print(traffic_system.summary())
    print(f"design rules: {report.summary()}")
    print()
    print(render_traffic_system(traffic_system))
    print()
    print(render_component_legend(traffic_system))
    print()

    workload = Workload.from_mapping(warehouse.catalog, {1: 6, 2: 6, 3: 6})
    solution = WSPSolver(traffic_system).solve(workload, horizon=900)
    if not solution.succeeded:
        raise SystemExit(f"solve failed: {solution.message}")
    print(solution.summary())
    print(f"plan feasible: {solution.plan_is_feasible}, "
          f"workload serviced: {solution.services_workload}")


if __name__ == "__main__":
    main()
