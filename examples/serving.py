#!/usr/bin/env python3
"""Serving the pipeline: boot the service, hit it, load-test it.

The one-shot pipeline answers a scenario in hundreds of milliseconds; the
serving layer answers a *repeated* scenario in about a millisecond.  This
example:

1. boots the HTTP serving layer in-process (ephemeral port, 2 spawn
   workers, a persistent JSONL cache tier);
2. solves one scenario twice — the cold request runs the full
   solve→simulate pipeline on the worker pool, the warm one is a
   content-addressed cache hit on the same ``scenario_id``;
3. streams a small batch (NDJSON) and an asynchronous submit/status/result
   round trip;
4. runs the cold/warm load-generator harness with 8 concurrent clients and
   prints the latency/throughput/hit-rate report;
5. drains the service gracefully (the same path ``repro serve`` takes on
   SIGINT/SIGTERM).

Run with:  python examples/serving.py
"""

import tempfile
from pathlib import Path

from repro.analysis import loadtest_report, service_table
from repro.experiments import ScenarioSpec
from repro.service import (
    LoadTestOptions,
    ServiceClient,
    ServiceConfig,
    ServiceRequest,
    ServiceServer,
    run_loadtest,
)


def build_scenarios():
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=4,
        shelf_bands=3,
        num_stations=1,
        num_products=6,
        units=12,
        horizon=900,
    )
    from dataclasses import replace

    return [base, replace(base, units=24), replace(base, workload_mix="zipf", units=18)]


def main():
    store = Path(tempfile.mkdtemp()) / "service-cache.jsonl"
    config = ServiceConfig(port=0, workers=2, store_path=str(store))
    server = ServiceServer(config).start()
    print(f"service listening on {server.url} (cache tier: {store})\n")

    scenarios = build_scenarios()
    with ServiceClient(server.url, timeout=300) as client:
        # Cold vs. warm: the same scenario id resolves from the cache.
        _, cold = client.solve(ServiceRequest(scenario=scenarios[0]))
        print(f"cold : state={cold.state:<10s} cache={cold.cache:<6s} "
              f"compute={cold.compute_seconds * 1000:.1f}ms")
        _, warm = client.solve(ServiceRequest(scenario=scenarios[0]))
        print(f"warm : state={warm.state:<10s} cache={warm.cache:<6s} "
              f"queue={warm.queue_seconds * 1000:.2f}ms")

        # Batch: one NDJSON response line per scenario, in input order.
        responses = client.batch([ServiceRequest(scenario=spec) for spec in scenarios])
        print(f"batch: {[ (r.state, r.cache) for r in responses ]}")

        # Asynchronous: submit now, fetch the result later.
        _, pending = client.submit(ServiceRequest(scenario=scenarios[1]))
        _, final = client.result(pending.request_id)
        print(f"async: {pending.request_id} -> {final.state} ({final.cache})\n")

    # Load test: 8 concurrent clients, cold then warm phases.
    report = run_loadtest(
        server.url, scenarios, LoadTestOptions(clients=8, requests_per_client=4)
    )
    print(loadtest_report(report))
    print()
    print(service_table(report.metrics))

    drained = server.stop()
    print(f"\nservice drained cleanly: {drained}")
    print(f"persistent tier now holds {sum(1 for _ in open(store))} records — "
          "a rebooted service warm-starts from it")


if __name__ == "__main__":
    main()
