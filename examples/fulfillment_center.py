#!/usr/bin/env python3
"""Fulfillment-center scenario: the paper's Table-I Fulfillment-1 instances.

Generates the Fulfillment-1 map preset (the Kiva-style map with 560 shelves,
4 stations and 55 products), solves the three Table-I workloads (550 / 825 /
1100 units, T = 3600), and prints a Table-I-style report comparing our
runtimes with the paper's.

Run with:        python examples/fulfillment_center.py
Fast variant:    python examples/fulfillment_center.py --small
"""

import argparse

from repro.analysis import BenchmarkRow, compute_plan_metrics, table1_report
from repro.core import WSPSolver
from repro.maps import fulfillment_center_1, fulfillment_center_1_small
from repro.warehouse import Workload

#: The paper's Fulfillment-1 workload sizes (units moved).
PAPER_WORKLOADS = (550, 825, 1100)
SMALL_WORKLOADS = (24, 36, 48)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the structurally identical small map preset (fast)",
    )
    parser.add_argument("--horizon", type=int, default=3600, help="timestep limit T")
    args = parser.parse_args()

    designed = fulfillment_center_1_small() if args.small else fulfillment_center_1()
    warehouse = designed.warehouse
    traffic_system = designed.traffic_system
    workloads = SMALL_WORKLOADS if args.small else PAPER_WORKLOADS
    horizon = 1500 if args.small else args.horizon

    print(warehouse.summary())
    print(traffic_system.summary())
    print(
        f"cycle time tc = {traffic_system.cycle_time()} timesteps, "
        f"{horizon // traffic_system.cycle_time()} cycle periods in T = {horizon}, "
        f"station capacity {traffic_system.station_throughput_capacity()} deliveries/period"
    )
    print()

    solver = WSPSolver(traffic_system)
    rows = []
    for units in workloads:
        workload = Workload.uniform(warehouse.catalog, units)
        solution = solver.solve(workload, horizon=horizon)
        if not solution.succeeded:
            print(f"workload {units}: INFEASIBLE ({solution.message})")
            continue
        metrics = compute_plan_metrics(solution.plan, workload)
        rows.append(
            BenchmarkRow(
                map_name=warehouse.name,
                unique_products=warehouse.num_products,
                units_moved=units,
                runtime_seconds=solution.synthesis_seconds,
                num_agents=solution.num_agents,
                units_delivered=metrics.units_delivered,
                plan_feasible=solution.plan_is_feasible,
                workload_serviced=solution.services_workload,
            )
        )
        print(
            f"workload {units:5d}: {solution.num_agents:4d} agents, "
            f"synthesis {solution.synthesis_seconds:6.2f}s, "
            f"end-to-end {solution.total_seconds:6.2f}s, "
            f"workload serviced by t = {metrics.service_makespan}"
        )

    print()
    print(table1_report(rows))


if __name__ == "__main__":
    main()
