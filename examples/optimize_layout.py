#!/usr/bin/env python3
"""Closed-loop layout & slotting search over the solve→simulate pipeline.

The pipeline normally *evaluates* a fixed warehouse design; ``repro.optimize``
makes it *search* designs: perturb the scenario (swap two products' shelves,
move a layout dimension), re-solve and re-simulate, keep the candidate if the
objective improved.  This example runs two small campaigns against the same
seed design — a deliberately naive slotting that parks the popular products on
far shelves:

1. slotting only (simulated annealing over the product→shelf permutation),
2. joint slotting + layout geometry (hill climbing over permutation, shelf
   grid and station count).

Every candidate is scored through a content-addressed result cache, so designs
the search re-visits cost nothing — the campaign report prints the hit-rate
alongside the convergence trace.

Run with:  python examples/optimize_layout.py [--budget 24] [--seed 1]
"""

import argparse

from repro.analysis import optimize_report
from repro.optimize import (
    CachedEvaluator,
    make_objective,
    make_optimizer,
    preset_space,
    run_campaign,
)


def campaign(preset: str, optimizer_name: str, budget: int, seed: int) -> None:
    space = preset_space(preset, seed=0)
    optimizer = make_optimizer(optimizer_name)
    objective = make_objective("throughput")
    evaluator = CachedEvaluator()  # in-process, cache-fronted
    try:
        result = run_campaign(
            space, optimizer, objective, evaluator, budget=budget, seed=seed
        )
    finally:
        evaluator.close()
    print(f"=== {preset} / {optimizer.name} ===")
    print(optimize_report(result.to_dict()))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=24,
                        help="pipeline evaluations per campaign (baseline included)")
    parser.add_argument("--seed", type=int, default=1, help="search rng seed")
    args = parser.parse_args()

    campaign("slotting-small", "anneal", args.budget, args.seed)
    campaign("joint-small", "hill", args.budget, args.seed)


if __name__ == "__main__":
    main()
