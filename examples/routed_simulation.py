"""Compare execution modes: abstract plan replay vs. grid-routed MAPF motion.

Solves one small instance, then executes the realized plan through the
digital twin once per router — the abstract baseline plus all four grid
routers — and prints the router comparison table, the congestion telemetry,
and each mode's contract-monitor verdict.  The grid routers subject the
plan's logistics to *real* congestion: agents queue in aisles, detour around
each other, and inflate their travel time beyond the free-flow optimum,
which is exactly the dynamics the abstract replay cannot see.

Run with:
    PYTHONPATH=src python examples/routed_simulation.py
"""

from repro.analysis import render_edge_heatmap, routing_comparison_table
from repro.core import WSPSolver
from repro.experiments import ScenarioSpec
from repro.sim import RoutingConfig, SimulationConfig


def main() -> None:
    spec = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
    )
    designed, workload = spec.build()
    solver = WSPSolver(designed.traffic_system)
    solution = solver.solve(workload, horizon=spec.horizon)
    if not solution.succeeded:
        raise SystemExit(f"solve failed: {solution.message}")
    print(solution.summary())
    print()

    reports = []
    for router in ("abstract", "prioritized", "cbs", "ecbs", "lifelong"):
        routing = None if router == "abstract" else RoutingConfig(router=router)
        report = solver.simulate(solution, SimulationConfig(routing=routing))
        reports.append(report)
        verdict = "contracts ok" if report.contracts_ok else (
            f"{report.num_violations} contract violation(s)"
        )
        print(f"{router:>12s}: {report.units_served} units served "
              f"in {report.ticks} ticks — {verdict}")

    print()
    print(routing_comparison_table(reports))

    routed = next(r for r in reports if r.routing is not None)
    print()
    print(f"Edge congestion under the {routed.routing.router} router:")
    print(render_edge_heatmap(designed.warehouse, routed.routing.edge_traversals))


if __name__ == "__main__":
    main()
