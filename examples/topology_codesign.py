#!/usr/bin/env python3
"""Topology co-design: exploring the component-length knob of the traffic system.

The paper's title promises co-design of *topology*, scheduling and path
planning.  The topology knob exposed by this repository's map generators is
``max_component_length``: the same warehouse floor can be partitioned into a
few long components or many short ones, and that single choice drives the
whole methodology through the cycle time ``tc = 2m``:

* long components  → few cycle periods within T → low delivery capacity,
  but few components to coordinate;
* short components → many periods → high capacity, but each component
  supports fewer concurrent cycles and more agents are needed per delivery.

This example sweeps the knob on a mid-size fulfillment layout, prints the
capacity / agent trade-off for a fixed workload, and picks the design that
services the workload with the fewest agents.

Run with:  python examples/topology_codesign.py
"""

from repro.analysis import format_table
from repro.core import best_design, explore_component_lengths
from repro.maps import FulfillmentLayout

LAYOUT = FulfillmentLayout(
    num_slices=3,
    shelf_columns=6,
    shelf_bands=3,
    shelf_depth=2,
    num_stations=3,
    num_products=12,
    name="codesign-demo",
)
WORKLOAD_UNITS = 60
HORIZON = 2400


def main() -> None:
    print(f"layout: {LAYOUT.num_slices} slices x {LAYOUT.shelf_columns} shelf columns, "
          f"{LAYOUT.num_shelves} shelves, {LAYOUT.num_products} products")
    print(f"workload: {WORKLOAD_UNITS} units within T = {HORIZON} timesteps")
    print()

    points = explore_component_lengths(
        LAYOUT, workload_units=WORKLOAD_UNITS, horizon=HORIZON, solve=True
    )

    rows = []
    for point in points:
        rows.append(
            [
                point.max_component_length,
                point.num_components,
                point.longest_component,
                point.cycle_time,
                point.num_periods,
                point.capacity_per_period,
                point.total_capacity,
                "yes" if point.capacity_feasible else "no",
                point.num_agents if point.solved else "-",
                f"{point.synthesis_seconds:.2f}" if point.solved else "-",
            ]
        )
    print(
        format_table(
            rows,
            headers=[
                "max len",
                "components",
                "m",
                "tc",
                "periods",
                "cap/period",
                "capacity",
                "feasible",
                "agents",
                "synth (s)",
            ],
            title="Topology design space (component-length sweep)",
        )
    )
    print()

    chosen = best_design(points)
    print(f"chosen design: {chosen.summary()}")
    print()
    print("Reading the table: chopping the serpentines into short components buys")
    print("many cycle periods (capacity) but each delivery needs its own short-")
    print("hop cycle slots; leaving them long starves the schedule of periods.")
    print("The co-design sweet spot sits in between — which is exactly why the")
    print("generator's default splits components at max(slice width, corridor).")


if __name__ == "__main__":
    main()
