#!/usr/bin/env python3
"""Digital twin: execute a synthesized fulfillment-center plan over time.

The static pipeline (see ``quickstart.py``) proves a collision-free plan
exists and that it services the workload.  This example goes one step
further and *executes* that plan in the discrete-event engine of
:mod:`repro.sim`, under three scenarios:

1. the deterministic baseline — instantaneous station service, every order
   present at tick 0: the realized throughput must match the synthesized
   flow value and the runtime contract monitor must stay silent;
2. a stochastic day — Poisson order arrivals and geometric packing times:
   queues breathe, latency distributions appear, contracts still hold;
3. an undersized station — packing far slower than the agents deliver:
   the backlog grows without bound and the monitor reports the breach.

Run with:  python examples/simulate_fulfillment.py
"""

from repro.analysis import (
    compute_sim_metrics,
    render_congestion,
    throughput_gap_report,
)
from repro.core import WSPSolver
from repro.maps import fulfillment_center_1_small
from repro.sim import ServiceTimeModel, SimulationConfig
from repro.warehouse import Workload


def solve():
    designed = fulfillment_center_1_small()
    warehouse = designed.warehouse
    print(warehouse.summary())
    workload = Workload.uniform(warehouse.catalog, 24)
    solver = WSPSolver(designed.traffic_system)
    solution = solver.solve(workload, horizon=1500)
    print(solution.summary())
    print()
    return designed, solver, solution


def baseline(designed, solver, solution):
    print("=== 1. deterministic baseline (the twin must match the promise) ===")
    report = solver.simulate(solution, SimulationConfig(seed=0))
    print(report.summary())
    metrics = compute_sim_metrics(report.trace)
    print(f"  verdict:             {throughput_gap_report(metrics)}")
    print()
    print("Congestion heatmap (agent-ticks per cell, ' '→'$' cold→hot):")
    print(render_congestion(designed.warehouse, report.trace.visits))
    print()


def stochastic_day(solver, solution):
    print("=== 2. a stochastic day (Poisson orders, geometric packing) ===")
    config = SimulationConfig(
        seed=7,
        arrival_rate=0.05,
        service_time=ServiceTimeModel.geometric(3.0),
    )
    report = solver.simulate(solution, config)
    print(report.summary())
    print()


def undersized_station(solver, solution):
    print("=== 3. an undersized station (packing slower than delivery) ===")
    config = SimulationConfig(
        seed=0, service_time=ServiceTimeModel.deterministic(400)
    )
    report = solver.simulate(solution, config)
    print(report.summary())
    print()
    print(
        "The monitor names the broken promise: the plan hands units over on "
        "schedule,\nbut the station's service rate cannot honor the workload "
        "contract by the horizon."
    )


if __name__ == "__main__":
    designed, solver, solution = solve()
    baseline(designed, solver, solution)
    stochastic_day(solver, solution)
    undersized_station(solver, solution)
