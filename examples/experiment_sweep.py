#!/usr/bin/env python3
"""Design-space exploration with the experiment subsystem.

The catalog presets are three fixed maps; :mod:`repro.experiments` opens the
whole parametric design space.  This example:

1. builds a *grid sweep* over warehouse width and workload intensity;
2. adds a few *randomly sampled* scenarios around the same base point;
3. runs every scenario through the full solve→simulate pipeline on a
   two-worker process pool, persisting one JSONL record per run;
4. aggregates the results (pass rates, runtime percentiles, scaling rows)
   and demonstrates the regression comparator on a re-run of the same suite
   — identical seeds reproduce identical records, so the comparison is
   clean by construction.

Run with:  python examples/experiment_sweep.py
"""

import tempfile
from pathlib import Path

from repro.analysis import compare_sweeps, scaling_report, scaling_rows, sweep_report
from repro.experiments import (
    ResultStore,
    ScenarioSpec,
    SweepOptions,
    grid_scenarios,
    random_scenarios,
    run_sweep,
)


def build_suite():
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=4,
        shelf_bands=3,
        num_stations=2,
        num_products=8,
        horizon=1000,
    )
    suite = grid_scenarios(base, {"num_slices": (2, 3), "units": (16, 32)})
    suite += random_scenarios(
        base,
        count=3,
        ranges={
            "shelf_columns": (4, 5, 6),
            "workload_mix": ("uniform", "zipf"),
            "seed": tuple(range(8)),
        },
        seed=7,
    )
    return suite


def main():
    suite = build_suite()
    print(f"suite: {len(suite)} scenarios")
    for spec in suite:
        print(f"  {spec.describe()}")
    print()

    out = Path(tempfile.mkdtemp()) / "sweep.jsonl"
    records = run_sweep(
        suite,
        SweepOptions(workers=2, timeout_seconds=120),
        store=ResultStore(out),
        progress=lambda record: print(f"  done: {record.summary()}"),
    )
    print()
    print(sweep_report(records))
    print()
    print(scaling_report(scaling_rows(records)))

    # Re-run the suite: seeded scenarios reproduce their records exactly, so
    # the regression comparator (the gate future perf PRs run) stays silent.
    rerun = run_sweep(suite, SweepOptions(workers=2))
    comparison = compare_sweeps(records, rerun)
    print()
    print(comparison.summary())
    assert comparison.ok
    print(f"\nresult file: {out}")


if __name__ == "__main__":
    main()
