"""Tests for metrics, reporting and ASCII visualization."""

import pytest

from repro.analysis import (
    BenchmarkRow,
    agent_utilization,
    compute_plan_metrics,
    format_markdown_table,
    format_table,
    paper_runtime,
    render_component_legend,
    render_grid,
    render_plan_frame,
    render_traffic_system,
    scaling_report,
    service_makespan,
    table1_report,
)
from repro.core import WSPSolver
from repro.maps import toy_warehouse
from repro.warehouse import Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def solution(designed):
    workload = Workload.uniform(designed.warehouse.catalog, 8)
    result = WSPSolver(designed.traffic_system).solve(workload, horizon=600)
    assert result.succeeded
    return result


class TestMetrics:
    def test_plan_metrics(self, solution):
        metrics = compute_plan_metrics(solution.plan, solution.instance.workload)
        assert metrics.num_agents == solution.plan.num_agents
        assert metrics.units_delivered == solution.plan.total_delivered()
        assert metrics.service_makespan is not None
        assert metrics.service_makespan <= solution.plan.horizon
        assert 0 < metrics.throughput
        assert 0 < metrics.move_ratio <= 1
        assert 0 < metrics.loaded_ratio <= 1
        assert metrics.total_distance > 0
        assert metrics.as_dict()["num_agents"] == metrics.num_agents

    def test_service_makespan_unserviced(self, solution, designed):
        heavy = Workload.uniform(designed.warehouse.catalog, 10_000)
        assert service_makespan(solution.plan, heavy) is None

    def test_service_makespan_empty_workload(self, solution, designed):
        empty = Workload.from_mapping(designed.warehouse.catalog, {})
        assert service_makespan(solution.plan, empty) == 0

    def test_agent_utilization(self, solution):
        utilization = agent_utilization(solution.plan)
        assert utilization.shape == (solution.plan.num_agents,)
        assert (utilization > 0).all()
        assert (utilization <= 1).all()


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table([["a", "1"], ["bb", "22"]], headers=["col", "x"], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table([["a"]], headers=["x", "y"])

    def test_markdown_table(self):
        markdown = format_markdown_table([["a", "b"]], headers=["h1", "h2"])
        assert markdown.splitlines()[1] == "|---|---|"

    def test_paper_runtime_lookup(self):
        assert paper_runtime("fulfillment-1", 55, 550) == pytest.approx(6.939)
        assert paper_runtime("fulfillment-1", 55, 999) is None

    def test_table1_report(self):
        rows = [
            BenchmarkRow(
                map_name="fulfillment-1",
                unique_products=55,
                units_moved=550,
                runtime_seconds=5.5,
                num_agents=64,
                units_delivered=600,
                plan_feasible=True,
                workload_serviced=True,
            )
        ]
        text = table1_report(rows)
        assert "fulfillment-1" in text
        assert "6.939" in text  # the paper's runtime is filled in automatically
        markdown = table1_report(rows, markdown=True)
        assert markdown.startswith("| Map |")

    def test_scaling_report(self):
        text = scaling_report([("ours", 10, 1.0), ("eecbs", 10, 60.0)])
        assert "ours" in text and "eecbs" in text

    def test_scaling_report_empty_rows(self):
        text = scaling_report([])
        lines = text.splitlines()
        assert lines[0].split(" | ") == ["Configuration", "Size", "Runtime (s)"]
        assert len(lines) == 2  # header + separator, no data rows
        markdown = scaling_report([], markdown=True)
        assert markdown.splitlines() == [
            "| Configuration | Size | Runtime (s) |",
            "|---|---|---|",
        ]

    def test_markdown_table_empty_rows(self):
        markdown = format_markdown_table([], headers=["h1", "h2"])
        assert markdown.splitlines() == ["| h1 | h2 |", "|---|---|"]


class TestVisualization:
    def test_render_grid_dimensions(self, designed):
        grid = designed.warehouse.grid
        text = render_grid(grid)
        lines = text.splitlines()
        assert len(lines) == grid.height
        assert all(len(line) == grid.width for line in lines)
        assert "#" in text and "T" in text

    def test_render_traffic_system_marks_exits(self, designed):
        text = render_traffic_system(designed.traffic_system)
        assert text.count("!") == designed.traffic_system.num_components
        assert ">" in text or "<" in text

    def test_render_plan_frame(self, solution):
        frame = render_plan_frame(solution.plan, 0)
        agents = frame.count("a") + frame.count("A")
        assert agents == solution.plan.num_agents
        with pytest.raises(ValueError):
            render_plan_frame(solution.plan, solution.plan.horizon + 5)

    def test_component_legend(self, designed):
        legend = render_component_legend(designed.traffic_system, max_components=3)
        assert "more components" in legend
        full = render_component_legend(designed.traffic_system)
        assert len(full.splitlines()) == designed.traffic_system.num_components


class TestResilienceAnalysis:
    @pytest.fixture()
    def traced(self):
        from repro.sim import TraceRecorder

        recorder = TraceRecorder(num_vertices=10, num_agents=2, cycle_time=10, ticks=101)
        recorder.record_disruption(5, "breakdown", 0)
        recorder.record_disruption(50, "block", 3)
        recorder.record_recovery(25, "repair", 0, latency=20)
        return recorder.build()

    def test_disruption_density_buckets_events(self, traced):
        from repro.analysis import disruption_density

        density = disruption_density(traced, buckets=10)
        assert sum(density) == 2
        assert density[0] == 1 and density[5] == 1

    def test_render_disruption_timeline_strips(self, traced):
        from repro.analysis import render_disruption_timeline

        text = render_disruption_timeline(traced, width=40)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].endswith("disruptions") and lines[2].endswith("recoveries")
        # Non-empty density marks in both strips.
        assert any(ch != " " for ch in lines[1].split("|")[1])
        assert any(ch != " " for ch in lines[2].split("|")[1])

    def test_render_disruption_timeline_without_event_log(self):
        from repro.analysis import render_disruption_timeline
        from repro.sim import TraceRecorder

        recorder = TraceRecorder(
            num_vertices=4, num_agents=1, cycle_time=5, ticks=11, record_events=False
        )
        assert "unavailable" in render_disruption_timeline(recorder.build())

    def test_span_tree_and_hotspot_tables(self):
        from repro.analysis import hotspot_report, span_tree_table
        from repro.obs import capture_trace, span

        with capture_trace() as capture:
            with span("outer", map="m") as outer:
                outer.add("items", 3)
                with outer.timer("phase_a"):
                    pass
                with span("inner"):
                    pass
        document = capture.to_dict()
        tree = span_tree_table(document)
        lines = tree.splitlines()
        assert any(line.startswith("outer") for line in lines)
        assert any("  inner" in line for line in lines)  # indented child
        assert any("phase_a" in line for line in lines)  # phase sub-row
        assert any("items=3" in line for line in lines)
        hotspots = hotspot_report(document, top=5)
        assert "outer" in hotspots and "inner" in hotspots
        assert span_tree_table({"spans": []}) == "(empty trace)"

    def test_hotspot_report_aggregates_by_name(self):
        from repro.analysis import hotspot_report
        from repro.obs import capture_trace, span

        with capture_trace() as capture:
            for _ in range(3):
                with span("repeated"):
                    pass
        row = next(
            line
            for line in hotspot_report(capture.to_dict()).splitlines()
            if line.startswith("repeated")
        )
        assert "| 3 " in row  # three calls collapsed into one row

    def test_resilience_row_shapes(self):
        from repro.analysis import resilience_row
        from repro.experiments import ScenarioSpec, execute_scenario

        # Row extraction is exercised end to end by the benchmark; here pin
        # the record-level columns the sweep table consumes.
        spec = ScenarioSpec(
            kind="fulfillment", num_slices=1, shelf_columns=3, shelf_bands=1,
            num_stations=1, num_products=2, units=4, horizon=150,
            disruptions="breakdown:0.05:10",
        )
        document = execute_scenario(spec.to_dict())
        assert document["status"] == "ok"
        sim = document["sim"]
        assert 0.0 <= sim["throughput_retention"] <= 1.0
        assert sim["disruptions"] >= 1.0
        assert sim["recoveries"] >= 0.0
        assert "dropped_orders" in sim and "breach_windows" in sim
