"""Unit tests for the assume-guarantee contract objects."""

import pytest

from repro.contracts import AGContract, ContractError, compose_all, top_contract, variable_index
from repro.solver.expressions import Variable


@pytest.fixture()
def flow_vars():
    f_in = Variable("f_in", lb=0, ub=10, integer=True)
    f_out = Variable("f_out", lb=0, ub=10, integer=True)
    return f_in, f_out


class TestConstruction:
    def test_variables_inferred(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract("c", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in,))
        assert set(contract.variables) == {f_in, f_out}

    def test_explicit_variables_checked(self, flow_vars):
        f_in, f_out = flow_vars
        with pytest.raises(ContractError):
            AGContract("c", guarantees=(f_out <= f_in,), variables=(f_in,))

    def test_bool_guard(self, flow_vars):
        f_in, _ = flow_vars
        with pytest.raises(ContractError):
            AGContract("c", guarantees=(True,))  # type: ignore[arg-type]

    def test_counts_and_summary(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract(
            "c", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in, f_out >= 0)
        )
        assert contract.num_assumptions == 1
        assert contract.num_guarantees == 2
        assert "|A|=1" in contract.summary()

    def test_from_constraints_and_renamed(self, flow_vars):
        f_in, _ = flow_vars
        contract = AGContract.from_constraints("orig", guarantees=[f_in <= 2])
        renamed = contract.renamed("new")
        assert renamed.name == "new"
        assert renamed.guarantees == contract.guarantees

    def test_variable_index(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract("c", guarantees=(f_out <= f_in,))
        index = variable_index(contract)
        assert index["f_in"] is f_in
        assert index["f_out"] is f_out


class TestSatisfaction:
    def test_satisfied_by(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract("c", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in,))
        assert contract.satisfied_by({f_in: 3, f_out: 2})
        assert not contract.satisfied_by({f_in: 3, f_out: 5})

    def test_violated_constraints_reported(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract(
            "c",
            assumptions=((f_in <= 4).named("cap"),),
            guarantees=((f_out <= f_in).named("conserve"),),
        )
        violated = contract.violated_constraints({f_in: 6, f_out: 8})
        assert {c.name for c in violated} == {"cap", "conserve"}


class TestAlgebraicStructure:
    def test_compose_unions_constraints(self, flow_vars):
        f_in, f_out = flow_vars
        c1 = AGContract("c1", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in,))
        c2 = AGContract("c2", assumptions=(f_out <= 3,), guarantees=(f_in >= 1,))
        composed = c1.compose(c2)
        assert set(composed.assumptions) == set(c1.assumptions) | set(c2.assumptions)
        assert set(composed.guarantees) == set(c1.guarantees) | set(c2.guarantees)

    def test_operator_aliases(self, flow_vars):
        f_in, f_out = flow_vars
        c1 = AGContract("c1", guarantees=(f_out <= f_in,))
        c2 = AGContract("c2", guarantees=(f_in <= 5,))
        assert set((c1 * c2).guarantees) == set(c1.compose(c2).guarantees)
        assert set((c1 & c2).guarantees) == set(c1.conjoin(c2).guarantees)

    def test_compose_all_matches_pairwise(self, flow_vars):
        f_in, f_out = flow_vars
        c1 = AGContract("c1", guarantees=(f_out <= f_in,))
        c2 = AGContract("c2", guarantees=(f_in <= 5,))
        c3 = AGContract("c3", assumptions=(f_out >= 0,))
        bulk = compose_all([c1, c2, c3])
        pairwise = c1.compose(c2).compose(c3)
        assert set(bulk.all_constraints()) == set(pairwise.all_constraints())

    def test_top_contract_is_identity(self, flow_vars):
        f_in, f_out = flow_vars
        c = AGContract("c", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in,))
        composed = c.compose(top_contract())
        assert set(composed.all_constraints()) == set(c.all_constraints())

    def test_compose_all_empty(self):
        empty = compose_all([])
        assert empty.num_assumptions == 0
        assert empty.num_guarantees == 0


class TestExport:
    def test_to_model_contains_everything(self, flow_vars):
        f_in, f_out = flow_vars
        contract = AGContract("c", assumptions=(f_in <= 4,), guarantees=(f_out <= f_in,))
        model = contract.to_model()
        assert model.num_constraints == 2
        assert set(model.variables) == {f_in, f_out}
