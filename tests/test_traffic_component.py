"""Tests for traffic-system components and their classification."""

import pytest

from repro.maps import figure1_warehouse
from repro.traffic import Component, ComponentKind, TrafficError, classify_vertices, make_component


@pytest.fixture()
def warehouse():
    return figure1_warehouse()


@pytest.fixture()
def floorplan(warehouse):
    return warehouse.floorplan


def vertices(floorplan, *cells):
    return [floorplan.vertex_at(c) for c in cells]


class TestComponent:
    def test_entry_exit_and_aliases(self, floorplan):
        path = vertices(floorplan, (0, 1), (1, 1), (2, 1))
        component = make_component(floorplan, 0, "row", path)
        assert component.entry == path[0]
        assert component.exit == path[-1]
        assert component.head == component.entry
        assert component.tail == component.exit
        assert component.length == 3
        assert component.capacity == 1

    def test_contains_and_positions(self, floorplan):
        path = vertices(floorplan, (0, 1), (1, 1), (2, 1))
        component = make_component(floorplan, 0, "row", path)
        assert path[1] in component
        assert component.position_of(path[1]) == 1
        assert component.next_vertex(path[1]) == path[2]
        assert component.next_vertex(path[2]) is None
        assert component.distance_to_exit(path[0]) == 2

    def test_position_of_foreign_vertex(self, floorplan):
        path = vertices(floorplan, (0, 1), (1, 1))
        component = make_component(floorplan, 0, "row", path)
        other = floorplan.vertex_at((4, 1))
        with pytest.raises(TrafficError):
            component.position_of(other)

    def test_empty_and_duplicate_rejected(self, floorplan):
        with pytest.raises(TrafficError):
            Component(0, "empty", (), ComponentKind.TRANSPORT)
        v = floorplan.vertex_at((0, 1))
        with pytest.raises(TrafficError):
            Component(0, "dup", (v, v), ComponentKind.TRANSPORT)

    def test_non_path_rejected(self, floorplan):
        path = vertices(floorplan, (0, 1), (2, 1))  # not adjacent
        with pytest.raises(TrafficError):
            make_component(floorplan, 0, "bad", path)

    def test_non_path_allowed_when_unchecked(self, floorplan):
        path = vertices(floorplan, (0, 1), (2, 1))
        component = make_component(floorplan, 0, "loose", path, check_path=False)
        assert component.length == 2


class TestClassification:
    def test_shelving_row(self, warehouse, floorplan):
        path = vertices(floorplan, (0, 2), (0, 1))  # (0, 2) is shelf access
        assert classify_vertices(floorplan, path) == ComponentKind.SHELVING_ROW
        component = make_component(floorplan, 0, "row", path)
        assert component.is_shelving_row

    def test_station_queue(self, floorplan):
        path = vertices(floorplan, (1, 0))
        assert classify_vertices(floorplan, path) == ComponentKind.STATION_QUEUE

    def test_transport(self, floorplan):
        path = vertices(floorplan, (2, 0) if floorplan.has_vertex_at((2, 0)) else (2, 1))
        # (2, 0) is an obstacle in Fig. 1, so use (2, 1)... which is shelf access?
        # Use a cell away from shelves and stations: (2, 0) invalid; take (2, 1)?
        # (2, 1) is adjacent to no shelf (shelves at (1,2),(3,2) are diagonal) -> transport.
        path = vertices(floorplan, (2, 1))
        assert classify_vertices(floorplan, path) == ComponentKind.TRANSPORT

    def test_mixed_rejected(self, floorplan):
        path = vertices(floorplan, (1, 0), (1, 1))  # station + shelf access
        with pytest.raises(TrafficError):
            classify_vertices(floorplan, path)

    def test_declared_kind_must_match(self, floorplan):
        path = vertices(floorplan, (1, 0))
        with pytest.raises(TrafficError):
            make_component(floorplan, 0, "q", path, kind=ComponentKind.TRANSPORT)
