"""Tests for flow variables, component contracts and the workload contract."""

import pytest

from repro.core import (
    FlowVariablePool,
    SynthesisOptions,
    component_contract,
    component_contracts,
    traffic_system_contract,
    workload_contract,
)
from repro.core.workload_contract import WorkloadContractError
from repro.maps import toy_warehouse
from repro.warehouse import EMPTY_HANDED, Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


@pytest.fixture(scope="module")
def workload(designed):
    return Workload.uniform(designed.warehouse.catalog, 8)


@pytest.fixture(scope="module")
def pool(system, workload):
    return FlowVariablePool.for_workload(system, workload)


class TestFlowVariablePool:
    def test_edge_variables_cover_all_arcs(self, pool, system, workload):
        carried = 1 + len(workload.requested_products())
        assert len(pool.edge_vars) == len(system.edges()) * carried
        assert len(pool.loaded_vars) == len(system.edges())
        assert len(pool.empty_vars) == len(system.edges())

    def test_per_product_variables_are_continuous(self, pool):
        assert all(not var.integer for var in pool.edge_vars.values())
        assert all(not var.integer for var in pool.pickup_vars.values())
        assert all(not var.integer for var in pool.dropoff_vars.values())

    def test_aggregate_variables_are_integer(self, pool):
        assert all(var.integer for var in pool.loaded_vars.values())
        assert all(var.integer for var in pool.empty_vars.values())
        assert all(var.integer for var in pool.total_pickup_vars.values())
        assert all(var.integer for var in pool.total_dropoff_vars.values())

    def test_pickup_vars_only_where_stocked(self, pool, system):
        for (component_id, product) in pool.pickup_vars:
            assert system.units_at(component_id, product) > 0
            assert system.component(component_id).is_shelving_row

    def test_dropoff_vars_only_at_station_queues(self, pool, system):
        for (component_id, _) in pool.dropoff_vars:
            assert system.component(component_id).is_station_queue

    def test_bounds_match_capacity(self, pool, system):
        for (source, target), var in pool.loaded_vars.items():
            assert var.ub == system.component(target).capacity

    def test_coupling_constraints_cover_all_aggregates(self, pool):
        constraints = pool.coupling_constraints()
        expected = (
            len(pool.loaded_vars)
            + len(pool.empty_vars)
            + len(pool.total_pickup_vars)
            + len(pool.total_dropoff_vars)
        )
        assert len(constraints) == expected

    def test_inflow_outflow_expressions(self, pool, system):
        component = system.components[0]
        inflow = pool.inflow(component.index, EMPTY_HANDED)
        assert len(inflow.variables()) == len(system.inlets_of(component.index))
        outflow = pool.outflow(component.index, EMPTY_HANDED)
        assert len(outflow.variables()) == len(system.outlets_of(component.index))

    def test_total_agents_counts_every_edge(self, pool, system):
        assert len(pool.total_agents().variables()) == 2 * len(system.edges())


class TestComponentContracts:
    def test_capacity_assumption_present(self, pool, system):
        contract = component_contract(pool, system.components[0], num_periods=10)
        assert contract.num_assumptions == 1
        assert "capacity" in contract.assumptions[0].name

    def test_conservation_guarantees_per_product(self, pool, system, workload):
        contract = component_contract(pool, system.components[0], num_periods=10)
        conservation = [g for g in contract.guarantees if g.name.startswith("conservation")]
        # one per demanded product plus one for the empty-handed commodity
        assert len(conservation) == len(workload.requested_products()) + 1

    def test_shelving_row_has_pickup_guarantees(self, pool, system):
        shelving = system.shelving_rows()[0]
        contract = component_contract(pool, shelving, num_periods=10)
        names = [g.name for g in contract.guarantees]
        assert any(name.startswith("pickup-empty-agents") for name in names)

    def test_station_queue_has_dropoff_guarantees(self, pool, system):
        queue = system.station_queues()[0]
        contract = component_contract(pool, queue, num_periods=10)
        names = [g.name for g in contract.guarantees]
        assert any(name.startswith("dropoff-bound") for name in names)

    def test_transport_has_no_pickup_or_dropoff(self, pool, system):
        transports = system.transports()
        assert transports, "toy map should have transports"
        contract = component_contract(pool, transports[0], num_periods=10)
        names = [g.name for g in contract.guarantees]
        assert not any("pickup" in name or "dropoff-bound" in name for name in names)

    def test_traffic_system_contract_composes_all(self, pool, system):
        composed = traffic_system_contract(pool, num_periods=10)
        individual = component_contracts(pool, num_periods=10)
        assert composed.num_guarantees == sum(c.num_guarantees for c in individual)
        assert composed.num_assumptions == sum(c.num_assumptions for c in individual)


class TestWorkloadContract:
    def test_one_guarantee_per_requested_product(self, pool, workload):
        contract = workload_contract(pool, workload, num_periods=20, warmup_periods=1)
        assert contract.num_guarantees == len(workload.requested_products())
        assert contract.num_assumptions == 0

    def test_rates_scale_with_periods(self, pool, designed):
        workload = Workload.from_mapping(designed.warehouse.catalog, {1: 30})
        few = workload_contract(pool, workload, num_periods=10, warmup_periods=0)
        many = workload_contract(pool, workload, num_periods=30, warmup_periods=0)
        # The required per-period rate is demand / periods; the constraint with
        # fewer periods is strictly tighter, checked via its constant term.
        assert few.guarantees[0].expr.constant < many.guarantees[0].expr.constant

    def test_zero_periods_rejected(self, pool, workload):
        with pytest.raises(WorkloadContractError):
            workload_contract(pool, workload, num_periods=0)

    def test_excessive_warmup_rejected(self, pool, workload):
        with pytest.raises(WorkloadContractError):
            workload_contract(pool, workload, num_periods=5, warmup_periods=5)


class TestSynthesisOptions:
    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            SynthesisOptions(objective="maximize-profit")

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            SynthesisOptions(cycle_time_factor=1)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            SynthesisOptions(warmup_periods=-1)

    def test_auto_warmup_resolution(self, system):
        options = SynthesisOptions()
        warmup = options.resolve_warmup(system, num_periods=40)
        assert 1 <= warmup <= 40 // 3
        explicit = SynthesisOptions(warmup_periods=3)
        assert explicit.resolve_warmup(system, num_periods=40) == 3
