"""End-to-end optimize campaigns through the live HTTP service.

Covers the ``POST /optimize`` + ``GET /optimize/status`` surface: campaigns
run on a server thread, evaluate through the shared cache/pool, publish
progress documents, and narrate themselves as ``optimize.*`` events on the
``/events`` SSE stream.
"""

import http.client
import json

import pytest

from repro.experiments import ScenarioSpec
from repro.service import ServiceClient, ServiceClientError, ServiceConfig, ServiceServer


@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=8, warm_up=True)
    ).start()
    yield instance
    assert instance.stop(drain_timeout=60)


@pytest.fixture()
def client(server):
    with ServiceClient(server.url, timeout=180) as instance:
        yield instance


# A campaign known (empirically) to improve: the slotting-small preset seeds
# a deliberately naive permutation, and seed 3 finds the better tier within
# ten evaluations.
CAMPAIGN = {
    "preset": "slotting-small",
    "optimizer": "anneal",
    "budget": 10,
    "seed": 3,
}


def test_optimize_campaign_end_to_end(server, client):
    events = server.service.events
    base_seq = events.last_seq

    status, body = client.optimize(dict(CAMPAIGN))
    assert status == 202
    assert body["schema"] == "optimize-submitted"
    campaign_id = body["campaign_id"]
    assert campaign_id.startswith("opt-")
    assert body["state"] == "running"
    assert body["budget"] == 10

    detail = client.wait_optimize(campaign_id, timeout=180)
    assert detail["schema"] == "optimize-status"
    assert detail["state"] == "done"
    assert detail["evaluations"] == 10
    assert detail["best_score"] >= detail["baseline_score"]
    assert detail["best_score"] > detail["baseline_score"]  # seed 3 improves

    report = detail["report"]
    assert report["schema"] == "optimize-report"
    assert report["best"]["score"] == detail["best_score"]
    assert report["best"]["scenario_id"] == detail["best_scenario_id"]
    assert len(report["steps"]) == detail["steps"]

    # The campaign shows up in the registry listing.
    status, listing = client.optimize_status()
    assert status == 200
    assert campaign_id in {entry["campaign_id"] for entry in listing["campaigns"]}

    # ... and the whole run narrated itself on the event stream (satellite:
    # optimize.* events verified over the live SSE endpoint).
    count = events.last_seq - base_seq
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request("GET", f"/events?since={base_seq}&max={count}")
        reply = connection.getresponse()
        assert reply.status == 200
        payload = reply.read().decode("utf-8")
    finally:
        connection.close()
    kinds = []
    for line in payload.split("\n"):
        if line.startswith("event:"):
            kinds.append(line.partition(":")[2].strip())
    assert "optimize.started" in kinds
    assert "optimize.candidate" in kinds
    assert "optimize.improved" in kinds
    assert "optimize.finished" in kinds
    # Candidate evaluations went through the ordinary resolve path, so the
    # data frames carry the campaign id for correlation.
    started = next(
        json.loads(frame.partition(":")[2])
        for frame in payload.split("\n")
        if frame.startswith("data:") and '"optimize.started"' in frame
    )
    assert started["component"] == "optimize"


def test_campaign_evaluations_hit_the_shared_cache(server, client):
    # Re-running the identical campaign revisits identical scenario_ids; the
    # server-side ResultCache turns them into hits.
    before = server.service.cache.stats
    status, body = client.optimize(dict(CAMPAIGN))
    assert status == 202
    detail = client.wait_optimize(body["campaign_id"], timeout=180)
    assert detail["state"] == "done"
    after = server.service.cache.stats
    hits_before = before["hits_memory"] + before["hits_store"]
    hits_after = after["hits_memory"] + after["hits_store"]
    assert hits_after > hits_before


def test_optimize_accepts_explicit_space_document(client):
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
    )
    document = {
        "space": {
            "base": base.to_dict(),
            "knobs": [
                {"kind": "int", "field": "shelf_columns", "minimum": 3, "maximum": 5}
            ],
        },
        "optimizer": "hill",
        "options": {"batch_size": 1},
        "budget": 3,
        "seed": 0,
    }
    status, body = client.optimize(document)
    assert status == 202
    assert body["preset"] == ""  # explicit spaces are not presets
    detail = client.wait_optimize(body["campaign_id"], timeout=180)
    assert detail["state"] == "done"
    assert detail["optimizer"] == "hill"
    assert detail["evaluations"] == 3


@pytest.mark.parametrize(
    "document, fragment",
    [
        ({"budget": 0}, "budget"),
        ({"budget": 9999}, "budget"),
        ({"optimizer": "bogus"}, "unknown optimizer"),
        ({"preset": "bogus"}, "unknown optimize preset"),
        ({"objective": "bogus"}, "unknown objective"),
        ({"options": [1, 2]}, "options"),
        ({"space": {"base": {}}}, "invalid"),
    ],
)
def test_optimize_rejects_bad_requests(client, document, fragment):
    status, body = client.optimize(document)
    assert status == 400
    assert fragment in body["error"]


def test_unknown_campaign_is_404(client):
    status, body = client.optimize_status("opt-999999")
    assert status == 404
    assert "opt-999999" in body["error"]
    with pytest.raises(ServiceClientError, match="opt-999999"):
        client.wait_optimize("opt-999999", timeout=5)


def test_status_listing_schema(client):
    status, listing = client.optimize_status()
    assert status == 200
    assert listing["schema"] == "optimize-status"
    for entry in listing["campaigns"]:
        assert {"campaign_id", "state", "steps", "evaluations"} <= set(entry)
