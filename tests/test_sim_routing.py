"""End-to-end tests of grid-routed execution (:mod:`repro.sim.routing`).

The central invariant: routing a realized plan yields a *new* plan that the
independent :class:`~repro.warehouse.plan.PlanValidator` accepts in full —
collision-free, unit moves, condition-(3) load changes — and that delivers
exactly the same units as the original.  On top of that the routing report's
telemetry (inflation, edge traversals, replans) must be internally
consistent, survive trace serialization, and surface through the experiment
runner's records.
"""

import numpy as np
import pytest

from repro.core import WSPSolver
from repro.experiments import ScenarioSpec, execute_scenario
from repro.io import trace_from_dict, trace_to_dict
from repro.sim import (
    DEFAULT_LIFELONG_WINDOW,
    RoutingConfig,
    RoutingError,
    SimulationConfig,
    edge_load_by_vertex,
    edge_traversal_counts,
    free_flow_cost,
    plan_waypoints,
    route_plan,
    simulate_plan,
)
from repro.warehouse import PlanValidator, Workload

GRID_ROUTERS = ("prioritized", "cbs", "ecbs", "lifelong")


def tiny_spec(**overrides):
    base = dict(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture(scope="module")
def solved():
    spec = tiny_spec()
    designed, workload = spec.build()
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=spec.horizon)
    assert solution.succeeded
    return designed, workload, solution


class TestRoutingConfig:
    def test_rejects_unknown_router(self):
        with pytest.raises(RoutingError):
            RoutingConfig(router="teleport")

    def test_rejects_negative_window(self):
        with pytest.raises(RoutingError):
            RoutingConfig(router="ecbs", window=-1)

    def test_rejects_suboptimality_below_one(self):
        with pytest.raises(RoutingError):
            RoutingConfig(router="ecbs", suboptimality=0.9)

    def test_abstract_mode_has_no_engine(self):
        config = RoutingConfig()
        assert not config.is_grid_routed
        with pytest.raises(RoutingError):
            config.engine

    def test_lifelong_defaults_to_windowed_replanning(self):
        assert RoutingConfig(router="lifelong").effective_window == DEFAULT_LIFELONG_WINDOW
        assert RoutingConfig(router="lifelong", window=4).effective_window == 4
        assert RoutingConfig(router="ecbs").effective_window is None

    def test_route_plan_refuses_abstract(self, solved):
        _, _, solution = solved
        with pytest.raises(RoutingError):
            route_plan(solution.plan, RoutingConfig())


class TestRoutedPlans:
    @pytest.mark.parametrize("router", GRID_ROUTERS)
    def test_routed_plan_is_feasible_and_preserves_logistics(self, solved, router):
        designed, _, solution = solved
        routed, report = route_plan(solution.plan, RoutingConfig(router=router))

        assert report.completed, report.summary()
        assert report.conflicts == 0
        assert report.carry_mismatches == 0
        assert report.goals_completed == report.goals_total

        validation = PlanValidator(designed.warehouse).validate(routed)
        assert validation.is_feasible, [str(v) for v in validation.violations[:5]]
        # Same logistics: every unit the abstract plan delivered arrives.
        assert routed.total_delivered() == solution.plan.total_delivered()
        assert routed.delivered_units() == solution.plan.delivered_units()

    @pytest.mark.parametrize("router", GRID_ROUTERS)
    def test_routing_report_telemetry_is_consistent(self, solved, router):
        _, _, solution = solved
        _, report = route_plan(solution.plan, RoutingConfig(router=router))
        assert report.router == router
        assert report.free_flow_cost > 0
        assert report.routed_cost >= report.free_flow_cost
        assert report.inflation >= 1.0
        assert report.replans >= 1
        assert report.max_edge_load >= 1
        # Edge traversals are keyed canonically (u < v) with positive counts.
        for (u, v), crossings in report.edge_traversals.items():
            assert u < v
            assert crossings > 0
        assert report.busiest_edges(3)[0][2] == report.max_edge_load

    def test_waypoints_match_plan_load_changes(self, solved):
        _, _, solution = solved
        plan = solution.plan
        events = plan_waypoints(plan)
        assert len(events) == plan.num_agents
        total_changes = sum(
            int(np.sum(plan.carrying[a, 1:] != plan.carrying[a, :-1]))
            for a in range(plan.num_agents)
        )
        assert sum(len(e) for e in events) == total_changes

    def test_free_flow_cost_is_triangle_consistent(self, solved):
        designed, _, solution = solved
        floorplan = designed.warehouse.floorplan
        events = plan_waypoints(solution.plan)
        for agent in range(solution.plan.num_agents):
            goals = tuple(v for v, _ in events[agent])
            start = int(solution.plan.positions[agent, 0])
            chained = free_flow_cost(floorplan, start, goals)
            if goals:
                direct = free_flow_cost(floorplan, start, goals[-1:])
                assert chained >= direct

    def test_edge_helpers(self):
        paths = ((0, 1, 1, 2), (2, 1, 0))
        counts = edge_traversal_counts(paths)
        assert counts == {(0, 1): 2, (1, 2): 2}
        load = edge_load_by_vertex(3, counts)
        assert load.tolist() == [2, 4, 2]


class TestRoutedSimulation:
    @pytest.mark.parametrize("router", ("prioritized", "lifelong"))
    def test_simulate_plan_grid_routed(self, solved, router):
        _, workload, solution = solved
        report = simulate_plan(
            solution.plan,
            solution.traffic_system,
            flow_set=solution.flow_set,
            workload=workload,
            synthesis=solution.synthesis,
            config=SimulationConfig(routing=RoutingConfig(router=router)),
        )
        assert report.routing is not None
        assert report.routing.router == router
        assert report.units_served == solution.plan.total_delivered()
        assert report.trace.conservation_report() == []
        # The routed motion is recorded on the trace and tagged in metadata.
        assert report.trace.agent_paths is not None
        assert len(report.trace.agent_paths) == solution.plan.num_agents
        assert report.trace.metadata["routing_inflation"] >= 1.0
        assert report.trace.metadata["routing_completed"] == 1.0
        assert "routing [" in report.summary()

    def test_abstract_mode_records_no_paths(self, solved):
        _, workload, solution = solved
        report = simulate_plan(
            solution.plan,
            solution.traffic_system,
            flow_set=solution.flow_set,
            workload=workload,
            synthesis=solution.synthesis,
        )
        assert report.routing is None
        assert report.trace.agent_paths is None
        assert "routing_inflation" not in report.trace.metadata

    def test_routed_trace_round_trips_through_json(self, solved):
        _, workload, solution = solved
        report = simulate_plan(
            solution.plan,
            solution.traffic_system,
            flow_set=solution.flow_set,
            workload=workload,
            config=SimulationConfig(routing=RoutingConfig(router="ecbs")),
        )
        document = trace_to_dict(report.trace)
        reloaded = trace_from_dict(document)
        assert reloaded.agent_paths == report.trace.agent_paths
        assert reloaded.metadata == report.trace.metadata
        assert trace_to_dict(reloaded) == document

    def test_window_trade_off_more_replans_when_tighter(self, solved):
        _, _, solution = solved
        _, wide = route_plan(
            solution.plan, RoutingConfig(router="lifelong", window=64)
        )
        _, tight = route_plan(
            solution.plan, RoutingConfig(router="lifelong", window=2)
        )
        assert tight.completed and wide.completed
        assert tight.replans >= wide.replans


class TestScenarioRouting:
    def test_routing_config_materialization(self):
        assert tiny_spec().routing_config() is None
        config = tiny_spec(router="cbs", routing_window=3).routing_config()
        assert config.router == "cbs"
        assert config.window == 3

    def test_validate_rejects_unknown_router(self):
        with pytest.raises(Exception):
            tiny_spec(router="warp").validate()

    def test_validate_rejects_window_without_grid_router(self):
        # The window would be ignored at run time yet change the scenario_id,
        # producing distinct ids for byte-identical executions.
        with pytest.raises(Exception):
            tiny_spec(router="abstract", routing_window=8).validate()
        tiny_spec(router="lifelong", routing_window=8).validate()

    def test_label_carries_the_router(self):
        assert tiny_spec().label.endswith("-s0")
        assert tiny_spec(router="ecbs").label.endswith("-ecbs")

    def test_scenario_id_distinguishes_routers(self):
        ids = {tiny_spec(router=router).scenario_id for router in GRID_ROUTERS}
        assert len(ids) == len(GRID_ROUTERS)

    def test_scenario_id_stable_across_schema_growth(self):
        """Default-valued routing fields must not perturb pre-1.3 ids.

        ``repro sweep --compare`` joins records by scenario_id; if adding
        spec fields changed the id of unchanged scenarios, every archived
        baseline would silently stop matching.  The id is therefore computed
        over the pre-growth payload whenever the new fields hold defaults.
        """
        import hashlib
        import json
        from dataclasses import asdict

        spec = tiny_spec()
        legacy_payload = asdict(spec)
        # Every post-growth field that holds its default is excluded from the
        # hash (product_order joined the list when slotting search landed).
        for field in ("name", "router", "routing_window", "disruptions",
                      "product_order"):
            legacy_payload.pop(field)
        legacy_id = hashlib.sha1(
            json.dumps(legacy_payload, sort_keys=True).encode()
        ).hexdigest()[:12]
        assert spec.scenario_id == legacy_id
        # Non-default routing/disruption fields do change the identity.
        assert tiny_spec(router="ecbs").scenario_id != legacy_id
        assert tiny_spec(disruptions="breakdown:0.01").scenario_id != legacy_id

    def test_execute_scenario_records_routing_columns(self):
        spec = tiny_spec(router="prioritized")
        document = execute_scenario(spec.to_dict())
        assert document["status"] == "ok"
        sim = document["sim"]
        assert sim["routing_completed"] == 1.0
        assert sim["routing_inflation"] >= 1.0
        assert sim["routing_replans"] >= 1.0
        assert sim["routing_conflicts"] == 0.0
        assert sim["routing_max_edge_load"] >= 1.0


class TestRoutedContractsRegression:
    """Regression for the routed-run contract failures (ISSUE 8).

    Before release pacing + corridor confinement, every grid router on the
    sorting-center-small preset truncated at tick ~123/401, left 16/70 goals
    unreached, broke 10-12 AG contracts, and reported throughput ratios above
    2 by averaging over the truncated tick count.  All five execution modes
    must now finish the full plan on the promised timeline with clean
    contracts.
    """

    @pytest.fixture(scope="class")
    def sorting_reports(self):
        from repro.maps.catalog import sorting_center_small
        from repro.sim import ROUTERS

        designed = sorting_center_small().designed
        solver = WSPSolver(designed.traffic_system)
        workload = Workload.uniform(designed.warehouse.catalog, 4)
        solution = solver.solve(workload, horizon=400)
        assert solution.succeeded, solution.message
        reports = {}
        for router in ROUTERS:
            routing = None if router == "abstract" else RoutingConfig(router=router)
            reports[router] = solver.simulate(
                solution, SimulationConfig(routing=routing, record_events=False)
            )
        return solution, reports

    def test_all_five_routers_pass_contracts(self, sorting_reports):
        _, reports = sorting_reports
        for router, report in reports.items():
            assert report.contracts_ok, (
                f"{router}: {report.num_violations} contract violations"
            )
            assert report.num_violations == 0, router

    def test_all_five_routers_complete_the_plan(self, sorting_reports):
        solution, reports = sorting_reports
        delivered = solution.plan.total_delivered()
        for router, report in reports.items():
            assert not report.truncated, router
            assert report.units_served == delivered, router
            if report.routing is not None:
                assert report.routing.completed, router
                assert report.routing.status == "completed", router
                assert (
                    report.routing.goals_completed == report.routing.goals_total
                ), router

    def test_throughput_ratio_is_exactly_one(self, sorting_reports):
        _, reports = sorting_reports
        for router, report in reports.items():
            assert report.throughput_ratio == pytest.approx(1.0), router

    def test_routed_runs_stay_on_the_plan_timeline(self, sorting_reports):
        solution, reports = sorting_reports
        for router, report in reports.items():
            assert report.plan_ticks == solution.plan.horizon
            assert report.ticks >= report.plan_ticks, router


class TestTruncationThroughput:
    """Property: a truncated run can never overstate throughput.

    The seed normalized realized throughput over the *truncated* tick count,
    so a run serving 30/40 units over 123/401 ticks reported ratio 2.459.
    Normalizing over the promised tick basis makes
    ``throughput_ratio <= 1 + eps`` whenever
    ``units_served <= plan_delivered`` — which routed execution guarantees.
    """

    @pytest.mark.parametrize("max_episodes", (1, 2, 5, 20))
    def test_ratio_bounded_under_forced_truncation(self, solved, max_episodes):
        _, workload, solution = solved
        report = simulate_plan(
            solution.plan,
            solution.traffic_system,
            flow_set=solution.flow_set,
            workload=workload,
            synthesis=solution.synthesis,
            config=SimulationConfig(
                routing=RoutingConfig(
                    router="prioritized", max_episodes=max_episodes
                ),
                record_events=False,
            ),
        )
        delivered = solution.plan.total_delivered()
        assert report.units_served <= delivered
        assert report.throughput_ratio <= 1.0 + 1e-9, (
            f"max_episodes={max_episodes}: ratio {report.throughput_ratio} "
            f"({report.units_served}/{delivered} units)"
        )
        if report.routing.truncated:
            assert report.truncated
            assert report.routing.status != "completed"
            assert "TRUNCATED" in report.routing.summary()
            assert report.trace.metadata["routing_truncated"] == 1.0

    def test_truncated_run_reports_explicit_status(self, solved):
        _, _, solution = solved
        _, report = route_plan(
            solution.plan,
            RoutingConfig(router="prioritized", max_episodes=1),
        )
        assert report.truncated
        assert report.status == "episode_limit"
        assert report.goals_completed < report.goals_total
