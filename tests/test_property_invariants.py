"""End-to-end property-based tests of the methodology's core invariants.

For randomly drawn (small) layouts and workloads, whenever the pipeline
reports success the following must hold:

* the synthesized flow set conserves agents and respects every capacity;
* the cycle set preserves the flow set's throughput and per-component load;
* the realized plan satisfies all three feasibility conditions of Sec. III
  (checked by the independent validator);
* Property 4.1 holds (every agent advances one component per cycle period);
* the plan services the workload within the horizon.

These are the invariants the paper's correctness argument rests on; running
them over a randomized family of layouts guards every stage against
regressions that the fixed-map unit tests might miss.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import WSPSolver
from repro.maps import FulfillmentLayout, generate_fulfillment_center
from repro.traffic import validate
from repro.warehouse import PlanValidator, Workload


@st.composite
def small_layouts(draw):
    return FulfillmentLayout(
        num_slices=draw(st.integers(min_value=1, max_value=3)),
        shelf_columns=draw(st.integers(min_value=3, max_value=6)),
        shelf_bands=draw(st.sampled_from([1, 3])),
        shelf_depth=draw(st.sampled_from([1, 2])),
        num_stations=draw(st.integers(min_value=1, max_value=2)),
        num_products=draw(st.integers(min_value=1, max_value=5)),
        name="hypothesis-e2e",
    )


class TestEndToEndInvariants:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(layout=small_layouts(), data=st.data())
    def test_pipeline_invariants(self, layout, data):
        designed = generate_fulfillment_center(layout)
        assert validate(designed.traffic_system).is_valid

        # Draw a workload the traffic system can plausibly carry.
        horizon = 1500
        system = designed.traffic_system
        periods = horizon // system.cycle_time()
        ceiling = max(2, min(40, periods * system.station_throughput_capacity() // 4))
        units = data.draw(st.integers(min_value=1, max_value=ceiling), label="units")
        workload = Workload.uniform(designed.warehouse.catalog, units)

        solution = WSPSolver(system).solve(workload, horizon=horizon)
        if not solution.succeeded:
            # Infeasibility is a legitimate outcome for tight draws; the
            # invariants below only apply to reported successes.
            return

        flow_set = solution.flow_set
        assert flow_set.check_conservation() == []
        assert flow_set.check_capacity() == []

        cycle_set = solution.cycle_set
        assert cycle_set.deliveries_per_period() == flow_set.deliveries_per_period()
        assert cycle_set.num_agents == flow_set.num_agents
        load = cycle_set.component_load()
        for component in system.components:
            assert load.get(component.index, 0) <= component.capacity

        assert solution.realization.property41_violations == 0
        report = PlanValidator(designed.warehouse).validate(solution.plan)
        assert report.is_feasible, [str(v) for v in report.violations[:5]]
        assert solution.plan.services(workload)

    @settings(max_examples=8, deadline=None)
    @given(layout=small_layouts())
    def test_schedule_covers_demand_products(self, layout):
        designed = generate_fulfillment_center(layout)
        workload = Workload.uniform(designed.warehouse.catalog, 6)
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=1500)
        if not solution.succeeded:
            return
        scheduled = solution.schedule.scheduled_units()
        delivered = solution.plan.delivered_units()
        for product in workload.requested_products():
            assert scheduled.get(product, 0) >= workload.demand(product)
            assert delivered.get(product, 0) >= workload.demand(product)
