"""Tests for workloads and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warehouse import ProductCatalog, Workload, WorkloadError, check_workload_stock


@pytest.fixture()
def catalog():
    return ProductCatalog.numbered(5)


class TestConstruction:
    def test_from_mapping(self, catalog):
        workload = Workload.from_mapping(catalog, {1: 3, 4: 2})
        assert workload.demand(1) == 3
        assert workload.demand(2) == 0
        assert workload.total_units == 5
        assert workload.requested_products() == (1, 4)
        assert workload.as_dict() == {1: 3, 4: 2}

    def test_from_mapping_rejects_unknown_product(self, catalog):
        with pytest.raises(WorkloadError):
            Workload.from_mapping(catalog, {9: 1})

    def test_negative_rejected(self, catalog):
        with pytest.raises(WorkloadError):
            Workload((1, -1, 0, 0, 0))
        with pytest.raises(WorkloadError):
            Workload.from_mapping(catalog, {1: -2})

    def test_uniform_split(self, catalog):
        workload = Workload.uniform(catalog, 12)
        assert workload.total_units == 12
        assert max(workload.demands) - min(workload.demands) <= 1
        assert workload.num_requested_products == 5

    def test_uniform_exact_paper_shape(self):
        # Fulfillment-1 instance: 55 products, 550 units -> 10 units each.
        catalog = ProductCatalog.numbered(55)
        workload = Workload.uniform(catalog, 550)
        assert set(workload.demands) == {10}

    def test_zipf_total_and_skew(self, catalog):
        workload = Workload.zipf(catalog, 200, rng=np.random.default_rng(3))
        assert workload.total_units == 200
        assert max(workload.demands) > min(workload.demands)

    def test_demand_bad_id(self, catalog):
        workload = Workload.uniform(catalog, 5)
        with pytest.raises(WorkloadError):
            workload.demand(99)


class TestOperations:
    def test_scaled(self, catalog):
        workload = Workload.uniform(catalog, 10)
        doubled = workload.scaled(2.0)
        assert doubled.total_units == 20

    def test_scaled_keeps_requested_products(self, catalog):
        workload = Workload.from_mapping(catalog, {1: 1, 2: 9})
        half = workload.scaled(0.4)
        assert half.demand(1) >= 1  # rounding never silently drops a product

    def test_scaled_rejects_negative(self, catalog):
        with pytest.raises(WorkloadError):
            Workload.uniform(catalog, 5).scaled(-1)

    def test_satisfaction_and_shortfall(self, catalog):
        workload = Workload.from_mapping(catalog, {1: 2, 3: 4})
        assert workload.is_satisfied_by({1: 2, 3: 5})
        assert not workload.is_satisfied_by({1: 2, 3: 3})
        assert workload.shortfall({1: 1}) == {1: 1, 3: 4}
        assert workload.shortfall({1: 2, 3: 4}) == {}

    def test_check_workload_stock(self, catalog):
        workload = Workload.from_mapping(catalog, {1: 5})
        check_workload_stock(workload, {1: 10})
        with pytest.raises(WorkloadError):
            check_workload_stock(workload, {1: 3})


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        products=st.integers(min_value=1, max_value=30),
        total=st.integers(min_value=0, max_value=500),
    )
    def test_uniform_conserves_total(self, products, total):
        workload = Workload.uniform(ProductCatalog.numbered(products), total)
        assert workload.total_units == total

    @settings(max_examples=30, deadline=None)
    @given(
        products=st.integers(min_value=1, max_value=20),
        total=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_zipf_conserves_total(self, products, total, seed):
        workload = Workload.zipf(
            ProductCatalog.numbered(products), total, rng=np.random.default_rng(seed)
        )
        assert workload.total_units == total
