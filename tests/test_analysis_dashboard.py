"""The ``repro top`` renderers: pure functions from snapshots/events to text.

These are deliberately cheap tests — the renderers are pure (no I/O, no
clocks of their own), so we pin the load-bearing behavior: progress folding
over a sweep event stream (completed counts, pass rate, ETA), bar scaling
and clamping, and that frames render without ANSI escapes when color is off
(the ``--no-color`` / piped-output path).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    render_bar,
    render_events_tail,
    render_service_frame,
    render_sweep_frame,
    summarize_sweep_events,
)


def sweep_events():
    def event(seq, kind, component="sweep", level="info", message="", **fields):
        return {
            "seq": seq, "ts": 100.0 + seq, "mono": float(seq), "level": level,
            "component": component, "kind": kind, "message": message,
            "run_id": "", "request_id": "", "scenario_id": "", "fields": fields,
        }

    return [
        event(1, "sweep.started", total=4, workers=2),
        event(2, "run.started", component="runner", message="smoke/a"),
        event(3, "run.started", component="runner", message="smoke/b"),
        event(4, "sweep.progress", message="smoke/a", status="ok", completed=1, total=4),
        event(5, "disruption.onset", component="sim", level="warning",
              message="breakdown agent-3", disruption="breakdown"),
        event(6, "sweep.progress", message="smoke/b", status="timeout",
              completed=2, total=4),
    ]


def test_summarize_sweep_events_folds_progress():
    summary = summarize_sweep_events(sweep_events(), now=None)
    assert summary["total"] == 4 and summary["workers"] == 2
    assert summary["completed"] == 2
    assert summary["statuses"] == {"ok": 1, "timeout": 1}
    assert summary["in_flight"] == 0  # both started runs have finished
    assert summary["disruptions"] == 1
    assert not summary["finished"]


def test_summarize_sweep_events_tracks_completion():
    events = sweep_events() + [{
        "seq": 7, "ts": 110.0, "mono": 7.0, "level": "info", "component": "sweep",
        "kind": "sweep.finished", "message": "", "run_id": "", "request_id": "",
        "scenario_id": "", "fields": {"total": 4, "seconds": 9.5},
    }]
    summary = summarize_sweep_events(events, now=None)
    assert summary["finished"]
    # Elapsed comes from the event timestamps: finish ts - start ts.
    assert summary["elapsed"] == pytest.approx(110.0 - 101.0)


def test_render_bar_scales_and_clamps():
    assert render_bar(0.0, width=8, color=False) == "[........]   0%"
    assert render_bar(0.5, width=8, color=False) == "[####....]  50%"
    assert render_bar(1.0, width=8, color=False) == "[########] 100%"
    assert render_bar(7.3, width=8, color=False) == "[########] 100%"  # clamped
    assert render_bar(-2.0, width=8, color=False) == "[........]   0%"


def test_sweep_frame_renders_without_ansi_when_color_off():
    frame = render_sweep_frame(sweep_events(), now=107.0, color=False)
    assert "\x1b[" not in frame
    assert "2/4" in frame
    assert "timeout" in frame
    assert "disruptions 1" in frame


def test_service_frame_renders_a_dashboard_snapshot():
    snapshot = {
        "schema": "service-dashboard",
        "health": {"status": "ok", "version": "1.7.0", "uptime_seconds": 12.5,
                   "draining": False, "workers": 2, "in_flight": 1},
        "metrics": {
            "requests": {"total": 10, "by_state": {"solved": 8, "rejected": 2},
                         "active": 1},
            "cache": {"size": 4, "hits": 6, "misses": 4, "hit_rate": 0.6,
                      "in_flight": 0},
            "pool": {"submitted": 10, "completed": 9, "rejected": 2,
                     "in_flight": 1, "workers": 2, "max_pending": 8,
                     "draining": False},
            "latency_seconds": {
                "warm": {"p50": 0.002, "p95": 0.004, "count": 8},
                "cold": {"p50": 0.9, "p95": 1.2, "count": 2},
            },
        },
        "events": sweep_events()[:2],
        "last_event_seq": 2,
    }
    frame = render_service_frame(snapshot, color=False)
    assert "\x1b[" not in frame
    assert "v1.7.0" in frame and "ok" in frame
    assert "cache" in frame and "60%" in frame
    assert "sweep.started" in frame


def test_events_tail_is_bounded_and_falls_back_to_fields():
    events = sweep_events() + [{
        "seq": 7, "ts": 107.0, "mono": 7.0, "level": "info", "component": "sweep",
        "kind": "sweep.finished", "message": "", "run_id": "", "request_id": "",
        "scenario_id": "", "fields": {"total": 4, "seconds": 9.5},
    }]
    lines = render_events_tail(events, limit=2, color=False)
    assert len(lines) == 2
    # The last event carries no message -> the renderer shows its fields.
    assert "total=4" in lines[-1] and "seconds=9.5" in lines[-1]
