"""End-to-end integration tests for the WSP solver pipeline."""

import pytest

from repro.core import (
    FlowSynthesisError,
    RealizationOptions,
    SolverOptions,
    SynthesisOptions,
    WSPSolver,
    solve_wsp,
)
from repro.maps import (
    FulfillmentLayout,
    generate_fulfillment_center,
    sorting_center_small,
    toy_warehouse,
)
from repro.warehouse import PlanValidator, Workload, WSPInstance


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def solution(designed):
    workload = Workload.uniform(designed.warehouse.catalog, 8)
    return WSPSolver(designed.traffic_system).solve(workload, horizon=600)


class TestEndToEnd:
    def test_solution_succeeds(self, solution):
        assert solution.succeeded
        assert solution.plan is not None
        assert solution.num_agents > 0

    def test_plan_is_feasible_and_services_workload(self, solution):
        assert solution.plan_is_feasible
        assert solution.services_workload

    def test_all_stages_produced_artifacts(self, solution):
        assert solution.flow_set is not None
        assert solution.cycle_set is not None
        assert solution.schedule is not None
        assert solution.realization is not None
        assert solution.plan_report is not None

    def test_timings_cover_all_stages(self, solution):
        for stage in ("synthesis", "decomposition", "realization", "validation"):
            assert stage in solution.timings
        assert solution.total_seconds == pytest.approx(sum(solution.timings.values()))
        assert solution.synthesis_seconds > 0

    def test_summary_mentions_agents_and_time(self, solution):
        text = solution.summary()
        assert "agents" in text
        assert "synthesis" in text

    def test_plan_horizon_within_limit(self, solution):
        assert solution.plan.horizon <= solution.instance.horizon + 1

    def test_independent_validation_agrees(self, solution, designed):
        report = PlanValidator(designed.warehouse).validate(solution.plan)
        assert report.is_feasible
        assert report.delivered == solution.plan.delivered_units()


class TestSolverInterface:
    def test_solve_wsp_helper(self, designed):
        workload = Workload.from_mapping(designed.warehouse.catalog, {1: 2, 2: 2})
        solution = solve_wsp(designed.traffic_system, workload, horizon=600)
        assert solution.succeeded
        assert solution.services_workload

    def test_solve_instance_requires_matching_warehouse(self, designed):
        other = toy_warehouse()
        workload = Workload.uniform(other.warehouse.catalog, 4)
        instance = WSPInstance(other.warehouse, workload, horizon=600)
        solver = WSPSolver(designed.traffic_system)
        with pytest.raises(FlowSynthesisError):
            solver.solve_instance(instance)

    def test_infeasible_instance_reports_gracefully(self, designed):
        # 2000 units fit the stock but far exceed the traffic system's
        # per-period delivery capacity within the 600-step horizon.
        workload = Workload.uniform(designed.warehouse.catalog, 2000)
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=600)
        assert not solution.succeeded
        assert solution.plan is None
        assert not solution.services_workload
        assert "no agent flow set" in solution.message

    def test_custom_options_are_respected(self, designed):
        options = SolverOptions(
            synthesis=SynthesisOptions(objective="none", warmup_periods=2),
            realization=RealizationOptions(preload_agents=False),
            validate_plan=False,
        )
        workload = Workload.uniform(designed.warehouse.catalog, 4)
        solution = WSPSolver(designed.traffic_system, options).solve(workload, horizon=600)
        assert solution.succeeded
        assert solution.plan_report is None
        assert solution.flow_set.warmup_periods == 2


class TestOtherMaps:
    def test_sorting_center_small_end_to_end(self):
        center = sorting_center_small()
        workload = center.uniform_workload(center.num_chutes * 2)
        solution = WSPSolver(center.traffic_system).solve(workload, horizon=1500)
        assert solution.succeeded
        assert solution.plan_is_feasible
        assert solution.services_workload

    def test_single_slice_layout_end_to_end(self):
        layout = FulfillmentLayout(
            num_slices=1,
            shelf_columns=4,
            shelf_bands=1,
            shelf_depth=1,
            num_stations=1,
            num_products=2,
            name="single-slice",
        )
        designed = generate_fulfillment_center(layout)
        workload = Workload.uniform(designed.warehouse.catalog, 4)
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=800)
        assert solution.succeeded
        assert solution.plan_is_feasible
        assert solution.services_workload

    def test_skewed_workload_end_to_end(self, designed):
        workload = Workload.from_mapping(designed.warehouse.catalog, {1: 12, 3: 1})
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=900)
        assert solution.succeeded
        assert solution.services_workload
