"""Tests for the multi-agent solvers: prioritized, CBS, ECBS, and the lifelong planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WSPSolver
from repro.maps import toy_warehouse
from repro.mapf import (
    CBSOptions,
    ECBSOptions,
    IteratedPlanner,
    IteratedPlannerOptions,
    LifelongError,
    LifelongTask,
    MAPFProblem,
    goal_sequences_from_plan,
    solve_cbs,
    solve_ecbs,
    solve_prioritized,
)
from repro.warehouse import FloorplanGraph, Workload, build_grid


def open_floorplan(width=5, height=3, obstacles=()):
    return FloorplanGraph.from_grid(build_grid(width, height, obstacles=obstacles))


def corridor_swap_problem():
    """Two agents must swap ends of a 5x1 corridor with a single passing bay."""
    grid = build_grid(5, 2, obstacles=[(0, 1), (1, 1), (3, 1), (4, 1)])
    floorplan = FloorplanGraph.from_grid(grid)
    a = (floorplan.vertex_at((0, 0)), floorplan.vertex_at((4, 0)))
    b = (floorplan.vertex_at((4, 0)), floorplan.vertex_at((0, 0)))
    return MAPFProblem.from_pairs(floorplan, [a, b])


def crossing_problem():
    """Two agents whose shortest paths cross in the middle of an open grid."""
    floorplan = open_floorplan(3, 3)
    a = (floorplan.vertex_at((0, 1)), floorplan.vertex_at((2, 1)))
    b = (floorplan.vertex_at((1, 0)), floorplan.vertex_at((1, 2)))
    return MAPFProblem.from_pairs(floorplan, [a, b])


class TestPrioritized:
    def test_crossing(self):
        solution = solve_prioritized(crossing_problem())
        assert solution is not None
        assert solution.is_valid()

    def test_corridor_swap_shows_incompleteness(self):
        # The higher-priority agent sweeps the corridor toward the other
        # agent's start and parks there; prioritized planning cannot resolve
        # this (well-known incompleteness), while CBS can (see TestCBS).
        assert solve_prioritized(corridor_swap_problem()) is None

    def test_custom_order(self):
        problem = crossing_problem()
        solution = solve_prioritized(problem, order=[1, 0])
        assert solution is not None
        assert solution.is_valid()

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            solve_prioritized(crossing_problem(), order=[0, 0])


class TestCBS:
    def test_crossing_is_optimal(self):
        solution = solve_cbs(crossing_problem())
        assert solution is not None
        assert solution.is_valid()
        # Each agent's individually optimal cost is 2; one of them must wait or
        # detour exactly one step.
        assert solution.sum_of_costs == 5

    def test_corridor_swap(self):
        solution = solve_cbs(corridor_swap_problem())
        assert solution is not None
        assert solution.is_valid()

    def test_single_agent(self):
        floorplan = open_floorplan()
        problem = MAPFProblem.from_pairs(
            floorplan, [(floorplan.vertex_at((0, 0)), floorplan.vertex_at((4, 2)))]
        )
        solution = solve_cbs(problem)
        assert solution is not None
        assert solution.sum_of_costs == 6

    def test_node_limit_gives_none(self):
        solution = solve_cbs(corridor_swap_problem(), CBSOptions(max_nodes=1))
        # With a single constraint-tree node the conflicting root cannot be
        # resolved.
        assert solution is None


class TestECBS:
    def test_crossing_within_bound(self):
        optimal = solve_cbs(crossing_problem())
        bounded = solve_ecbs(crossing_problem(), ECBSOptions(suboptimality=1.5))
        assert bounded is not None
        assert bounded.is_valid()
        assert bounded.sum_of_costs <= 1.5 * optimal.sum_of_costs

    def test_corridor_swap(self):
        solution = solve_ecbs(corridor_swap_problem())
        assert solution is not None
        assert solution.is_valid()

    def test_invalid_suboptimality_rejected(self):
        with pytest.raises(ValueError):
            ECBSOptions(suboptimality=0.5)

    def test_many_agents_on_open_grid(self):
        floorplan = open_floorplan(6, 4)
        pairs = []
        for i in range(6):
            start = floorplan.vertex_at((i, 0))
            goal = floorplan.vertex_at((5 - i, 3))
            pairs.append((start, goal))
        problem = MAPFProblem.from_pairs(floorplan, pairs)
        solution = solve_ecbs(problem, ECBSOptions(suboptimality=2.0))
        assert solution is not None
        assert solution.is_valid()


class TestECBSvsCBSPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bounded_suboptimality_on_random_instances(self, seed):
        import random

        rng = random.Random(seed)
        floorplan = open_floorplan(5, 4)
        cells = [floorplan.vertex_at(c) for c in floorplan.cells]
        starts = rng.sample(cells, 3)
        goals = rng.sample(cells, 3)
        problem = MAPFProblem.from_pairs(floorplan, list(zip(starts, goals)))
        optimal = solve_cbs(problem, CBSOptions(max_nodes=2000))
        bounded = solve_ecbs(problem, ECBSOptions(suboptimality=1.5, max_nodes=2000))
        if optimal is None or bounded is None:
            return  # skip instances the limited search cannot settle
        assert bounded.is_valid()
        assert bounded.sum_of_costs <= 1.5 * optimal.sum_of_costs + 1e-9


class TestIteratedPlanner:
    def test_sequential_goals_completed(self):
        floorplan = open_floorplan(5, 3)
        tasks = [
            LifelongTask(0, floorplan.vertex_at((0, 0)),
                         (floorplan.vertex_at((4, 0)), floorplan.vertex_at((0, 2)))),
            LifelongTask(1, floorplan.vertex_at((0, 1)),
                         (floorplan.vertex_at((4, 1)),)),
        ]
        planner = IteratedPlanner(floorplan)
        result = planner.solve(tasks)
        assert result.completed
        assert result.goals_completed == 3
        assert result.is_collision_free()
        assert result.makespan > 0

    def test_engines(self):
        floorplan = open_floorplan(4, 3)
        tasks = [
            LifelongTask(0, floorplan.vertex_at((0, 0)), (floorplan.vertex_at((3, 2)),)),
            LifelongTask(1, floorplan.vertex_at((3, 0)), (floorplan.vertex_at((0, 2)),)),
        ]
        for engine in ("ecbs", "cbs", "prioritized"):
            result = IteratedPlanner(
                floorplan, IteratedPlannerOptions(engine=engine)
            ).solve(tasks)
            assert result.completed, engine
            assert result.is_collision_free(), engine

    def test_shared_goals_are_sequenced(self):
        floorplan = open_floorplan(4, 3)
        shared = floorplan.vertex_at((3, 1))
        tasks = [
            LifelongTask(0, floorplan.vertex_at((0, 0)), (shared,)),
            LifelongTask(1, floorplan.vertex_at((0, 2)), (shared, floorplan.vertex_at((0, 1)))),
        ]
        result = IteratedPlanner(floorplan).solve(tasks)
        assert result.completed
        assert result.is_collision_free()

    def test_time_limit_reports_incomplete(self):
        floorplan = open_floorplan(6, 4)
        tasks = [
            LifelongTask(
                i,
                floorplan.vertex_at((i, 0)),
                tuple(floorplan.vertex_at((5 - i, 3)) for _ in range(5)),
            )
            for i in range(5)
        ]
        result = IteratedPlanner(
            floorplan, IteratedPlannerOptions(time_limit=1e-6)
        ).solve(tasks)
        assert not result.completed
        assert result.goals_completed < result.goals_total

    def test_bad_engine_rejected(self):
        with pytest.raises(LifelongError):
            IteratedPlannerOptions(engine="dijkstra")


class TestGoalExtraction:
    def test_goal_sequences_from_codesign_plan(self):
        designed = toy_warehouse()
        workload = Workload.uniform(designed.warehouse.catalog, 4)
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=600)
        assert solution.succeeded
        tasks = goal_sequences_from_plan(solution.plan, max_goals_per_agent=3)
        assert len(tasks) == solution.plan.num_agents
        assert any(task.goals for task in tasks)
        floorplan = designed.warehouse.floorplan
        for task in tasks:
            assert len(task.goals) <= 3
            for goal in task.goals:
                assert floorplan.is_shelf_access(goal) or floorplan.is_station(goal)
