"""Tests for flow decomposition, cycle formation and delivery scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DecompositionError,
    SynthesisOptions,
    build_delivery_schedule,
    decompose_flow_set,
    extract_carrying_paths,
    extract_empty_paths,
    synthesize_flows,
)
from repro.maps import FulfillmentLayout, generate_fulfillment_center, toy_warehouse
from repro.warehouse import Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


@pytest.fixture(scope="module")
def workload(designed):
    return Workload.uniform(designed.warehouse.catalog, 8)


@pytest.fixture(scope="module")
def flow_set(system, workload):
    result = synthesize_flows(system, workload, horizon=600)
    assert result.succeeded
    return result.flow_set


class TestPathExtraction:
    def test_carrying_path_counts_match_flows(self, flow_set):
        paths = extract_carrying_paths(flow_set)
        assert len(paths) == sum(flow_set.pickups.values())
        for path in paths:
            assert path.loaded
            assert flow_set.system.component(path.start).is_shelving_row
            assert flow_set.system.component(path.end).is_station_queue

    def test_empty_path_counts_match_flows(self, flow_set):
        paths = extract_empty_paths(flow_set)
        assert len(paths) == sum(flow_set.dropoffs.values())
        for path in paths:
            assert not path.loaded
            assert flow_set.system.component(path.start).is_station_queue
            assert flow_set.system.component(path.end).is_shelving_row

    def test_paths_follow_traffic_edges(self, flow_set):
        edges = set(flow_set.system.edges())
        for path in extract_carrying_paths(flow_set) + extract_empty_paths(flow_set):
            for u, v in zip(path.components, path.components[1:]):
                assert (u, v) in edges

    def test_edge_usage_matches_flow_values(self, flow_set):
        usage = {}
        for path in extract_carrying_paths(flow_set):
            for u, v in zip(path.components, path.components[1:]):
                usage[(u, v)] = usage.get((u, v), 0) + 1
        assert usage == {k: v for k, v in flow_set.loaded_flows.items() if v}


class TestCycleFormation:
    def test_decomposed_cycle_set_is_valid(self, flow_set):
        cycle_set = decompose_flow_set(flow_set)
        cycle_set.validate()
        assert cycle_set.cycle_time == flow_set.cycle_time
        assert cycle_set.num_periods == flow_set.num_periods

    def test_throughput_preserved(self, flow_set):
        cycle_set = decompose_flow_set(flow_set)
        assert cycle_set.deliveries_per_period() == flow_set.deliveries_per_period()

    def test_agent_count_matches_flow(self, flow_set):
        cycle_set = decompose_flow_set(flow_set)
        assert cycle_set.num_agents == flow_set.num_agents

    def test_component_load_matches_inflow(self, flow_set):
        cycle_set = decompose_flow_set(flow_set)
        load = cycle_set.component_load()
        for component in flow_set.system.components:
            assert load.get(component.index, 0) == flow_set.total_inflow_of(component.index)


class TestDeliverySchedule:
    def test_required_units_scheduled(self, flow_set, workload):
        schedule = build_delivery_schedule(flow_set, workload)
        scheduled = schedule.scheduled_units()
        for product in workload.requested_products():
            assert scheduled.get(product, 0) >= workload.demand(product)

    def test_schedule_respects_row_stock(self, flow_set, workload, system):
        schedule = build_delivery_schedule(flow_set, workload)
        for row, queue in schedule.queues.items():
            per_product = {}
            for product in queue:
                per_product[product] = per_product.get(product, 0) + 1
            for product, units in per_product.items():
                assert units <= system.units_at(row, product)

    def test_schedule_rows_have_pickup_flow(self, flow_set, workload):
        schedule = build_delivery_schedule(flow_set, workload)
        for row in schedule.queues:
            assert flow_set.pickups.get(row, 0) > 0

    def test_schedule_respects_row_capacity(self, flow_set, workload):
        schedule = build_delivery_schedule(flow_set, workload)
        for row, queue in schedule.queues.items():
            assert len(queue) <= flow_set.num_periods * flow_set.pickups[row]

    def test_missing_pickup_rate_rejected(self, flow_set, designed):
        # Ask for a product the flow set never picks up (demand 0 in synthesis).
        impossible = Workload.from_mapping(designed.warehouse.catalog, {1: 1, 2: 1, 3: 1, 4: 1})
        # flow_set was synthesized for the uniform workload over all 4 products,
        # so this actually works; instead fabricate a workload with a product
        # that has no pickup rate by zeroing the rates.
        stripped = type(flow_set)(
            system=flow_set.system,
            cycle_time=flow_set.cycle_time,
            num_periods=flow_set.num_periods,
            warmup_periods=flow_set.warmup_periods,
            loaded_flows=dict(flow_set.loaded_flows),
            empty_flows=dict(flow_set.empty_flows),
            pickups=dict(flow_set.pickups),
            dropoffs=dict(flow_set.dropoffs),
            pickup_rates={},
            dropoff_rates=dict(flow_set.dropoff_rates),
        )
        with pytest.raises(DecompositionError):
            build_delivery_schedule(stripped, impossible)


class TestDecompositionPropertyBased:
    @settings(max_examples=8, deadline=None)
    @given(
        units=st.integers(min_value=2, max_value=20),
        products=st.integers(min_value=1, max_value=6),
    )
    def test_small_layouts_decompose_cleanly(self, units, products):
        layout = FulfillmentLayout(
            num_slices=2,
            shelf_columns=4,
            shelf_bands=1,
            shelf_depth=1,
            num_stations=2,
            num_products=products,
            name="hypothesis-decomposition",
        )
        designed = generate_fulfillment_center(layout)
        workload = Workload.uniform(designed.warehouse.catalog, units)
        result = synthesize_flows(designed.traffic_system, workload, horizon=900)
        assert result.succeeded
        cycle_set = decompose_flow_set(result.flow_set)
        cycle_set.validate()
        schedule = build_delivery_schedule(result.flow_set, workload)
        scheduled = schedule.scheduled_units()
        for product in workload.requested_products():
            assert scheduled.get(product, 0) >= workload.demand(product)
