"""Pre-fork server tests: worker fleet boot, hot-path parity, metrics merge.

Each parametrized mode boots one two-worker fleet for the whole module:
``reuseport`` (per-worker SO_REUSEPORT listeners) where the platform has
it, and ``shared-listener`` (one inherited socket) everywhere.  All solve
traffic goes through the hand-rolled ``POST /solve`` turbo path; the other
endpoints exercise the stock-machinery fallback inside the same handler.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.experiments import ScenarioSpec
from repro.service import (
    FastServiceClient,
    PreforkServer,
    RoundRobinClient,
    ServiceClient,
    ServiceConfig,
    ServiceRequest,
)

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)
OTHER = ScenarioSpec(
    **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}
)

MODES = ["shared-listener"] + (
    ["reuseport"] if hasattr(socket, "SO_REUSEPORT") else []
)


@pytest.fixture(scope="module", params=MODES)
def fleet(request, tmp_path_factory):
    store = tmp_path_factory.mktemp("prefork") / f"{request.param}.jsonl"
    config = ServiceConfig(
        port=0,
        workers=1,
        max_pending=4,
        warm_up=True,
        http_workers=2,
        store_path=store,
        max_body_bytes=64 * 1024,
    )
    server = PreforkServer(
        config, quiet=True, reuse_port=(request.param == "reuseport")
    ).start(ready_timeout=180.0)
    yield server
    assert server.stop(drain_timeout=60.0)


def raw_roundtrip(server, payload: bytes) -> int:
    """One raw POST /solve, returns the HTTP status code."""
    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        sock.sendall(payload)
        sock.settimeout(30)
        reply = sock.recv(65536)
    return int(reply.split(None, 2)[1])


class TestFleetEndpoints:
    def test_health_through_stock_fallback(self, fleet):
        # GET endpoints bypass the turbo prefix and run the stock machinery.
        with ServiceClient(fleet.url, timeout=60) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1

    def test_solve_cold_then_warm_on_turbo_path(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as client:
            status, cold = client.solve(ServiceRequest(scenario=TINY))
            assert status == 200 and cold.state == "ok"
            status, warm = client.solve(ServiceRequest(scenario=TINY))
        assert status == 200 and warm.state == "ok" and warm.served_from_cache
        assert warm.record["scenario_id"] == TINY.scenario_id
        assert warm.record["schema"] == "experiment-run"

    def test_warm_results_visible_from_every_worker(self, fleet):
        """The JSONL store is the shared warm layer: whichever worker accepts
        a fresh connection serves the already-computed result from cache."""
        with ServiceClient(fleet.url, timeout=300) as client:
            client.solve(ServiceRequest(scenario=TINY))
        for _ in range(6):  # fresh connections land on arbitrary workers
            with ServiceClient(fleet.url, timeout=60) as client:
                status, response = client.solve(ServiceRequest(scenario=TINY))
            assert status == 200 and response.state == "ok"
            assert response.served_from_cache

    def test_fast_client_request_id_echo(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as seed:
            seed.solve(ServiceRequest(scenario=TINY))
        with FastServiceClient(fleet.url, timeout=60) as client:
            wire = client.render(ServiceRequest(scenario=TINY))
            for _ in range(50):
                status, view = client.solve_prepared(wire)
                assert status == 200
                assert view.state == "ok" and view.served_from_cache

    def test_round_robin_client_spreads_over_replica_urls(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as seed:
            seed.solve(ServiceRequest(scenario=TINY))
        # Same fleet listed twice: the client rotates between connections.
        with RoundRobinClient([fleet.url, fleet.url], timeout=60) as client:
            wire = client.render(ServiceRequest(scenario=TINY))
            for _ in range(10):
                status, view = client.solve_prepared(wire)
                assert status == 200 and view.served_from_cache

    def test_batch_preserves_input_order(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as client:
            responses = client.batch(
                [ServiceRequest(scenario=TINY), ServiceRequest(scenario=OTHER)]
            )
        assert [r.scenario_id for r in responses] == [
            TINY.scenario_id,
            OTHER.scenario_id,
        ]
        assert all(r.state == "ok" for r in responses)

    def test_metrics_counts_turbo_requests(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as client:
            client.solve(ServiceRequest(scenario=TINY))
            metrics = client.metrics()
        assert metrics["requests"]["total"] >= 1
        assert metrics["cache"]["hit_rate"] > 0


class TestTurboBodyBounds:
    def head(self, fleet, length, extra: str = "") -> bytes:
        return (
            f"POST /solve HTTP/1.1\r\nHost: {fleet.host}:{fleet.port}\r\n"
            f"Content-Type: application/json\r\nContent-Length: {length}\r\n"
            f"{extra}Connection: close\r\n\r\n"
        ).encode()

    def test_missing_content_length_is_411(self, fleet):
        payload = (
            f"POST /solve HTTP/1.1\r\nHost: {fleet.host}:{fleet.port}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        assert raw_roundtrip(fleet, payload) == 411

    def test_negative_content_length_is_400(self, fleet):
        assert raw_roundtrip(fleet, self.head(fleet, -7)) == 400

    def test_malformed_content_length_is_400(self, fleet):
        assert raw_roundtrip(fleet, self.head(fleet, "banana")) == 400

    def test_oversize_body_is_413_without_reading_it(self, fleet):
        # Claim a body over max_body_bytes; never send it.  The server must
        # reject from the header alone (and close), not buffer the body.
        oversize = 64 * 1024 + 1
        assert raw_roundtrip(fleet, self.head(fleet, oversize)) == 413

    def test_invalid_json_body_is_400(self, fleet):
        body = b"{not json"
        assert raw_roundtrip(fleet, self.head(fleet, len(body)) + body) == 400

    def test_expect_100_continue_is_honoured(self, fleet):
        with ServiceClient(fleet.url, timeout=300) as seed:
            seed.solve(ServiceRequest(scenario=TINY))
        body = json.dumps(ServiceRequest(scenario=TINY).to_dict()).encode()
        with socket.create_connection((fleet.host, fleet.port), timeout=30) as sock:
            sock.sendall(self.head(fleet, len(body), extra="Expect: 100-continue\r\n"))
            sock.settimeout(30)
            interim = sock.recv(64)
            assert b"100 Continue" in interim
            sock.sendall(body)
            reply = b""
            while b"\r\n\r\n" not in reply:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        assert reply.split(None, 2)[1] == b"200"


class TestLifecycle:
    def test_stop_merges_per_worker_metrics(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, max_pending=4, warm_up=False,
            http_workers=2, store_path=tmp_path / "results.jsonl",
        )
        server = PreforkServer(config, quiet=True).start(ready_timeout=180.0)
        try:
            with ServiceClient(server.url, timeout=300) as client:
                client.solve(ServiceRequest(scenario=TINY))
                client.solve(ServiceRequest(scenario=TINY))
        finally:
            assert server.stop(drain_timeout=60.0)
        merged = server.registry.snapshot()
        served = sum(
            entry["value"]
            for entry in merged["metrics"]
            if entry["name"] == "repro_requests_total"
        )
        assert served >= 2.0

    def test_socket_closed_after_stop(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, warm_up=False, http_workers=2,
            store_path=tmp_path / "results.jsonl",
        )
        server = PreforkServer(config, quiet=True).start(ready_timeout=180.0)
        host, port = server.host, server.port
        assert server.stop(drain_timeout=30.0)
        deadline = time.monotonic() + 10.0
        refused = False
        while time.monotonic() < deadline and not refused:
            try:
                probe = socket.create_connection((host, port), timeout=2)
                probe.close()
                time.sleep(0.1)
            except OSError:
                refused = True
        assert refused
