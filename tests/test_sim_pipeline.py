"""End-to-end tests of the digital twin: pipeline integration, determinism,
conservation, contract monitoring, serialization and the CLI subcommand."""

import numpy as np
import pytest

from repro.analysis import (
    compute_sim_metrics,
    render_congestion,
    throughput_gap_report,
)
from repro.cli import main
from repro.core import WSPSolver
from repro.io import load_json, save_json, trace_from_dict, trace_to_dict
from repro.maps import toy_warehouse
from repro.sim import (
    ServiceTimeModel,
    SimulationConfig,
    SimulationSetupError,
    simulate_plan,
    simulate_solution,
)
from repro.warehouse import Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def solution(designed):
    workload = Workload.uniform(designed.warehouse.catalog, 8)
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=600)
    assert solution.succeeded
    return solution


@pytest.fixture(scope="module")
def baseline_report(solution):
    """The deterministic baseline run (instant service, orders at t=0)."""
    return simulate_solution(solution, SimulationConfig(seed=0))


class TestDeterministicBaseline:
    def test_realized_matches_synthesized_throughput(self, baseline_report):
        assert baseline_report.synthesized_throughput > 0
        assert baseline_report.throughput_ratio == pytest.approx(1.0, abs=0.1)

    def test_served_equals_plan_deliveries(self, solution, baseline_report):
        assert baseline_report.units_served == solution.plan.total_delivered()
        assert baseline_report.trace.station_backlog == 0

    def test_zero_contract_violations_for_feasible_plan(self, baseline_report):
        assert baseline_report.monitor is not None
        assert baseline_report.monitor.ok, [
            str(v) for v in baseline_report.monitor.violations
        ]
        assert baseline_report.contracts_ok

    def test_all_orders_fulfilled(self, baseline_report):
        trace = baseline_report.trace
        assert trace.orders_created == 8
        assert trace.orders_served == 8
        assert trace.order_latencies and all(l >= 0 for l in trace.order_latencies)

    def test_summary_mentions_headline_numbers(self, baseline_report):
        text = baseline_report.summary()
        assert "units served" in text
        assert "contract monitor" in text


class TestDeterminism:
    CONFIG = dict(
        arrival_rate=0.08, service_time=ServiceTimeModel.geometric(2.5)
    )

    def test_same_seed_identical_trace(self, solution):
        first = simulate_solution(solution, SimulationConfig(seed=11, **self.CONFIG))
        second = simulate_solution(solution, SimulationConfig(seed=11, **self.CONFIG))
        assert first.trace.events == second.trace.events
        assert first.trace.units_served == second.trace.units_served
        assert first.trace.order_latencies == second.trace.order_latencies
        assert np.array_equal(first.trace.visits, second.trace.visits)

    def test_different_seed_different_trace(self, solution):
        first = simulate_solution(solution, SimulationConfig(seed=11, **self.CONFIG))
        second = simulate_solution(solution, SimulationConfig(seed=12, **self.CONFIG))
        assert first.trace.events != second.trace.events


class TestFlowConservation:
    def test_baseline_trace_is_conserved(self, baseline_report):
        assert baseline_report.trace.conservation_report() == []

    def test_orders_in_equals_served_plus_pending(self, solution):
        report = simulate_solution(
            solution,
            SimulationConfig(
                seed=3, arrival_rate=0.2, service_time=ServiceTimeModel.deterministic(8)
            ),
        )
        trace = report.trace
        assert trace.orders_created == trace.orders_served + trace.orders_pending
        assert trace.conservation_report() == []

    def test_units_flow_picked_to_served(self, solution):
        report = simulate_solution(
            solution,
            SimulationConfig(seed=4, service_time=ServiceTimeModel.deterministic(25)),
        )
        trace = report.trace
        picked = trace.units_picked + trace.units_preloaded
        assert picked == trace.units_handed_off + trace.units_in_transit
        assert trace.units_handed_off == trace.units_served + trace.station_backlog
        assert trace.station_backlog > 0  # slow service must leave a queue


class TestContractMonitor:
    def test_undersized_station_reports_breach(self, solution):
        report = simulate_solution(
            solution,
            SimulationConfig(seed=0, service_time=ServiceTimeModel.deterministic(300)),
        )
        assert not report.contracts_ok
        breaches = report.monitor.violations_of_kind("workload-service")
        assert breaches, "an undersized station must breach the workload contract"
        assert any("demanded units served" in v.detail for v in breaches)

    def test_monitor_counts_constraints(self, baseline_report):
        monitor = baseline_report.monitor
        assert monitor.constraints_checked > 0
        assert monitor.periods_measured > 0
        assert "contract monitor" in monitor.summary()


class TestPipelineIntegration:
    def test_solver_simulate_stage(self, designed):
        workload = Workload.uniform(designed.warehouse.catalog, 8)
        solver = WSPSolver(designed.traffic_system)
        solution = solver.solve(workload, horizon=600)
        report = solver.simulate(solution)
        assert solution.simulation is report
        assert "simulation" in solution.timings
        assert report.contracts_ok

    def test_simulate_unsolved_solution_raises(self, designed):
        workload = Workload.uniform(designed.warehouse.catalog, 8)
        solver = WSPSolver(designed.traffic_system)
        solution = solver.solve(workload, horizon=600)
        solution.realization = None  # simulate a failed solve
        with pytest.raises(SimulationSetupError):
            solver.simulate(solution)
        with pytest.raises(SimulationSetupError):
            solution.simulate()

    def test_simulate_round_tripped_plan(self, solution, designed):
        """A plan reloaded from JSON (fresh Warehouse object) must still simulate."""
        from repro.io import plan_from_dict, plan_to_dict

        reloaded = plan_from_dict(plan_to_dict(solution.plan))
        assert reloaded.warehouse is not designed.warehouse
        report = simulate_plan(
            plan=reloaded,
            system=designed.traffic_system,
            flow_set=solution.flow_set,
            workload=solution.instance.workload,
            synthesis=solution.synthesis,
        )
        assert report.throughput_ratio == pytest.approx(1.0, abs=0.1)
        assert report.contracts_ok

    def test_simulate_plan_without_flow_set(self, solution, designed):
        report = simulate_plan(
            plan=solution.plan,
            system=designed.traffic_system,
            workload=solution.instance.workload,
        )
        assert report.units_served > 0
        assert report.synthesized_throughput == 0.0


class TestSimMetricsAndRendering:
    def test_compute_sim_metrics(self, baseline_report):
        metrics = compute_sim_metrics(baseline_report.trace)
        assert metrics.throughput_ratio == pytest.approx(
            baseline_report.throughput_ratio, abs=1e-9
        )
        assert metrics.units_served == baseline_report.units_served
        payload = metrics.as_dict()
        assert payload["orders_served"] == 8
        assert "within" in throughput_gap_report(metrics)

    def test_gap_report_flags_shortfall(self, solution):
        report = simulate_solution(
            solution,
            SimulationConfig(seed=0, service_time=ServiceTimeModel.deterministic(300)),
        )
        metrics = compute_sim_metrics(report.trace)
        assert "below" in throughput_gap_report(metrics)

    def test_render_congestion(self, designed, baseline_report):
        picture = render_congestion(designed.warehouse, baseline_report.trace.visits)
        grid = designed.warehouse.grid
        lines = picture.splitlines()
        assert len(lines) == grid.height
        assert all(len(line) == grid.width for line in lines)
        assert "$" in picture  # the hottest cell is marked
        with pytest.raises(ValueError):
            render_congestion(designed.warehouse, [0, 1, 2])


class TestTraceSerialization:
    def test_round_trip(self, baseline_report, tmp_path):
        document = trace_to_dict(baseline_report.trace)
        path = tmp_path / "trace.json"
        save_json(document, path)
        restored = trace_from_dict(load_json(path))
        original = baseline_report.trace
        assert restored.ticks == original.ticks
        assert restored.units_served == original.units_served
        assert restored.units_preloaded == original.units_preloaded
        assert np.array_equal(restored.visits, original.visits)
        assert restored.transitions.keys() == original.transitions.keys()
        for key, counts in original.transitions.items():
            assert np.array_equal(restored.transitions[key], counts)
        assert restored.events == original.events
        assert restored.realized_throughput() == pytest.approx(
            original.realized_throughput()
        )

    def test_schema_tag_checked(self):
        with pytest.raises(Exception):
            trace_from_dict({"schema": "plan"})


class TestSimulateCli:
    def test_simulate_subcommand(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        code = main(
            [
                "simulate",
                "--map",
                "sorting-center-small",
                "--units",
                "16",
                "--seed",
                "0",
                "--horizon",
                "900",
                "--heatmap",
                "--save-trace",
                str(trace_file),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "realized throughput" in output
        assert "all contracts honored" in output
        assert "Congestion" in output
        assert trace_file.exists()
        restored = trace_from_dict(load_json(trace_file))
        assert restored.units_served > 0

    def test_simulate_with_stochastic_options(self, capsys):
        code = main(
            [
                "simulate",
                "--map",
                "sorting-center-small",
                "--units",
                "16",
                "--horizon",
                "900",
                "--service-time",
                "geometric:2",
                "--arrival-rate",
                "0.05",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "poisson(0.05/tick)" in output

    def test_bad_service_time_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--map",
                    "sorting-center-small",
                    "--units",
                    "16",
                    "--service-time",
                    "bogus",
                ]
            )
