"""Service observability: request-id propagation and registry-backed metrics.

One module-scoped server (1 spawn worker) backs every test.  Covers the
observability seams the serving layer gained:

* ``X-Request-Id`` — a client-supplied id is echoed on the response header
  and body; absent (or garbage) ids are replaced with a generated one;
* ``/metrics`` latency percentiles come from the shared fixed-bucket
  histograms (bounded memory), with the raw registry snapshot attached;
* ``/metrics?format=prometheus`` serves linting text exposition 0.0.4.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.experiments import ScenarioSpec
from repro.service import ServiceClient, ServiceConfig, ServiceRequest, ServiceServer

from test_obs_metrics import lint_prometheus

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=4, warm_up=True)
    ).start()
    yield instance
    instance.stop(drain_timeout=30)


@pytest.fixture()
def client(server):
    with ServiceClient(server.url, timeout=180) as connection:
        yield connection


def _raw(server, method: str, path: str, body=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
    try:
        payload = None if body is None else json.dumps(body).encode()
        connection.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        reply = connection.getresponse()
        raw = reply.read()
        document = json.loads(raw.decode()) if raw and path != "/nope" else {}
        return reply, document, raw
    finally:
        connection.close()


class TestRequestId:
    def test_client_supplied_id_is_echoed(self, server):
        reply, document, _ = _raw(
            server,
            "POST",
            "/solve",
            body=ServiceRequest(scenario=TINY).to_dict(),
            headers={"X-Request-Id": "trace-me-42"},
        )
        assert reply.status == 200
        assert reply.getheader("X-Request-Id") == "trace-me-42"
        assert document["request_id"] == "trace-me-42"

    def test_missing_id_gets_generated(self, server):
        reply, _, _ = _raw(server, "GET", "/healthz")
        generated = reply.getheader("X-Request-Id")
        assert generated and generated.startswith("req-")

    def test_garbage_id_is_replaced(self, server):
        reply, _, _ = _raw(
            server, "GET", "/healthz", headers={"X-Request-Id": "x" * 500}
        )
        assert reply.getheader("X-Request-Id").startswith("req-")

    def test_ids_are_unique_per_request(self, server):
        first = _raw(server, "GET", "/healthz")[0].getheader("X-Request-Id")
        second = _raw(server, "GET", "/healthz")[0].getheader("X-Request-Id")
        assert first != second


class TestRegistryMetrics:
    def test_latency_percentiles_come_from_histograms(self, client):
        client.solve(ServiceRequest(scenario=TINY))
        client.solve(ServiceRequest(scenario=TINY))  # warm hit
        metrics = client.metrics()
        latency = metrics["latency_seconds"]
        assert set(latency) == {"cold", "warm", "coalesced"}
        from repro.obs import DEFAULT_BUCKETS

        for tier in ("cold", "warm"):
            summary = latency[tier]
            assert set(summary) == {"p50", "p90", "p95", "mean", "max", "count"}
            assert summary["count"] >= 1
            # Bucket interpolation may overshoot the observed max, but only
            # up to the ceiling of the bucket the max landed in.
            ceiling = next(
                (b for b in DEFAULT_BUCKETS if summary["max"] <= b), summary["max"]
            )
            assert 0.0 <= summary["p50"] <= ceiling + 1e-9
        # The registry snapshot rides along for scrapers that want raw series.
        registry = metrics["registry"]
        assert registry["schema"] == "obs-metrics"
        names = {entry["name"] for entry in registry["metrics"]}
        assert "repro_request_seconds" in names
        assert "repro_requests_total" in names
        assert "repro_pool_saturation" in names

    def test_worker_run_metrics_are_merged(self, client):
        client.solve(ServiceRequest(scenario=TINY))
        registry = client.metrics()["registry"]
        runs = [
            entry
            for entry in registry["metrics"]
            if entry["name"] == "repro_runs_total"
        ]
        assert runs, "worker-side run counters must fold into the service registry"
        assert sum(entry["value"] for entry in runs) >= 1

    def test_prometheus_endpoint_lints(self, server, client):
        client.solve(ServiceRequest(scenario=TINY))
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            reply = connection.getresponse()
            text = reply.read().decode()
        finally:
            connection.close()
        assert reply.status == 200
        assert reply.getheader("Content-Type").startswith("text/plain; version=0.0.4")
        lint_prometheus(text)
        assert "repro_request_seconds_bucket" in text
        assert "repro_uptime_seconds" in text
        assert 'le="+Inf"' in text

    def test_json_metrics_keep_their_contract(self, client):
        metrics = client.metrics()
        assert set(metrics) >= {
            "requests", "cache", "pool", "latency_seconds", "draining", "registry",
        }
