"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io import load_json, plan_from_dict


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code != 0

    def test_unknown_map_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "--map", "no-such-map"])

    def test_solve_requires_units(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--map", "sorting-center-small"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert output.startswith("repro ")
        assert output.strip().split(" ", 1)[1]  # a non-empty version string

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--map", "sorting-center-small", "--units", "4",
                 "--routing", "teleport"]
            )

    def test_routing_window_without_grid_router_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["simulate", "--map", "sorting-center-small", "--units", "4",
                 "--routing-window", "8"]
            )
        assert "--routing-window" in str(excinfo.value)


class TestMapsCommand:
    def test_lists_presets_and_paper_stats(self, capsys):
        assert main(["maps"]) == 0
        output = capsys.readouterr().out
        assert "fulfillment-1" in output
        assert "sorting-center-small" in output
        assert "(paper)" in output


class TestShowCommand:
    def test_renders_traffic_system(self, capsys, tmp_path):
        map_file = tmp_path / "toy.map"
        assert main(["show", "--map", "sorting-center-small", "--save-map", str(map_file)]) == 0
        output = capsys.readouterr().out
        assert "!" in output  # component exits are marked
        assert map_file.exists()
        assert "type warehouse" in map_file.read_text()


class TestSolveCommand:
    def test_solves_and_saves_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        code = main(
            [
                "solve",
                "--map",
                "sorting-center-small",
                "--units",
                "8",
                "--horizon",
                "1200",
                "--save-plan",
                str(plan_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workload serviced:  True" in output
        plan = plan_from_dict(load_json(plan_file))
        assert plan.num_agents > 0

    def test_infeasible_instance_returns_nonzero(self, capsys):
        code = main(
            ["solve", "--map", "sorting-center-small", "--units", "4000", "--horizon", "1200"]
        )
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().out


class TestTable1Command:
    def test_small_scale_table(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "fulfillment-1-small" in output
        assert "sorting-center-small" in output

    def test_markdown_output(self, capsys):
        assert main(["table1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert "| Map |" in output


class TestSweepCommand:
    def test_smoke_sweep_runs_reports_and_compares(self, capsys, tmp_path):
        out = tmp_path / "results.jsonl"
        code = main(
            ["sweep", "--preset", "smoke", "--workers", "2", "--out", str(out)]
        )
        output = capsys.readouterr().out
        assert code == 0  # an infeasible scenario is a result, not a failure
        assert out.exists()
        assert len(out.read_text().splitlines()) >= 8
        assert "infeasible" in output
        assert "pass rate" in output

        assert main(["sweep", "--report", str(out)]) == 0
        report = capsys.readouterr().out
        assert "Experiment sweep" in report
        assert "pass rate" in report

        assert main(["sweep", "--compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_limit_and_markdown(self, capsys, tmp_path):
        code = main(["sweep", "--preset", "scaling", "--limit", "1", "--markdown"])
        assert code == 0
        output = capsys.readouterr().out
        assert "1 scenario(s)" in output
        assert "| Scenario |" in output

    def test_unknown_preset_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--preset", "no-such-suite"])

    def test_bad_workers_and_limit_rejected(self, capsys):
        with pytest.raises(SystemExit, match="--workers"):
            main(["sweep", "--workers", "0"])
        with pytest.raises(SystemExit, match="--limit"):
            main(["sweep", "--limit", "-1"])

    def test_conflicting_modes_rejected(self, capsys, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--report", path, "--compare", path, path])
        with pytest.raises(SystemExit, match="--out"):
            main(["sweep", "--report", path, "--out", path])
        with pytest.raises(SystemExit, match="--tolerance"):
            main(["sweep", "--compare", path, path, "--tolerance", "0"])


class TestValidateCommand:
    def test_validate_round_trip(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        assert (
            main(
                [
                    "solve",
                    "--map",
                    "sorting-center-small",
                    "--units",
                    "6",
                    "--horizon",
                    "1200",
                    "--save-plan",
                    str(plan_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["validate", "--plan", str(plan_file)]) == 0
        output = capsys.readouterr().out
        assert "feasible" in output


class TestProfile:
    def test_profile_solve_prints_tables_and_saves_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        code = main(
            [
                "profile", "solve",
                "--map", "sorting-center-small",
                "--units", "6",
                "--horizon", "1200",
                "--top", "5",
                "--save-trace", str(trace_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Span tree" in output
        assert "solver.solve" in output
        assert "hotspots by self time" in output
        assert "cProfile" in output and "ncalls" in output
        document = load_json(trace_file)
        assert document["schema"] == "obs-trace"
        assert document["spans"][0]["name"] == "solver.solve"

    def test_profile_without_cprofile(self, capsys):
        assert main(
            [
                "profile", "solve",
                "--map", "sorting-center-small",
                "--units", "6",
                "--no-cprofile",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "cProfile" not in output

    def test_profile_validations(self):
        with pytest.raises(SystemExit):
            main(["profile", "solve", "--top", "0"])
        with pytest.raises(SystemExit):
            main(["profile", "sweep", "--limit", "-1"])
        with pytest.raises(SystemExit):
            main(["profile", "nonsense"])

    def test_profile_leaves_tracing_disabled(self):
        from repro.obs import tracing_enabled

        assert main(
            ["profile", "solve", "--map", "sorting-center-small", "--units", "6",
             "--no-cprofile"]
        ) == 0
        assert not tracing_enabled()
