"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io import load_json, plan_from_dict


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_map_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "--map", "no-such-map"])

    def test_solve_requires_units(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--map", "sorting-center-small"])


class TestMapsCommand:
    def test_lists_presets_and_paper_stats(self, capsys):
        assert main(["maps"]) == 0
        output = capsys.readouterr().out
        assert "fulfillment-1" in output
        assert "sorting-center-small" in output
        assert "(paper)" in output


class TestShowCommand:
    def test_renders_traffic_system(self, capsys, tmp_path):
        map_file = tmp_path / "toy.map"
        assert main(["show", "--map", "sorting-center-small", "--save-map", str(map_file)]) == 0
        output = capsys.readouterr().out
        assert "!" in output  # component exits are marked
        assert map_file.exists()
        assert "type warehouse" in map_file.read_text()


class TestSolveCommand:
    def test_solves_and_saves_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        code = main(
            [
                "solve",
                "--map",
                "sorting-center-small",
                "--units",
                "8",
                "--horizon",
                "1200",
                "--save-plan",
                str(plan_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workload serviced:  True" in output
        plan = plan_from_dict(load_json(plan_file))
        assert plan.num_agents > 0

    def test_infeasible_instance_returns_nonzero(self, capsys):
        code = main(
            ["solve", "--map", "sorting-center-small", "--units", "4000", "--horizon", "1200"]
        )
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().out


class TestTable1Command:
    def test_small_scale_table(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "fulfillment-1-small" in output
        assert "sorting-center-small" in output

    def test_markdown_output(self, capsys):
        assert main(["table1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert "| Map |" in output


class TestValidateCommand:
    def test_validate_round_trip(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        assert (
            main(
                [
                    "solve",
                    "--map",
                    "sorting-center-small",
                    "--units",
                    "6",
                    "--horizon",
                    "1200",
                    "--save-plan",
                    str(plan_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["validate", "--plan", str(plan_file)]) == 0
        output = capsys.readouterr().out
        assert "feasible" in output
