"""The alert rule engine: grammar, metric resolution, and hysteresis.

The contract under test, in order of importance:

* **hysteresis** — a rule with ``for Ns`` fires **exactly once** per
  sustained breach (no spam while the condition keeps holding), resolves
  when the condition clears, and re-arms for the next breach; a flapping
  metric that never sustains the window never fires at all;
* **resolution** — rules address real registry snapshots: exact label
  match when labels are given, aggregation across every label set when
  omitted (counters/histogram buckets add, gauges take the max), histogram
  statistics behind ``:stat``;
* **grammar** — every clause of ``NAME[{labels}][:STAT] OP THR [for Ns]``
  parses, including the tricky label-less ``:stat`` suffix (metric names
  may legally contain colons), and malformed specs fail loudly;
* **baseline** — :func:`~repro.obs.alerts.baseline_rule` turns a committed
  ``BENCH_service.json`` into a warm-p50 regression rule.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    AlertError,
    AlertMonitor,
    AlertRule,
    EventLog,
    MetricsRegistry,
    RuleEngine,
    baseline_rule,
    parse_rules,
    resolve_metric,
)


def make_snapshot(**kwargs) -> dict:
    """A real registry snapshot with a representative instrument mix."""
    registry = MetricsRegistry()
    registry.counter("repro_runs_total", status="ok").inc(7)
    registry.counter("repro_runs_total", status="error").inc(2)
    registry.gauge("repro_pool_saturation", worker="a").set(0.4)
    registry.gauge("repro_pool_saturation", worker="b").set(0.95)
    warm = registry.histogram("repro_request_seconds", tier="warm")
    for value in (0.001, 0.002, 0.003, 0.004):
        warm.observe(value)
    cold = registry.histogram("repro_request_seconds", tier="cold")
    for value in (0.5, 0.7):
        cold.observe(value)
    for name, value in kwargs.items():
        registry.gauge(name).set(value)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# grammar
# ---------------------------------------------------------------------------


def test_from_spec_parses_every_clause():
    rule = AlertRule.from_spec("repro_pool_saturation > 0.9 for 10s")
    assert rule.metric == "repro_pool_saturation"
    assert rule.op == ">" and rule.threshold == 0.9
    assert rule.labels == {} and rule.stat is None
    assert rule.for_seconds == 10.0
    assert rule.name == "repro_pool_saturation > 0.9 for 10s"

    rule = AlertRule.from_spec('repro_runs_total{status="error"} >= 1')
    assert rule.labels == {"status": "error"} and rule.for_seconds == 0.0

    rule = AlertRule.from_spec("repro_request_seconds{tier=warm}:p95 <= 0.01 for 5")
    assert rule.stat == "p95" and rule.labels == {"tier": "warm"}
    assert rule.for_seconds == 5.0


def test_from_spec_peels_statistic_off_a_label_less_name():
    # Metric names may contain colons, so the name pattern swallows ':count'
    # — the parser must peel a known statistic back off.
    rule = AlertRule.from_spec("repro_stage_seconds:count > 3")
    assert rule.metric == "repro_stage_seconds" and rule.stat == "count"
    # ...but an unknown suffix stays part of the name (legal Prometheus).
    rule = AlertRule.from_spec("ns:subsystem_total > 0")
    assert rule.metric == "ns:subsystem_total" and rule.stat is None


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "just_a_name",
        "repro_runs_total >",
        "repro_runs_total ~ 3",
        "repro_runs_total > abc",
        "repro_runs_total{status} > 0",
        "name:p51 > 0",  # unknown statistic -> stays in the name, fine to parse
    ],
)
def test_from_spec_rejects_malformed_rules(spec):
    if spec == "name:p51 > 0":
        assert AlertRule.from_spec(spec).metric == "name:p51"
        return
    with pytest.raises(AlertError):
        AlertRule.from_spec(spec)


def test_parse_rules_and_describe_round_trip():
    rules = parse_rules(["repro_pool_saturation > 0.9 for 10s", "x >= 1"])
    assert len(rules) == 2
    assert AlertRule.from_spec(rules[0].describe()).describe() == rules[0].describe()
    with pytest.raises(AlertError, match="unknown histogram statistic"):
        AlertRule("m", ">", 1.0, stat="p51")
    with pytest.raises(AlertError, match="non-negative"):
        AlertRule("m", ">", 1.0, for_seconds=-1)


# ---------------------------------------------------------------------------
# metric resolution
# ---------------------------------------------------------------------------


def test_resolve_exact_label_match():
    snapshot = make_snapshot()
    assert resolve_metric(snapshot, "repro_runs_total", {"status": "ok"}, None) == 7.0
    assert resolve_metric(snapshot, "repro_runs_total", {"status": "missing"}, None) is None
    assert resolve_metric(snapshot, "no_such_metric", {}, None) is None


def test_label_less_rules_aggregate_across_label_sets():
    snapshot = make_snapshot()
    # Counters add across label sets...
    assert resolve_metric(snapshot, "repro_runs_total", {}, None) == 9.0
    # ...gauges take the worst (max) value...
    assert resolve_metric(snapshot, "repro_pool_saturation", {}, None) == 0.95
    # ...histograms merge their buckets before computing the statistic.
    assert resolve_metric(snapshot, "repro_request_seconds", {}, "count") == 6.0
    merged_max = resolve_metric(snapshot, "repro_request_seconds", {}, "max")
    assert merged_max == pytest.approx(0.7)
    assert resolve_metric(snapshot, "repro_request_seconds", {}, "sum") == pytest.approx(
        0.001 + 0.002 + 0.003 + 0.004 + 0.5 + 0.7
    )


def test_histogram_requires_a_statistic():
    snapshot = make_snapshot()
    with pytest.raises(AlertError, match="select a statistic"):
        resolve_metric(snapshot, "repro_request_seconds", {"tier": "warm"}, None)
    p50 = resolve_metric(snapshot, "repro_request_seconds", {"tier": "warm"}, "p50")
    assert 0.0 < p50 < 0.5  # the warm tier, not the merged one


def test_histogram_bucket_mismatch_is_an_error():
    snapshot = make_snapshot()
    for entry in snapshot["metrics"]:
        if entry["name"] == "repro_request_seconds" and entry["labels"] == {"tier": "cold"}:
            entry["buckets"] = entry["buckets"][:-1]
            entry["counts"] = entry["counts"][:-1]
    with pytest.raises(AlertError, match="bucket mismatch"):
        resolve_metric(snapshot, "repro_request_seconds", {}, "count")


# ---------------------------------------------------------------------------
# hysteresis
# ---------------------------------------------------------------------------


def breach_snapshot(value: float) -> dict:
    registry = MetricsRegistry()
    registry.gauge("repro_pool_saturation").set(value)
    return registry.snapshot()


def test_sustained_breach_fires_exactly_once_and_resolves():
    events = EventLog()
    rule = AlertRule.from_spec("repro_pool_saturation > 0.9 for 10s")
    engine = RuleEngine([rule], events=events)

    assert engine.evaluate(breach_snapshot(0.95), now=0.0) == []  # window opens
    assert engine.evaluate(breach_snapshot(0.97), now=5.0) == []  # not sustained yet
    fired = engine.evaluate(breach_snapshot(0.99), now=10.0)  # sustained -> fire
    assert [t["state"] for t in fired] == ["fired"]
    assert fired[0]["value"] == 0.99 and fired[0]["rule"] == rule.name
    # Still breached: no second firing, no transition.
    assert engine.evaluate(breach_snapshot(0.99), now=15.0) == []
    assert rule.fired_count == 1
    # Recovery resolves and re-arms.
    resolved = engine.evaluate(breach_snapshot(0.5), now=16.0)
    assert [t["state"] for t in resolved] == ["resolved"]
    assert not rule.firing and rule.breach_since is None
    # A second sustained breach fires again — one firing per breach.
    assert engine.evaluate(breach_snapshot(0.95), now=20.0) == []
    assert [t["state"] for t in engine.evaluate(breach_snapshot(0.95), now=30.0)] == ["fired"]
    assert rule.fired_count == 2
    # The engine mirrored every transition onto the event log.
    kinds = [e["kind"] for e in events.recent()]
    assert kinds == ["alert.fired", "alert.resolved", "alert.fired"]
    assert engine.any_fired and "FIRED" in engine.summary()


def test_flapping_metric_never_fires():
    events = EventLog()
    rule = AlertRule.from_spec("repro_pool_saturation > 0.9 for 10s")
    engine = RuleEngine([rule], events=events)
    for tick in range(6):
        # Breach for 5s, recover, breach again: the window keeps resetting.
        engine.evaluate(breach_snapshot(0.95), now=tick * 7.0)
        engine.evaluate(breach_snapshot(0.2), now=tick * 7.0 + 5.0)
    assert not engine.any_fired
    assert events.recent() == []
    assert engine.summary() == "alerts: 1 rule(s), none fired"


def test_zero_duration_rule_fires_on_first_breach():
    rule = AlertRule.from_spec("repro_pool_saturation > 0.9")
    engine = RuleEngine([rule], events=EventLog())
    assert [t["state"] for t in engine.evaluate(breach_snapshot(0.95), now=1.0)] == ["fired"]
    assert engine.evaluate(breach_snapshot(0.95), now=2.0) == []


def test_missing_metric_never_satisfies_a_rule():
    rule = AlertRule.from_spec("no_such_metric > 0")
    engine = RuleEngine([rule], events=EventLog())
    assert engine.evaluate(breach_snapshot(0.95), now=0.0) == []
    assert rule.last_value is None and not engine.any_fired


def test_rule_reset_clears_hysteresis_state():
    rule = AlertRule.from_spec("repro_pool_saturation > 0.9")
    engine = RuleEngine([rule], events=EventLog())
    engine.evaluate(breach_snapshot(0.95), now=0.0)
    assert rule.firing and rule.fired_count == 1
    rule.reset()
    assert not rule.firing and rule.fired_count == 0 and rule.last_value is None


# ---------------------------------------------------------------------------
# baseline rules
# ---------------------------------------------------------------------------


def test_baseline_rule_derives_warm_p50_regression_threshold(tmp_path):
    bench = tmp_path / "BENCH_service.json"
    bench.write_text(json.dumps({"latency_seconds": {"warm": {"p50": 0.004}}}))
    rule = baseline_rule(bench, factor=1.5)
    assert rule.metric == "repro_request_seconds"
    assert rule.labels == {"tier": "warm"} and rule.stat == "p50"
    assert rule.op == ">" and rule.threshold == pytest.approx(0.006)
    assert "BENCH_service.json" in rule.name
    # The derived rule evaluates against a live snapshot like any other.
    fast, slow = MetricsRegistry(), MetricsRegistry()
    for value in (0.001, 0.002):
        fast.histogram("repro_request_seconds", tier="warm").observe(value)
    for value in (0.05, 0.06):
        slow.histogram("repro_request_seconds", tier="warm").observe(value)
    assert not rule.condition(fast.snapshot())
    assert rule.condition(slow.snapshot())


def test_baseline_rule_rejects_unusable_baselines(tmp_path):
    with pytest.raises(AlertError, match="unreadable baseline"):
        baseline_rule(tmp_path / "missing.json")
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(AlertError, match="no warm p50"):
        baseline_rule(empty)
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"latency_seconds": {"warm": {"p50": 0.004}}}))
    with pytest.raises(AlertError, match="factor must be positive"):
        baseline_rule(bench, factor=0)


# ---------------------------------------------------------------------------
# the polling monitor
# ---------------------------------------------------------------------------


def test_monitor_polls_a_snapshot_source_and_gates_on_fired():
    registry = MetricsRegistry()
    saturation = registry.gauge("repro_pool_saturation")
    saturation.set(0.2)
    ticks = iter(range(100))
    monitor = AlertMonitor(
        registry.snapshot,
        parse_rules(["repro_pool_saturation > 0.9"]),
        interval=0.01,
        events=EventLog(),
        clock=lambda: float(next(ticks)),
    )
    assert monitor.poll_once() == []
    assert not monitor.any_fired
    saturation.set(0.95)
    assert [t["state"] for t in monitor.poll_once()] == ["fired"]
    assert monitor.any_fired
    assert "FIRED repro_pool_saturation > 0.9" in monitor.summary()


def test_monitor_skips_failed_scrapes_and_stops_with_a_final_pass():
    snapshots = [None, breach_snapshot(0.95)]

    def source():
        return snapshots.pop(0) if snapshots else breach_snapshot(0.95)

    monitor = AlertMonitor(
        source,
        parse_rules(["repro_pool_saturation > 0.9"]),
        interval=5.0,  # the thread never ticks during the test window
        events=EventLog(),
    )
    assert monitor.poll_once() == []  # a failed scrape is a skipped tick
    monitor.start()
    monitor.stop()  # stop() runs one final evaluation pass
    assert monitor.any_fired
    with pytest.raises(AlertError, match="interval must be positive"):
        AlertMonitor(source, [], interval=0)
