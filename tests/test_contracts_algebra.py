"""Tests for the contract decision procedures (entailment, refinement, ...)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import (
    AGContract,
    check_composition_consistency,
    entails,
    entails_all,
    is_compatible,
    is_consistent,
    is_satisfiable,
    negation_constraints,
    refines,
    strongest_bound,
)
from repro.solver.expressions import LinearExpr, Variable


@pytest.fixture()
def vars3():
    x = Variable("x", lb=0, ub=10)
    y = Variable("y", lb=0, ub=10)
    z = Variable("z", lb=0, ub=10)
    return x, y, z


class TestSatisfiability:
    def test_satisfiable_box(self, vars3):
        x, y, _ = vars3
        assert is_satisfiable([x + y <= 5, x >= 1])

    def test_unsatisfiable(self, vars3):
        x, _, _ = vars3
        assert not is_satisfiable([x >= 6, x <= 3])

    def test_integer_gap(self):
        v = Variable("v", lb=0, ub=4, integer=True)
        constraints = [2 * v >= 3, 2 * v <= 3]
        # Rationally satisfiable (v = 1.5) but integrally unsatisfiable.
        assert is_satisfiable(constraints, integer=False)
        assert not is_satisfiable(constraints, integer=True)


class TestNegation:
    def test_le_negation(self, vars3):
        x, _, _ = vars3
        cases = negation_constraints(x <= 3)
        assert len(cases) == 1
        assert not cases[0][0].is_satisfied({x: 3})
        assert cases[0][0].is_satisfied({x: 4})

    def test_eq_negation_two_cases(self, vars3):
        x, _, _ = vars3
        cases = negation_constraints(1 * x == 3)
        assert len(cases) == 2


class TestEntailment:
    def test_transitive_bound(self, vars3):
        x, y, _ = vars3
        assert entails([x <= 3, y <= x], y <= 3)

    def test_non_entailment(self, vars3):
        x, y, _ = vars3
        assert not entails([x <= 3], y <= 3)

    def test_equality_entailment(self, vars3):
        x, y, _ = vars3
        assert entails([1 * x == 2, 1 * y == 3], x + y == 5)

    def test_entails_all(self, vars3):
        x, y, _ = vars3
        premises = [x <= 2, y <= 2]
        assert entails_all(premises, [x + y <= 4, x <= 5])
        assert not entails_all(premises, [x + y <= 3])

    def test_variable_bounds_are_premises(self, vars3):
        x, _, _ = vars3
        # x has declared bounds [0, 10]; entailment may rely on them.
        assert entails([], x <= 10)
        assert not entails([], x <= 9)


class TestRefinement:
    def test_reflexive(self, vars3):
        x, y, _ = vars3
        c = AGContract("c", assumptions=(x <= 4,), guarantees=(y <= x,))
        assert refines(c, c).holds

    def test_stronger_guarantee_refines(self, vars3):
        x, y, _ = vars3
        abstract = AGContract("abs", assumptions=(x <= 4,), guarantees=(y <= 8,))
        refined = AGContract("ref", assumptions=(x <= 6,), guarantees=(y <= x,))
        # refined assumes less (x <= 6 is weaker than x <= 4 under A_abs) and,
        # under the abstract assumptions, guarantees more (y <= x <= 4 <= 8).
        assert refines(refined, abstract).holds

    def test_assuming_more_breaks_refinement(self, vars3):
        x, y, _ = vars3
        abstract = AGContract("abs", assumptions=(x <= 6,), guarantees=(y <= 8,))
        refined = AGContract("ref", assumptions=(x <= 2,), guarantees=(y <= 8,))
        report = refines(refined, abstract)
        assert not report.holds
        assert report.failed_assumptions

    def test_weaker_guarantee_breaks_refinement(self, vars3):
        x, y, _ = vars3
        abstract = AGContract("abs", guarantees=(y <= 3,))
        refined = AGContract("ref", guarantees=(y <= 7,))
        report = refines(refined, abstract)
        assert not report.holds
        assert report.failed_guarantees

    def test_transitivity_on_chain(self, vars3):
        x, y, _ = vars3
        c_tight = AGContract("tight", guarantees=(y <= 2,))
        c_mid = AGContract("mid", guarantees=(y <= 5,))
        c_loose = AGContract("loose", guarantees=(y <= 9,))
        assert refines(c_tight, c_mid).holds
        assert refines(c_mid, c_loose).holds
        assert refines(c_tight, c_loose).holds


class TestConsistencyCompatibility:
    def test_consistent_and_compatible(self, vars3):
        x, y, _ = vars3
        c = AGContract("c", assumptions=(x <= 4,), guarantees=(y <= x,))
        assert is_consistent(c)
        assert is_compatible(c)

    def test_inconsistent_contract(self, vars3):
        x, _, _ = vars3
        c = AGContract("c", guarantees=(x >= 6, x <= 2))
        assert not is_consistent(c)

    def test_composition_check_reports_offender(self, vars3):
        x, y, _ = vars3
        good = AGContract("good", guarantees=(y <= x,))
        bad = AGContract("bad", guarantees=(x >= 6, x <= 2))
        message = check_composition_consistency([good, bad])
        assert message is not None
        assert "bad" in message

    def test_composition_check_detects_joint_conflict(self, vars3):
        x, _, _ = vars3
        c1 = AGContract("c1", guarantees=(x >= 6,))
        c2 = AGContract("c2", guarantees=(x <= 2,))
        # Individually fine, jointly unsatisfiable.
        message = check_composition_consistency([c1, c2])
        assert message is not None
        assert "composed" in message

    def test_composition_check_passes(self, vars3):
        x, y, _ = vars3
        c1 = AGContract("c1", guarantees=(x <= 4,))
        c2 = AGContract("c2", guarantees=(y <= x,))
        assert check_composition_consistency([c1, c2]) is None

    def test_empty_composition(self):
        assert check_composition_consistency([]) is None


class TestStrongestBound:
    def test_max_bound(self, vars3):
        x, y, _ = vars3
        bound = strongest_bound([x + y <= 7], LinearExpr({x: 1.0, y: 1.0}), sense="max")
        assert bound == pytest.approx(7.0)

    def test_unbounded_returns_none(self):
        free = Variable("free", lb=0, ub=None)
        assert strongest_bound([], LinearExpr({free: 1.0}), sense="max") is None

    def test_bound_with_fresh_objective_variable(self, vars3):
        x, _, _ = vars3
        other = Variable("other", lb=0, ub=3)
        bound = strongest_bound([x <= 2], LinearExpr({x: 1.0, other: 1.0}), sense="max")
        assert bound == pytest.approx(5.0)


class TestAlgebraPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        bounds=st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=2),
    )
    def test_tighter_box_refines_looser_box(self, bounds):
        lo, hi = sorted(bounds)
        x = Variable("x", lb=0, ub=20)
        tight = AGContract("tight", guarantees=(x <= lo,))
        loose = AGContract("loose", guarantees=(x <= hi,))
        assert refines(tight, loose).holds
        if hi > lo:
            assert not refines(loose, tight).holds
