"""Tests for grid maps (construction, parsing, queries)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warehouse import EMPTY, OBSTACLE, SHELF, STATION, GridError, GridMap, build_grid

#: The Fig. 1 example warehouse: two shelves accessed from east and west,
#: two stations on the bottom row.
FIG1_ASCII = """
.....
.S.S.
.....
@T@T@
""".strip("\n")


@pytest.fixture()
def fig1_grid():
    return GridMap.from_ascii(FIG1_ASCII, name="fig1")


class TestParsing:
    def test_dimensions(self, fig1_grid):
        assert fig1_grid.width == 5
        assert fig1_grid.height == 4

    def test_origin_is_bottom_left(self, fig1_grid):
        # Bottom row (y = 0) has obstacles at x = 0, 2, 4 and stations at 1, 3.
        assert fig1_grid.cell_type((0, 0)) == OBSTACLE
        assert fig1_grid.cell_type((1, 0)) == STATION
        assert fig1_grid.cell_type((3, 0)) == STATION
        assert fig1_grid.cell_type((1, 2)) == SHELF

    def test_round_trip(self, fig1_grid):
        assert GridMap.from_ascii(fig1_grid.to_ascii()).cells == fig1_grid.cells

    def test_spaces_become_obstacles(self):
        grid = GridMap.from_ascii("._.".replace("_", " "))
        assert grid.cell_type((1, 0)) == OBSTACLE

    def test_unknown_character_rejected(self):
        with pytest.raises(GridError):
            GridMap.from_ascii("..X..")

    def test_empty_map_rejected(self):
        with pytest.raises(GridError):
            GridMap.from_ascii("   \n  ")

    def test_ragged_lines_padded(self):
        grid = GridMap.from_ascii("...\n.")
        assert grid.width == 3
        assert grid.cell_type((2, 0)) == OBSTACLE


class TestQueries:
    def test_traversable_cells(self, fig1_grid):
        traversable = set(fig1_grid.traversable_cells())
        assert (1, 0) in traversable  # station
        assert (1, 2) not in traversable  # shelf
        assert (0, 0) not in traversable  # obstacle
        assert fig1_grid.num_traversable == len(traversable)

    def test_neighbors_exclude_blocked(self, fig1_grid):
        # (0, 2) neighbors: (0, 1) open, (0, 3) open, (1, 2) shelf (excluded).
        assert set(fig1_grid.neighbors((0, 2))) == {(0, 1), (0, 3)}

    def test_shelf_access_cells(self, fig1_grid):
        access = set(fig1_grid.shelf_access_cells())
        # Each shelf at (1,2) and (3,2) is reachable from east/west/north/south
        # open cells in row y=2 and the cell above/below.
        assert (0, 2) in access
        assert (2, 2) in access
        assert (4, 2) in access
        assert (1, 3) in access  # above the shelf
        assert (1, 1) in access  # below the shelf

    def test_counts(self, fig1_grid):
        assert fig1_grid.num_shelves == 2
        assert fig1_grid.num_stations == 2

    def test_out_of_bounds_rejected(self, fig1_grid):
        with pytest.raises(GridError):
            fig1_grid.cell_type((99, 0))

    def test_summary_mentions_name(self, fig1_grid):
        assert "fig1" in fig1_grid.summary()


class TestBuildGrid:
    def test_explicit_placement(self):
        grid = build_grid(4, 3, shelves=[(1, 1)], stations=[(3, 0)], obstacles=[(0, 0)])
        assert grid.cell_type((1, 1)) == SHELF
        assert grid.cell_type((3, 0)) == STATION
        assert grid.cell_type((0, 0)) == OBSTACLE
        assert grid.cell_type((2, 2)) == EMPTY

    def test_overlap_rejected(self):
        with pytest.raises(GridError):
            build_grid(3, 3, shelves=[(1, 1)], stations=[(1, 1)])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(GridError):
            build_grid(3, 3, shelves=[(5, 5)])

    def test_bad_dimensions_rejected(self):
        with pytest.raises(GridError):
            build_grid(0, 3)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=8),
        height=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_ascii_round_trip(self, width, height, seed):
        import random

        rng = random.Random(seed)
        cells = {}
        for x in range(width):
            for y in range(height):
                cells[(x, y)] = rng.choice([EMPTY, OBSTACLE, SHELF, STATION])
        grid = GridMap(width=width, height=height, cells=cells)
        assert GridMap.from_ascii(grid.to_ascii()).cells == grid.cells

    @settings(max_examples=30, deadline=None)
    @given(
        width=st.integers(min_value=2, max_value=8),
        height=st.integers(min_value=2, max_value=8),
    )
    def test_neighbors_are_symmetric(self, width, height):
        grid = build_grid(width, height)
        for cell in grid.traversable_cells():
            for neighbor in grid.neighbors(cell):
                assert cell in grid.neighbors(neighbor)
