"""Tests for agent cycles, cycle sets and delivery schedules."""

import pytest

from repro.core import (
    AgentCycle,
    AgentCycleSet,
    CycleAction,
    CycleError,
    DeliverySchedule,
)
from repro.core.agent_cycles import DROPOFF, PICKUP
from repro.maps import toy_warehouse


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


def build_cycle(system, index=0):
    """A simple valid cycle within slice 0 of the toy warehouse."""
    station = system.component_by_name("slice0/station")
    serp0 = system.component_by_name("slice0/serpentine/0")
    serp1 = system.component_by_name("slice0/serpentine/1")
    top = system.component_by_name("slice0/top")
    down = system.component_by_name("slice0/down")
    components = (station.index, serp0.index, serp1.index, top.index, down.index)
    actions = (CycleAction(DROPOFF), CycleAction(PICKUP), None, None, None)
    return AgentCycle(index=index, components=components, actions=actions)


class TestCycleAction:
    def test_kinds(self):
        assert CycleAction(PICKUP).is_pickup
        assert CycleAction(DROPOFF).is_dropoff
        with pytest.raises(CycleError):
            CycleAction("teleport")


class TestAgentCycle:
    def test_basic_properties(self, system):
        cycle = build_cycle(system)
        assert cycle.length == 5
        assert cycle.num_agents == 5
        assert cycle.deliveries_per_period == 1
        assert cycle.pickup_positions() == (1,)
        assert cycle.dropoff_positions() == (0,)

    def test_pickup_and_dropoff_components(self, system):
        cycle = build_cycle(system)
        assert cycle.pickup_components() == (
            system.component_by_name("slice0/serpentine/0").index,
        )
        assert cycle.dropoff_components() == (
            system.component_by_name("slice0/station").index,
        )

    def test_loaded_segment(self, system):
        cycle = build_cycle(system)
        # Positions 1..4 (pickup row through down corridor) are loaded; the
        # drop-off position 0 is empty after its action.
        assert cycle.is_loaded_at(1)
        assert cycle.is_loaded_at(3)
        assert not cycle.is_loaded_at(0)
        assert cycle.preceding_pickup(4) == 1

    def test_requires_pickup_and_dropoff(self, system):
        station = system.component_by_name("slice0/station")
        serp = system.component_by_name("slice0/serpentine/0")
        with pytest.raises(CycleError):
            AgentCycle(0, (station.index, serp.index), (None, CycleAction(PICKUP)))

    def test_requires_balanced_actions(self, system):
        cycle = build_cycle(system)
        actions = list(cycle.actions)
        actions[2] = CycleAction(PICKUP)
        with pytest.raises(CycleError):
            AgentCycle(0, cycle.components, tuple(actions))

    def test_rejects_consecutive_pickups(self, system):
        cycle = build_cycle(system)
        actions = list(cycle.actions)
        actions[2] = CycleAction(PICKUP)
        actions[3] = CycleAction(DROPOFF)
        with pytest.raises(CycleError):
            AgentCycle(0, cycle.components, tuple(actions))

    def test_mismatched_lengths_rejected(self, system):
        cycle = build_cycle(system)
        with pytest.raises(CycleError):
            AgentCycle(0, cycle.components, cycle.actions[:-1])


class TestAgentCycleSet:
    def make_set(self, system, cycles=None):
        cycles = cycles if cycles is not None else (build_cycle(system),)
        return AgentCycleSet(system=system, cycles=cycles, cycle_time=14, num_periods=10)

    def test_aggregates(self, system):
        cycle_set = self.make_set(system)
        assert cycle_set.num_cycles == 1
        assert cycle_set.num_agents == 5
        assert cycle_set.deliveries_per_period() == 1
        assert cycle_set.expected_deliveries() == 10

    def test_component_load_and_pickups(self, system):
        cycle_set = self.make_set(system, (build_cycle(system, 0), build_cycle(system, 1)))
        load = cycle_set.component_load()
        station = system.component_by_name("slice0/station")
        assert load[station.index] == 2
        serp = system.component_by_name("slice0/serpentine/0")
        assert cycle_set.pickups_per_period(serp.index) == 2

    def test_validate_passes_for_valid_set(self, system):
        self.make_set(system).validate()

    def test_capacity_violation_detected(self, system):
        station = system.component_by_name("slice0/station")
        too_many = tuple(build_cycle(system, i) for i in range(station.capacity + 1))
        cycle_set = self.make_set(system, too_many)
        problems = cycle_set.check_capacity()
        assert problems
        with pytest.raises(CycleError):
            cycle_set.validate()

    def test_connectivity_violation_detected(self, system):
        station = system.component_by_name("slice0/station")
        serp = system.component_by_name("slice0/serpentine/0")
        other_top = system.component_by_name("slice1/top")
        cycle = AgentCycle(
            0,
            (station.index, serp.index, other_top.index),
            (CycleAction(DROPOFF), CycleAction(PICKUP), None),
        )
        cycle_set = self.make_set(system, (cycle,))
        assert cycle_set.check_connectivity()

    def test_kind_violation_detected(self, system):
        station = system.component_by_name("slice0/station")
        serp = system.component_by_name("slice0/serpentine/0")
        # Swap the action kinds: pickup on the station queue, drop-off on the
        # shelving row.
        cycle = AgentCycle(
            0,
            (
                station.index,
                serp.index,
                system.component_by_name("slice0/serpentine/1").index,
                system.component_by_name("slice0/top").index,
                system.component_by_name("slice0/down").index,
            ),
            (CycleAction(PICKUP), CycleAction(DROPOFF), None, None, None),
        )
        cycle_set = self.make_set(system, (cycle,))
        assert cycle_set.check_kinds()


class TestDeliverySchedule:
    def test_fifo_and_remaining(self):
        schedule = DeliverySchedule({1: [3, 4, 3], 2: [5]})
        assert schedule.remaining() == 4
        assert schedule.remaining(1) == 3
        assert schedule.next_product(1) == 3
        assert schedule.next_product(1) == 4
        assert schedule.remaining(1) == 1
        assert schedule.next_product(99) is None

    def test_scheduled_units(self):
        schedule = DeliverySchedule({1: [3, 4, 3], 2: [5]})
        assert schedule.scheduled_units() == {3: 2, 4: 1, 5: 1}

    def test_copy_is_independent(self):
        schedule = DeliverySchedule({1: [3, 4]})
        clone = schedule.copy()
        clone.next_product(1)
        assert schedule.remaining(1) == 2
        assert clone.remaining(1) == 1
