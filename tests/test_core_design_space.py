"""Tests for the topology design-space exploration (co-design loop)."""

import pytest

from repro.core import (
    DesignPoint,
    DesignSpaceError,
    best_design,
    candidate_lengths,
    explore_component_lengths,
)
from repro.maps import FulfillmentLayout
from repro.traffic import validate

LAYOUT = FulfillmentLayout(
    num_slices=2,
    shelf_columns=4,
    shelf_bands=3,
    shelf_depth=1,
    num_stations=2,
    num_products=4,
    name="design-space-test",
)


class TestCandidateLengths:
    def test_candidates_are_increasing_and_bounded(self):
        lengths = candidate_lengths(LAYOUT)
        assert lengths == sorted(lengths)
        assert len(lengths) >= 3
        serpentine = (LAYOUT.shelf_bands + 1) * (LAYOUT.shelf_columns + 2) + LAYOUT.shelf_bands
        assert all(4 <= value <= serpentine for value in lengths)


class TestExploration:
    @pytest.fixture(scope="class")
    def points(self):
        return explore_component_lengths(
            LAYOUT, workload_units=8, horizon=1200, lengths=[7, 12, 27], solve=True
        )

    def test_one_point_per_length(self, points):
        assert [p.max_component_length for p in points] == [7, 12, 27]

    def test_geometry_trends(self, points):
        # Longer components -> fewer components and longer cycle times.
        assert points[0].num_components > points[-1].num_components
        assert points[0].cycle_time <= points[-1].cycle_time
        for point in points:
            assert point.longest_component <= max(point.max_component_length,
                                                  LAYOUT.slice_width,
                                                  LAYOUT.height - 2)

    def test_designs_are_rule_valid(self, points):
        for point in points:
            assert validate(point.designed.traffic_system).is_valid

    def test_capacity_accounting(self, points):
        for point in points:
            assert point.total_capacity == point.capacity_per_period * point.num_periods
            assert point.capacity_feasible == (point.total_capacity >= 8 and point.num_periods > 0)

    def test_feasible_points_are_solved(self, points):
        for point in points:
            if point.capacity_feasible:
                assert point.solved
                assert point.num_agents > 0
                assert point.synthesis_seconds >= 0
            assert "max_len" in point.summary()

    def test_analysis_only_mode(self):
        points = explore_component_lengths(
            LAYOUT, workload_units=8, horizon=1200, lengths=[12], solve=False
        )
        assert not points[0].solved

    def test_bad_arguments_rejected(self):
        with pytest.raises(DesignSpaceError):
            explore_component_lengths(LAYOUT, workload_units=-1, horizon=1200)
        with pytest.raises(DesignSpaceError):
            explore_component_lengths(LAYOUT, workload_units=4, horizon=1200, lengths=[])


class TestBestDesign:
    def test_prefers_fewest_agents(self):
        a = DesignPoint(10, 12, 10, 20, 30, 5, 150, True, num_agents=20, synthesis_seconds=0.1,
                        services_workload=True)
        b = DesignPoint(20, 8, 20, 40, 15, 6, 90, True, num_agents=14, synthesis_seconds=0.1,
                        services_workload=True)
        assert best_design([a, b]) is b

    def test_falls_back_to_capacity(self):
        a = DesignPoint(10, 12, 10, 20, 30, 5, 150, False)
        b = DesignPoint(20, 8, 20, 40, 15, 6, 240, False)
        assert best_design([a, b]) is b

    def test_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            best_design([])

    def test_end_to_end_pick(self):
        points = explore_component_lengths(
            LAYOUT, workload_units=8, horizon=1200, lengths=[7, 27], solve=True
        )
        chosen = best_design(points)
        assert chosen.solved
        assert chosen in points
