"""Sharded-cache semantics: routing, per-shard LRU, locked accounting,
single-flight collapse, and leader-abandon follower promotion.

The multi-shard tests generate scenario variants until enough ids land in
the shards they need — routing is a stable content hash, so the search is
deterministic across runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List

import pytest

from repro.experiments import STATUS_ERROR, STATUS_OK, ScenarioSpec
from repro.service import (
    PoolSaturated,
    ResultCache,
    ServiceConfig,
    ServiceRequest,
    SolveService,
)
from repro.experiments import RunRecord

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


def variant(units: int) -> ScenarioSpec:
    return ScenarioSpec(
        **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": units}
    )


def record_for(spec: ScenarioSpec, status: str = STATUS_OK) -> RunRecord:
    return RunRecord(spec=spec, status=status)


def specs_by_shard(cache: ResultCache, per_shard: int) -> Dict[int, List[ScenarioSpec]]:
    """Distinct scenario specs grouped by the shard their id routes to."""
    groups: Dict[int, List[ScenarioSpec]] = {i: [] for i in range(cache.num_shards)}
    units = 1
    while any(len(group) < per_shard for group in groups.values()):
        spec = variant(units)
        group = groups[cache.shard_index(spec.scenario_id)]
        if len(group) < per_shard:
            group.append(spec)
        units += 1
        assert units < 10_000, "shard routing never filled every shard"
    return groups


def fill(cache: ResultCache, spec: ScenarioSpec, status: str = STATUS_OK) -> None:
    flight, leader = cache.lease(spec.scenario_id)
    assert leader
    cache.complete(spec.scenario_id, flight, record_for(spec, status=status))


# ---------------------------------------------------------------------------
# Routing and capacity distribution
# ---------------------------------------------------------------------------

class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        cache = ResultCache(capacity=16, shards=4)
        for units in range(1, 32):
            spec = variant(units)
            index = cache.shard_index(spec.scenario_id)
            assert 0 <= index < cache.num_shards
            assert index == cache.shard_index(spec.scenario_id)

    def test_capacity_distributed_across_shards(self):
        cache = ResultCache(capacity=10, shards=4)
        assert cache.num_shards == 4
        assert sorted(s.capacity for s in cache._shards) == [2, 2, 3, 3]
        assert sum(s.capacity for s in cache._shards) == 10

    def test_never_more_shards_than_capacity(self):
        cache = ResultCache(capacity=2, shards=8)
        assert cache.num_shards == 2
        assert all(s.capacity == 1 for s in cache._shards)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=4, shards=0)


# ---------------------------------------------------------------------------
# Per-shard LRU eviction
# ---------------------------------------------------------------------------

class TestPerShardEviction:
    def test_eviction_is_local_to_the_overflowing_shard(self):
        cache = ResultCache(capacity=4, shards=2)
        groups = specs_by_shard(cache, per_shard=3)
        hot, cold = groups[0], groups[1]
        # Park one entry in the cold shard, then overflow the hot shard
        # (per-shard capacity is 2, so the third insert evicts the first).
        fill(cache, cold[0])
        for spec in hot:
            fill(cache, spec)
        assert cache.get(hot[0].scenario_id)[0] is None
        assert cache.get(hot[1].scenario_id)[0] is not None
        assert cache.get(hot[2].scenario_id)[0] is not None
        # The cold shard never saw pressure: its entry survives.
        assert cache.get(cold[0].scenario_id)[0] is not None
        assert len(cache) == 3

    def test_touch_refreshes_recency_within_a_shard(self):
        cache = ResultCache(capacity=4, shards=2)
        groups = specs_by_shard(cache, per_shard=3)
        a, b, c = groups[0]
        fill(cache, a)
        fill(cache, b)
        assert cache.get(a.scenario_id)[0] is not None  # touch: a is now MRU
        fill(cache, c)  # evicts b, not a
        assert cache.get(b.scenario_id)[0] is None
        assert cache.get(a.scenario_id)[0] is not None


# ---------------------------------------------------------------------------
# Aggregate accounting
# ---------------------------------------------------------------------------

class TestAggregateAccounting:
    def test_snapshot_equals_sum_of_shards(self):
        cache = ResultCache(capacity=8, shards=4)
        groups = specs_by_shard(cache, per_shard=2)
        for group in groups.values():
            for spec in group:
                cache.get(spec.scenario_id)  # miss
                fill(cache, spec)
                cache.get(spec.scenario_id)  # hit
        snapshot = cache.snapshot()
        assert snapshot["num_shards"] == 4
        assert len(snapshot["shards"]) == 4
        for key in ("hits_memory", "hits_store", "misses", "coalesced", "puts",
                    "size", "in_flight"):
            assert snapshot[key] == sum(entry[key] for entry in snapshot["shards"]), key
        assert snapshot["size"] == len(cache) == 8
        assert snapshot["misses"] == snapshot["puts"] == 8
        assert snapshot["hits_memory"] == 8
        assert sum(entry["capacity"] for entry in snapshot["shards"]) == cache.capacity
        # hit_rate is derived from the same locked pass, so it is exactly
        # consistent with the counters beside it.
        hits = snapshot["hits_memory"] + snapshot["hits_store"] + snapshot["coalesced"]
        assert snapshot["hit_rate"] == hits / (hits + snapshot["misses"])

    def test_stats_and_hit_rate_agree(self):
        cache = ResultCache(capacity=8, shards=4)
        cache.get(TINY.scenario_id)
        fill(cache, TINY)
        cache.get(TINY.scenario_id)
        assert cache.stats["misses"] == 1 and cache.stats["hits_memory"] == 1
        assert cache.hit_rate == 0.5

    def test_accounting_is_consistent_under_concurrent_churn(self):
        """Readers of hit_rate/__len__/snapshot race writers without tearing.

        Pins the locking fix: every read happens under the shard locks, so a
        reader can never observe len(cache) above capacity or a hit_rate
        outside [0, 1] while inserts, evictions, leases and abandons churn.
        """
        cache = ResultCache(capacity=6, shards=3)
        specs = [variant(units) for units in range(1, 25)]
        stop = threading.Event()
        failures: List[str] = []

        def writer(offset: int) -> None:
            i = offset
            while not stop.is_set():
                spec = specs[i % len(specs)]
                flight, leader = cache.lease(spec.scenario_id)
                if leader:
                    if i % 5 == 0:
                        cache.abandon(spec.scenario_id, flight)
                    else:
                        cache.complete(spec.scenario_id, flight, record_for(spec))
                cache.get(spec.scenario_id)
                i += 1

        def reader() -> None:
            while not stop.is_set():
                rate = cache.hit_rate
                size = len(cache)
                snapshot = cache.snapshot()
                if not 0.0 <= rate <= 1.0:
                    failures.append(f"hit_rate out of range: {rate}")
                if size > cache.capacity:
                    failures.append(f"len above capacity: {size}")
                if snapshot["size"] > cache.capacity:
                    failures.append(f"snapshot size above capacity: {snapshot['size']}")
                expected = sum(e["size"] for e in snapshot["shards"])
                if snapshot["size"] != expected:
                    failures.append("snapshot size disagrees with its own shards")

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures, failures[:5]
        assert len(cache) <= cache.capacity


# ---------------------------------------------------------------------------
# Single-flight across shards
# ---------------------------------------------------------------------------

class TestSingleFlightSharded:
    def test_n_concurrent_misses_collapse_to_one_leader(self):
        cache = ResultCache(capacity=8, shards=8)
        leaders: List[bool] = []
        flights: List[object] = []
        barrier = threading.Barrier(8)
        lock = threading.Lock()

        def contend() -> None:
            barrier.wait()
            flight, leader = cache.lease(TINY.scenario_id)
            with lock:
                leaders.append(leader)
                flights.append(flight)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sum(leaders) == 1
        assert len(set(map(id, flights))) == 1  # everyone joined the same flight
        assert cache.stats["coalesced"] == 7
        cache.complete(TINY.scenario_id, flights[0], record_for(TINY))
        assert all(f.record is not None for f in flights)

    def test_flights_on_different_shards_are_independent(self):
        cache = ResultCache(capacity=8, shards=4)
        groups = specs_by_shard(cache, per_shard=1)
        flights = {}
        for index, group in groups.items():
            flight, leader = cache.lease(group[0].scenario_id)
            assert leader
            flights[index] = (group[0], flight)
        snapshot = cache.snapshot()
        assert snapshot["in_flight"] == 4
        assert all(entry["in_flight"] == 1 for entry in snapshot["shards"])
        for spec, flight in flights.values():
            cache.complete(spec.scenario_id, flight, record_for(spec))
        assert cache.snapshot()["in_flight"] == 0


# ---------------------------------------------------------------------------
# Leader abandon -> follower promotion
# ---------------------------------------------------------------------------

class TestAbandonPromotion:
    def test_abandon_marks_flight_before_waking(self):
        cache = ResultCache(capacity=4)
        flight, _ = cache.lease(TINY.scenario_id)
        cache.abandon(TINY.scenario_id, flight)
        assert flight.abandoned and flight.event.is_set() and flight.record is None
        # The id is free again: a woken follower can re-lease and lead.
        _, leader = cache.lease(TINY.scenario_id)
        assert leader

    def test_followers_survive_a_killed_leader(self):
        """Kill the leader mid-flight; followers re-lease and still resolve.

        The first pool submission (the leader's) blocks until every follower
        has coalesced, then dies with a saturation error.  The woken
        followers observe the abandoned flight, one re-leases as the new
        leader, and all of them resolve OK from the retried computation.
        """
        service = SolveService(
            ServiceConfig(workers=1, warm_up=False, coalesce_wait_seconds=30.0)
        )
        service.pool = KillableLeaderPool()
        followers_joined = service.pool.followers_joined

        responses: List[object] = []
        lock = threading.Lock()

        def call() -> None:
            response = service.resolve(ServiceRequest(scenario=TINY))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=call) for _ in range(5)]
        for thread in threads:
            thread.start()
        # Wait for the 4 followers to join the doomed leader's flight.
        deadline = time.monotonic() + 10.0
        while service.cache.stats["coalesced"] < 4 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.cache.stats["coalesced"] >= 4
        followers_joined.set()  # now the leader's submission fails

        # The retry leader's submission succeeds; complete its future.
        deadline = time.monotonic() + 10.0
        while not service.pool.futures and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.pool.futures, "no follower re-leased after the abandon"
        service.pool.futures[0].set_result(record_for(TINY).to_dict())

        for thread in threads:
            thread.join(timeout=30)
        assert len(responses) == 5
        by_state = sorted(r.state for r in responses)
        # Exactly one request (the killed leader) reports the rejection; the
        # four followers all recover through the promoted retry leader.
        assert by_state.count("rejected") == 1
        assert by_state.count(STATUS_OK) == 4
        ok = [r for r in responses if r.state == STATUS_OK]
        assert sum(1 for r in ok if r.cache == "miss") == 1  # the new leader
        assert sum(1 for r in ok if r.cache == "coalesced") == 3
        assert service.pool.stats["submitted"] == 1  # one real computation
        # The cache holds the record: later requests are plain hits.
        assert service.resolve(ServiceRequest(scenario=TINY)).cache == "hit"

    def test_second_abandon_is_terminal(self):
        """The retry is bounded: two abandons in a row surface an error."""
        service = SolveService(
            ServiceConfig(workers=1, warm_up=False, coalesce_wait_seconds=30.0)
        )
        service.pool = AlwaysSaturatedPool()

        responses: List[object] = []
        lock = threading.Lock()

        def call() -> None:
            response = service.resolve(ServiceRequest(scenario=TINY))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(responses) == 3
        # Nobody hangs and nobody pretends success: every request ends in an
        # explicit rejection or an abandoned-leader error.
        assert all(r.state in ("rejected", STATUS_ERROR) for r in responses)
        assert sum(1 for r in responses if r.state == "rejected") >= 1


class KillableLeaderPool:
    """First submission blocks until told, then dies; later ones succeed."""

    def __init__(self):
        self.futures: List[Future] = []
        self.workers = 1
        self.max_pending = 8
        self.stats = {"submitted": 0, "completed": 0, "rejected": 0}
        self.followers_joined = threading.Event()
        self._first = True
        self._lock = threading.Lock()

    @property
    def draining(self):
        return False

    @property
    def in_flight(self):
        return len([f for f in self.futures if not f.done()])

    def submit(self, document, timeout_seconds=None):
        with self._lock:
            first, self._first = self._first, False
        if first:
            assert self.followers_joined.wait(timeout=30)
            self.stats["rejected"] += 1
            raise PoolSaturated("leader killed mid-flight", retry_after_seconds=0.05)
        future = Future()
        self.futures.append(future)
        self.stats["submitted"] += 1
        return future

    def warm_up(self, timeout=None):
        pass

    def drain(self, timeout=None):
        return True

    def snapshot(self):
        return {**self.stats, "in_flight": self.in_flight, "workers": 1,
                "max_pending": self.max_pending, "draining": 0.0}


class AlwaysSaturatedPool(KillableLeaderPool):
    def __init__(self):
        super().__init__()
        self.followers_joined.set()

    def submit(self, document, timeout_seconds=None):
        self.stats["rejected"] += 1
        raise PoolSaturated("always full", retry_after_seconds=0.05)
