"""Tests for the MAPF substrate: space-time A*, constraints, reservations."""

import pytest

from repro.mapf import (
    Constraint,
    ConstraintSet,
    MAPFProblem,
    ReservationTable,
    SearchStats,
    count_path_conflicts,
    find_conflicts,
    first_conflict,
    position_at,
    shortest_path_lengths,
    space_time_astar,
    space_time_focal_astar,
)
from repro.warehouse import FloorplanGraph, build_grid

OPEN_5X3 = build_grid(5, 3)


@pytest.fixture()
def floorplan():
    return FloorplanGraph.from_grid(OPEN_5X3)


def v(floorplan, x, y):
    return floorplan.vertex_at((x, y))


class TestConflictDetection:
    def test_vertex_conflict(self, floorplan):
        a = (v(floorplan, 0, 0), v(floorplan, 1, 0))
        b = (v(floorplan, 2, 0), v(floorplan, 1, 0))
        conflicts = find_conflicts([a, b])
        assert len(conflicts) == 1
        assert conflicts[0].kind == "vertex"
        assert conflicts[0].timestep == 1

    def test_edge_conflict(self, floorplan):
        a = (v(floorplan, 0, 0), v(floorplan, 1, 0))
        b = (v(floorplan, 1, 0), v(floorplan, 0, 0))
        conflicts = find_conflicts([a, b])
        assert any(c.kind == "edge" for c in conflicts)

    def test_following_is_fine(self, floorplan):
        a = (v(floorplan, 1, 0), v(floorplan, 2, 0))
        b = (v(floorplan, 0, 0), v(floorplan, 1, 0))
        assert find_conflicts([a, b]) == []

    def test_parked_agent_conflicts_after_path_end(self, floorplan):
        a = (v(floorplan, 2, 0),)
        b = (v(floorplan, 0, 0), v(floorplan, 1, 0), v(floorplan, 2, 0))
        conflict = first_conflict([a, b])
        assert conflict is not None
        assert conflict.timestep == 2

    def test_position_at_extends_goal(self, floorplan):
        path = (v(floorplan, 0, 0), v(floorplan, 1, 0))
        assert position_at(path, 0) == path[0]
        assert position_at(path, 99) == path[1]


class TestSpaceTimeAStar:
    def test_straight_line(self, floorplan):
        path = space_time_astar(floorplan, v(floorplan, 0, 0), v(floorplan, 4, 0))
        assert path is not None
        assert len(path) == 5
        assert path[0] == v(floorplan, 0, 0)
        assert path[-1] == v(floorplan, 4, 0)

    def test_heuristic_matches_bfs(self, floorplan):
        distances = shortest_path_lengths(floorplan, v(floorplan, 4, 2))
        assert distances[v(floorplan, 0, 0)] == 6

    def test_vertex_constraint_forces_detour_or_wait(self, floorplan):
        start, goal = v(floorplan, 0, 0), v(floorplan, 2, 0)
        constraints = ConstraintSet([Constraint(0, v(floorplan, 1, 0), 1)])
        path = space_time_astar(floorplan, start, goal, agent=0, constraints=constraints)
        assert path is not None
        assert len(path) > 3 or path[1] != v(floorplan, 1, 0)
        assert path[-1] == goal

    def test_edge_constraint_respected(self, floorplan):
        start, goal = v(floorplan, 0, 0), v(floorplan, 1, 0)
        constraints = ConstraintSet(
            [Constraint(0, v(floorplan, 1, 0), 1, edge_from=v(floorplan, 0, 0))]
        )
        path = space_time_astar(floorplan, start, goal, agent=0, constraints=constraints)
        assert path is not None
        assert not (path[0] == start and path[1] == goal)

    def test_goal_constraint_delays_arrival(self, floorplan):
        start, goal = v(floorplan, 0, 0), v(floorplan, 1, 0)
        constraints = ConstraintSet([Constraint(0, goal, 5)])
        path = space_time_astar(floorplan, start, goal, agent=0, constraints=constraints)
        assert path is not None
        # The agent may not sit on the goal at t=5, so it must arrive later.
        assert len(path) - 1 > 5
        assert position_at(path, 5) != goal

    def test_reservations_respected(self, floorplan):
        table = ReservationTable()
        other = (v(floorplan, 1, 0), v(floorplan, 1, 0), v(floorplan, 1, 0))
        table.reserve_path(other, park_at_goal=False)
        path = space_time_astar(
            floorplan,
            v(floorplan, 0, 0),
            v(floorplan, 2, 0),
            reservations=table,
        )
        assert path is not None
        for t, vertex in enumerate(path):
            assert not (vertex == v(floorplan, 1, 0) and t <= 2)

    def test_parked_reservation_blocks_forever(self, floorplan):
        table = ReservationTable()
        table.reserve_path((v(floorplan, 1, 0),), park_at_goal=True)
        path = space_time_astar(
            floorplan, v(floorplan, 0, 0), v(floorplan, 2, 0), reservations=table
        )
        assert path is not None
        assert v(floorplan, 1, 0) not in path

    def test_unreachable_goal(self):
        grid = build_grid(3, 1, obstacles=[(1, 0)])
        floorplan = FloorplanGraph.from_grid(grid)
        path = space_time_astar(
            floorplan, floorplan.vertex_at((0, 0)), floorplan.vertex_at((2, 0))
        )
        assert path is None

    def test_stats_recorded(self, floorplan):
        stats = SearchStats()
        space_time_astar(
            floorplan, v(floorplan, 0, 0), v(floorplan, 4, 2), stats=stats
        )
        assert stats.expansions > 0
        assert stats.generated > 0


class TestFocalAStar:
    def test_same_cost_as_optimal_when_unconstrained(self, floorplan):
        result = space_time_focal_astar(
            floorplan,
            v(floorplan, 0, 0),
            v(floorplan, 4, 0),
            agent=0,
            constraints=ConstraintSet(),
            other_paths=[],
            suboptimality=1.5,
        )
        assert result is not None
        path, bound = result
        assert len(path) - 1 == 4
        assert bound <= len(path) - 1

    def test_avoids_other_paths_when_cheap(self, floorplan):
        # Another agent sits on the straight-line route; the focal search picks
        # a same-cost path around it when one exists.
        blocker = tuple([v(floorplan, 2, 0)] * 6)
        result = space_time_focal_astar(
            floorplan,
            v(floorplan, 0, 0),
            v(floorplan, 4, 0),
            agent=0,
            constraints=ConstraintSet(),
            other_paths=[blocker],
            suboptimality=2.0,
        )
        assert result is not None
        path, _ = result
        assert count_path_conflicts(path, [blocker]) == 0

    def test_count_path_conflicts(self, floorplan):
        a = (v(floorplan, 0, 0), v(floorplan, 1, 0))
        b = (v(floorplan, 1, 0), v(floorplan, 1, 0))
        assert count_path_conflicts(a, [b]) >= 1


class TestProblemValidation:
    def test_duplicate_starts_rejected(self, floorplan):
        from repro.mapf import MAPFError

        with pytest.raises(MAPFError):
            MAPFProblem.from_pairs(
                floorplan,
                [(v(floorplan, 0, 0), v(floorplan, 1, 0)), (v(floorplan, 0, 0), v(floorplan, 2, 0))],
            )

    def test_out_of_range_vertex_rejected(self, floorplan):
        from repro.mapf import MAPFError

        with pytest.raises(MAPFError):
            MAPFProblem.from_pairs(floorplan, [(0, 99999)])
