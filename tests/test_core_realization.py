"""Tests for the realization algorithm (Algorithm 1) and its guarantees."""

import pytest

from repro.core import (
    RealizationOptions,
    build_delivery_schedule,
    decompose_flow_set,
    realize_cycle_set,
    synthesize_flows,
)
from repro.maps import toy_warehouse
from repro.warehouse import PlanValidator, Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


@pytest.fixture(scope="module")
def workload(designed):
    return Workload.uniform(designed.warehouse.catalog, 8)


@pytest.fixture(scope="module")
def pieces(system, workload):
    result = synthesize_flows(system, workload, horizon=600)
    assert result.succeeded
    cycle_set = decompose_flow_set(result.flow_set)
    schedule = build_delivery_schedule(result.flow_set, workload)
    return cycle_set, schedule


@pytest.fixture(scope="module")
def realization(pieces):
    cycle_set, schedule = pieces
    return realize_cycle_set(cycle_set, schedule)


class TestRealizedPlan:
    def test_plan_shape(self, realization, pieces):
        cycle_set, _ = pieces
        plan = realization.plan
        assert plan.num_agents == cycle_set.num_agents
        assert plan.horizon == cycle_set.num_periods * cycle_set.cycle_time + 1

    def test_plan_is_feasible(self, realization, designed):
        report = PlanValidator(designed.warehouse).validate(realization.plan)
        assert report.is_feasible, [str(v) for v in report.violations[:5]]

    def test_property_41_holds(self, realization):
        assert realization.property41_violations == 0

    def test_deliveries_match_plan(self, realization):
        assert realization.deliveries == realization.plan.delivered_units()

    def test_workload_serviced(self, realization, workload):
        assert realization.plan.services(workload)

    def test_throughput_close_to_nominal(self, realization, pieces):
        cycle_set, _ = pieces
        expected = cycle_set.expected_deliveries()
        # Warm-up / in-flight effects may cost a handful of deliveries but the
        # realized throughput must stay close to one unit per cycle per period.
        assert realization.total_delivered >= expected - 2 * cycle_set.num_cycles

    def test_agents_advance_every_period(self, realization, pieces, system):
        cycle_set, _ = pieces
        plan = realization.plan
        tc = cycle_set.cycle_time
        owner = system.owner_of
        for agent in range(plan.num_agents):
            previous = None
            for period in range(cycle_set.num_periods + 1):
                t = min(period * tc, plan.horizon - 1)
                component = owner(int(plan.positions[agent, t]))
                if previous is not None:
                    assert component != previous or cycle_set.num_periods == 0, (
                        f"agent {agent} stayed in component {component} across period {period}"
                    )
                previous = component

    def test_pickups_at_least_deliveries(self, realization):
        total_picked = sum(realization.pickups.values())
        preloaded = sum(
            1 for c in realization.plan.carrying[:, 0] if int(c) != 0
        )
        assert total_picked + preloaded >= realization.total_delivered


class TestRealizationOptions:
    def test_without_preloading_still_feasible(self, pieces, designed, workload):
        cycle_set, schedule = pieces
        result = realize_cycle_set(
            cycle_set, schedule, RealizationOptions(preload_agents=False)
        )
        report = PlanValidator(designed.warehouse).validate(result.plan)
        assert report.is_feasible
        assert result.property41_violations == 0
        # Without preloading the first deliveries lag by the pickup->drop-off
        # distance, so the total is lower than with preloading but still
        # substantial.
        assert result.total_delivered > 0

    def test_preloading_delivers_at_least_as_much(self, pieces):
        cycle_set, schedule = pieces
        with_preload = realize_cycle_set(cycle_set, schedule, RealizationOptions())
        without = realize_cycle_set(
            cycle_set, schedule, RealizationOptions(preload_agents=False)
        )
        assert with_preload.total_delivered >= without.total_delivered

    def test_initial_positions_are_distinct(self, realization):
        first_column = realization.plan.positions[:, 0]
        assert len(set(int(v) for v in first_column)) == len(first_column)

    def test_carried_products_only_from_catalog(self, realization, designed):
        carried = set(int(p) for p in realization.plan.carrying.flatten())
        allowed = {0} | set(designed.warehouse.catalog.product_ids)
        assert carried <= allowed
