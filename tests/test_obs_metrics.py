"""Metrics registry: bounded histograms, exact merges, Prometheus lint.

Pins the properties the serving layer's ``/metrics`` endpoints rely on:

* histogram memory stays O(buckets) regardless of sample count, and the
  interpolated percentiles are within one bucket of the exact answer;
* merge is exact for counters/histograms (merging N worker snapshots equals
  observing everything in one registry) — a hypothesis property;
* the text exposition parses under a strict line grammar with cumulative,
  monotone ``_bucket`` series ending at ``+Inf``.
"""

from __future__ import annotations

import json
import math
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
)

SAMPLES = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=60
)


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------

def test_histogram_memory_is_bounded():
    histogram = Histogram(buckets=(0.1, 1.0, 10.0))
    for index in range(10_000):
        histogram.observe(index % 13)
    assert len(histogram.counts) == 4  # 3 bounds + the +Inf bucket
    assert histogram.count == 10_000
    assert histogram.max == 12.0


@settings(max_examples=60, deadline=None)
@given(samples=SAMPLES, fraction=st.floats(min_value=0.0, max_value=1.0))
def test_percentile_is_within_one_bucket(samples, fraction):
    histogram = Histogram()
    for value in samples:
        histogram.observe(value)
    estimate = histogram.percentile(fraction)
    if not samples:
        assert estimate == 0.0
        return
    ordered = sorted(samples)
    rank = fraction * len(ordered)
    # When the rank lands exactly on a sample boundary the >=-cumulative
    # convention may answer with either neighbor; both are exact answers.
    indices = {min(len(ordered) - 1, int(rank))}
    if rank == int(rank) and rank >= 1:
        indices.add(int(rank) - 1)
    bounds = [0.0] + list(DEFAULT_BUCKETS) + [max(samples)]
    # The estimate lands inside (or at the edge of) the exact value's bucket:
    # it can overshoot the observed max only up to that bucket's ceiling.
    ceiling = next((b for b in DEFAULT_BUCKETS if max(samples) <= b), max(samples))
    assert estimate <= ceiling + 1e-9
    assert estimate >= 0.0

    def within_one_bucket(exact: float) -> bool:
        index = next(
            i for i in range(1, len(bounds)) if exact <= bounds[i] or i == len(bounds) - 1
        )
        return abs(estimate - exact) <= max(bounds[index] - bounds[index - 1], 1e-9) + 1e-9

    assert any(within_one_bucket(ordered[i]) for i in indices)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(MetricsError):
        Histogram(buckets=())
    with pytest.raises(MetricsError):
        Histogram(buckets=(1.0, 1.0, 2.0))
    with pytest.raises(MetricsError):
        Histogram(buckets=(2.0, 1.0))


def test_summary_matches_latency_summary_shape():
    histogram = Histogram()
    for value in (0.002, 0.004, 0.02, 0.2):
        histogram.observe(value)
    summary = histogram.summary()
    assert set(summary) == {"p50", "p90", "p95", "mean", "max", "count"}
    assert summary["count"] == 4.0
    assert summary["max"] == pytest.approx(0.2)
    assert summary["mean"] == pytest.approx(0.0565)


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------

def test_type_collision_raises():
    registry = MetricsRegistry()
    registry.counter("repro_things_total")
    with pytest.raises(MetricsError):
        registry.gauge("repro_things_total")
    with pytest.raises(MetricsError):
        registry.histogram("repro_things_total")


def test_invalid_names_and_labels_raise():
    registry = MetricsRegistry()
    with pytest.raises(MetricsError):
        registry.counter("0bad")
    with pytest.raises(MetricsError):
        registry.counter("ok_name", **{"0bad": "x"})
    with pytest.raises(MetricsError):
        registry.counter("neg").inc(-1)


def test_labelled_series_are_independent():
    registry = MetricsRegistry()
    registry.counter("repro_runs_total", status="ok").inc(3)
    registry.counter("repro_runs_total", status="error").inc()
    entries = {
        tuple(sorted(entry["labels"].items())): entry["value"]
        for entry in registry.snapshot()["metrics"]
    }
    assert entries[(("status", "ok"),)] == 3.0
    assert entries[(("status", "error"),)] == 1.0


def test_snapshot_is_deterministic_json():
    registry = MetricsRegistry()
    registry.gauge("repro_b_gauge", "b").set(2.5)
    registry.counter("repro_a_total", "a", status="ok").inc()
    registry.histogram("repro_h_seconds", "h").observe(0.42)
    first = json.dumps(registry.snapshot(), sort_keys=True)
    second = json.dumps(registry.snapshot(), sort_keys=True)
    assert first == second
    names = [entry["name"] for entry in registry.snapshot()["metrics"]]
    assert names == sorted(names)


@settings(max_examples=40, deadline=None)
@given(
    chunks=st.lists(SAMPLES, min_size=1, max_size=4),
    counts=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=4),
)
def test_merge_equals_direct_observation(chunks, counts):
    """Merging N worker snapshots == observing everything in one registry."""
    direct = MetricsRegistry()
    merged = MetricsRegistry()
    for chunk in chunks:
        worker = MetricsRegistry()
        for value in chunk:
            direct.histogram("repro_h_seconds").observe(value)
            worker.histogram("repro_h_seconds").observe(value)
        merged.merge(worker.snapshot())
    for amount in counts:
        worker = MetricsRegistry()
        direct.counter("repro_c_total").inc(amount)
        worker.counter("repro_c_total").inc(amount)
        merged.merge(worker.snapshot())
    merged_entries = merged.snapshot()["metrics"]
    direct_entries = direct.snapshot()["metrics"]
    assert len(merged_entries) == len(direct_entries)
    for got, want in zip(merged_entries, direct_entries):
        # Histogram sums accumulate in a different order when merged, so the
        # float totals may differ in the last ulp; everything else is exact.
        got_sum, want_sum = got.pop("sum", 0.0), want.pop("sum", 0.0)
        assert got == want
        assert got_sum == pytest.approx(want_sum, rel=1e-12, abs=1e-12)


def test_merge_rejects_bucket_mismatch():
    parent = MetricsRegistry()
    parent.histogram("repro_h_seconds", buckets=(1.0, 2.0)).observe(0.5)
    worker = MetricsRegistry()
    worker.histogram("repro_h_seconds", buckets=(1.0, 5.0)).observe(0.5)
    with pytest.raises(MetricsError):
        parent.merge(worker.snapshot())


def test_gauges_take_the_merged_value():
    parent = MetricsRegistry()
    parent.gauge("repro_depth").set(3)
    worker = MetricsRegistry()
    worker.gauge("repro_depth").set(7)
    parent.merge(worker.snapshot())
    assert parent.gauge("repro_depth").value == 7.0


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'  # value may hold \" \\ \n
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"       # metric name
    rf"(\{{{_LABEL}(,{_LABEL})*\}})?"  # optional {label="v",...} block
    r" (\+Inf|-?[0-9.e+-]+)$"          # value
)


def lint_prometheus(text: str) -> None:
    """A strict structural lint of text exposition format 0.0.4."""
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
        elif line.startswith("# HELP "):
            assert len(line.split(" ", 3)) == 4, line
        else:
            assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
    assert typed, "no TYPE lines found"


def test_prometheus_exposition_lints():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests by state", state="hit").inc(4)
    registry.gauge("repro_pool_in_flight", "In-flight requests").set(2)
    histogram = registry.histogram("repro_request_seconds", "Latency", tier="cold")
    for value in (0.003, 0.02, 0.02, 7.0, 120.0):
        histogram.observe(value)
    text = registry.to_prometheus()
    lint_prometheus(text)
    assert "# HELP repro_requests_total Requests by state" in text
    assert '''repro_requests_total{state="hit"} 4''' in text


def test_prometheus_buckets_are_cumulative_and_end_at_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_h_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    text = registry.to_prometheus()
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_h_seconds_bucket")
    ]
    assert counts == sorted(counts), "bucket series must be cumulative"
    assert counts[-1] == 4
    assert 'le="+Inf"' in text
    assert "repro_h_seconds_sum" in text
    assert "repro_h_seconds_count 4" in text


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("repro_c_total", stage='we"ird\nname\\x').inc()
    text = registry.to_prometheus()
    assert r'stage="we\"ird\nname\\x"' in text
    lint_prometheus(text)


# ---------------------------------------------------------------------------
# sweep integration: worker metrics fold into the global registry
# ---------------------------------------------------------------------------

def test_run_sweep_merges_worker_metrics_into_global_registry():
    from repro.experiments import preset_scenarios, run_sweep

    registry = get_registry()
    registry.clear()
    specs = [spec for spec in preset_scenarios("smoke") if spec.is_valid()][:1]
    records = run_sweep(specs)
    assert len(records) == 1
    snapshot = registry.snapshot()
    names = {entry["name"] for entry in snapshot["metrics"]}
    assert "repro_runs_total" in names
    assert "repro_stage_seconds" in names
    runs = sum(
        entry["value"]
        for entry in snapshot["metrics"]
        if entry["name"] == "repro_runs_total"
    )
    assert runs == 1.0
    registry.clear()
