"""HTTP front-end tests: endpoints, error mapping, and graceful shutdown.

One module-scoped server (1 spawn worker) backs the endpoint tests; the
shutdown tests boot their own short-lived instances, including a real
``repro serve`` subprocess that gets SIGINT mid-request.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import ScenarioSpec
from repro.service import (
    FastServiceClient,
    LoadTestOptions,
    RoundRobinClient,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceRequest,
    ServiceServer,
    run_loadtest,
    run_saturation,
)

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)
OTHER = ScenarioSpec(
    **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}
)


@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=4, warm_up=True)
    ).start()
    yield instance
    instance.stop(drain_timeout=30)


@pytest.fixture()
def client(server):
    with ServiceClient(server.url, timeout=180) as connection:
        yield connection


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1

    def test_solve_cold_then_warm(self, client):
        status, cold = client.solve(ServiceRequest(scenario=TINY))
        assert status == 200 and cold.state == "ok"
        assert cold.cache in ("miss", "hit", "store")  # module ordering agnostic
        status, warm = client.solve(ServiceRequest(scenario=TINY))
        assert status == 200 and warm.state == "ok" and warm.served_from_cache
        assert warm.record["scenario_id"] == TINY.scenario_id
        # The embedded record is a full run-record document.
        assert warm.record["schema"] == "experiment-run"
        assert warm.record["status"] == "ok"

    def test_metrics_after_traffic(self, client):
        client.solve(ServiceRequest(scenario=TINY))
        metrics = client.metrics()
        assert metrics["requests"]["total"] >= 1
        assert metrics["cache"]["hit_rate"] > 0
        assert metrics["pool"]["workers"] == 1

    def test_batch_ndjson_stream(self, client):
        responses = client.batch(
            [ServiceRequest(scenario=TINY), ServiceRequest(scenario=OTHER)]
        )
        assert [r.scenario_id for r in responses] == [
            TINY.scenario_id,
            OTHER.scenario_id,
        ]
        assert all(r.state == "ok" for r in responses)

    def test_submit_status_result(self, client):
        status, pending = client.submit(ServiceRequest(scenario=TINY))
        assert status == 202 and pending.state == "pending"
        status, document = client.status(pending.request_id)
        assert status in (200, 202)
        status, final = client.result(pending.request_id)
        assert status == 200 and final.state == "ok"

    def test_unknown_request_id_is_404(self, client):
        status, _ = client.status("req-999999")
        assert status == 404
        with pytest.raises(ServiceClientError):
            client.result("req-999999")

    def test_unknown_endpoint_is_404(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        connection.request("GET", "/nope")
        assert connection.getresponse().status == 404
        connection.close()

    def test_malformed_json_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        connection.request(
            "POST", "/solve", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        assert connection.getresponse().status == 400
        connection.close()

    def test_invalid_request_document_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        body = json.dumps({"schema": "warehouse"}).encode()
        connection.request("POST", "/solve", body=body)
        reply = connection.getresponse()
        assert reply.status == 400
        document = json.loads(reply.read())
        assert document["state"] == "invalid"
        connection.close()

    def test_bare_scenario_document_is_accepted(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
        connection.request("POST", "/solve", body=json.dumps(TINY.to_dict()).encode())
        reply = connection.getresponse()
        assert reply.status == 200
        assert json.loads(reply.read())["state"] == "ok"
        connection.close()

    def test_ndjson_batch_body_is_accepted(self, server):
        body = "\n".join(
            json.dumps(spec.to_dict()) for spec in (TINY, OTHER)
        ).encode()
        connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
        connection.request("POST", "/batch", body=body)
        reply = connection.getresponse()
        assert reply.status == 200
        lines = [line for line in reply.read().decode().splitlines() if line.strip()]
        assert len(lines) == 2
        assert all(json.loads(line)["state"] == "ok" for line in lines)
        connection.close()

    def test_batch_lines_carry_completion_index(self, server):
        body = "\n".join(
            json.dumps(spec.to_dict()) for spec in (TINY, OTHER)
        ).encode()
        connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
        connection.request("POST", "/batch", body=body)
        reply = connection.getresponse()
        assert reply.status == 200
        documents = [
            json.loads(line) for line in reply.read().decode().splitlines() if line.strip()
        ]
        # Lines stream in completion order; the index field maps each line
        # back to its submission slot so clients can reassemble the order.
        assert sorted(document["index"] for document in documents) == [0, 1]
        connection.close()

    def test_fast_client_speaks_to_the_threading_server(self, server):
        with ServiceClient(server.url, timeout=180) as seed:
            seed.solve(ServiceRequest(scenario=TINY))
        with FastServiceClient(server.url, timeout=60) as client:
            wire = client.render(ServiceRequest(scenario=TINY))
            for _ in range(20):
                status, view = client.solve_prepared(wire)
                assert status == 200
                assert view.state == "ok" and view.terminal
                assert view.served_from_cache

    def test_round_robin_client_over_two_replicas(self, server):
        replica = ServiceServer(
            ServiceConfig(port=0, workers=1, max_pending=4, warm_up=False)
        ).start()
        try:
            for url in (server.url, replica.url):
                with ServiceClient(url, timeout=180) as seed:
                    status, response = seed.solve(ServiceRequest(scenario=TINY))
                    assert status == 200 and response.state == "ok"
            with RoundRobinClient([server.url, replica.url], timeout=60) as client:
                wire = client.render(ServiceRequest(scenario=TINY))
                for _ in range(8):
                    status, view = client.solve_prepared(wire)
                    assert status == 200 and view.served_from_cache
        finally:
            replica.stop(drain_timeout=30)

    def test_loadtest_multi_replica_with_saturation_curve(self, server):
        urls = [server.url, server.url]  # one fleet listed twice
        report = run_loadtest(
            urls,
            [TINY],
            LoadTestOptions(clients=2, requests_per_client=2, timeout=180),
        )
        assert report.replicas == 2
        assert report.transport_errors == 0 and report.server_errors == 0
        report.saturation = run_saturation(
            urls, [TINY], clients_grid=(1, 2), duration=0.2, timeout=60
        )
        assert len(report.saturation) == 2
        for point in report.saturation:
            assert point["replicas"] == 2
            assert point["errors"] == 0
            assert point["throughput_rps"] > 0
        document = report.to_dict()
        assert document["replicas"] == 2
        assert [p["clients"] for p in document["saturation"]] == [1, 2]
        from repro.analysis import loadtest_report

        assert "saturation curve" in loadtest_report(report)

    def test_loadtest_harness_round_trip(self, server):
        report = run_loadtest(
            server.url,
            [TINY, OTHER],
            LoadTestOptions(clients=4, requests_per_client=2, timeout=180),
        )
        assert report.transport_errors == 0 and report.server_errors == 0
        assert report.cache_hits > 0
        assert report.total_requests == 2 + 4 * 2
        # The serialized report condenses the server-side registry into a
        # service section (replacing the raw /metrics dump).
        service = report.service
        assert service["cache_hit_rate"] > 0
        assert 0.0 <= service["pool_saturation"] <= 1.0
        assert service["runs_by_status"].get("ok", 0) >= 1
        document = report.to_dict()
        assert "metrics" not in document
        assert document["service"] == service
        # The rendered report carries the service-side columns.
        from repro.analysis import loadtest_report

        text = loadtest_report(report)
        assert "cache hit rate" in text and "pool saturation" in text


class TestBodyBounds:
    """``_read_body`` rejects hostile Content-Length values up front."""

    @staticmethod
    def raw_status(host: str, port: int, content_length) -> int:
        head = (
            f"POST /solve HTTP/1.1\r\nHost: {host}:{port}\r\n"
            f"Content-Type: application/json\r\nContent-Length: {content_length}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(head)
            sock.settimeout(30)
            reply = sock.recv(65536)
        return int(reply.split(None, 2)[1])

    def test_negative_content_length_is_400(self, server):
        assert self.raw_status(server.host, server.port, -5) == 400

    def test_oversize_content_length_is_413_without_reading(self, server):
        # Claim a body over the default 8 MiB bound but never send a byte:
        # the server must answer from the header alone instead of blocking
        # on (or allocating) the advertised body.
        assert self.raw_status(server.host, server.port, 9 * 1024 * 1024) == 413

    def test_bound_is_configurable(self):
        instance = ServiceServer(
            ServiceConfig(port=0, workers=1, warm_up=False, max_body_bytes=1024)
        ).start()
        try:
            connection = http.client.HTTPConnection(
                instance.host, instance.port, timeout=30
            )
            connection.request("POST", "/solve", body=b"x" * 2048)
            assert connection.getresponse().status == 413
            connection.close()
        finally:
            instance.stop(drain_timeout=10)


class TestGracefulShutdown:
    def test_stop_completes_in_flight_request_and_closes_socket(self):
        instance = ServiceServer(
            ServiceConfig(port=0, workers=1, max_pending=4, warm_up=True)
        ).start()
        host, port = instance.host, instance.port
        outcome = {}

        def in_flight():
            with ServiceClient(instance.url, timeout=180) as client:
                try:
                    outcome["status"], outcome["response"] = client.solve(
                        ServiceRequest(scenario=TINY, fresh=True)
                    )
                except ServiceClientError as error:  # pragma: no cover - fail loudly
                    outcome["error"] = error

        worker = threading.Thread(target=in_flight)
        worker.start()
        time.sleep(0.05)  # let the request reach the pool
        assert instance.stop(drain_timeout=60)
        worker.join(timeout=30)
        # The in-flight request either completed or was cleanly rejected —
        # never dropped on the floor.
        assert "error" not in outcome
        assert outcome["status"] in (200, 503)
        if outcome["status"] == 200:
            assert outcome["response"].state == "ok"
        # The listening socket is closed: new connections are refused.
        with pytest.raises(OSError):
            probe = socket.create_connection((host, port), timeout=2)
            probe.close()

    def test_draining_service_rejects_new_requests(self):
        instance = ServiceServer(ServiceConfig(port=0, workers=1, warm_up=False)).start()
        try:
            instance.service.begin_drain()
            with ServiceClient(instance.url, timeout=30) as client:
                status, response = client.solve(ServiceRequest(scenario=TINY))
                assert status == 503 and response.state == "rejected"
                health = client.health()
                assert health["status"] == "draining"
        finally:
            instance.stop(drain_timeout=10)


@pytest.mark.skipif(not hasattr(signal, "SIGINT"), reason="POSIX signals required")
class TestSigintSubprocess:
    def test_sigint_during_in_flight_request_drains_cleanly(self, tmp_path):
        """Boot ``repro serve``, fire a request, SIGINT mid-flight: the
        request completes (or is cleanly rejected), the process exits 0, and
        the socket closes."""
        repo_src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{repo_src}:{env.get('PYTHONPATH', '')}".rstrip(":")
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    url = line.rsplit(" ", 1)[-1].strip()
                    break
            assert url, "server never announced its address"

            outcome = {}

            def in_flight():
                with ServiceClient(url, timeout=180) as client:
                    try:
                        outcome["status"], _ = client.solve(
                            ServiceRequest(scenario=TINY, fresh=True)
                        )
                    except ServiceClientError as error:
                        outcome["error"] = error

            worker = threading.Thread(target=in_flight)
            worker.start()
            time.sleep(0.3)  # request is in flight (worker pool is spawning/solving)
            process.send_signal(signal.SIGINT)
            worker.join(timeout=120)
            assert process.wait(timeout=120) == 0
            assert "error" not in outcome
            assert outcome["status"] in (200, 503)
            # Socket closed after drain.
            host, port = url.rsplit("//", 1)[-1].split(":")
            with pytest.raises(OSError):
                probe = socket.create_connection((host, int(port)), timeout=2)
                probe.close()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait(timeout=30)
