"""HTTP front-end tests: endpoints, error mapping, and graceful shutdown.

One module-scoped server (1 spawn worker) backs the endpoint tests; the
shutdown tests boot their own short-lived instances, including a real
``repro serve`` subprocess that gets SIGINT mid-request.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import ScenarioSpec
from repro.service import (
    LoadTestOptions,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceRequest,
    ServiceServer,
    run_loadtest,
)

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)
OTHER = ScenarioSpec(
    **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}
)


@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=4, warm_up=True)
    ).start()
    yield instance
    instance.stop(drain_timeout=30)


@pytest.fixture()
def client(server):
    with ServiceClient(server.url, timeout=180) as connection:
        yield connection


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1

    def test_solve_cold_then_warm(self, client):
        status, cold = client.solve(ServiceRequest(scenario=TINY))
        assert status == 200 and cold.state == "ok"
        assert cold.cache in ("miss", "hit", "store")  # module ordering agnostic
        status, warm = client.solve(ServiceRequest(scenario=TINY))
        assert status == 200 and warm.state == "ok" and warm.served_from_cache
        assert warm.record["scenario_id"] == TINY.scenario_id
        # The embedded record is a full run-record document.
        assert warm.record["schema"] == "experiment-run"
        assert warm.record["status"] == "ok"

    def test_metrics_after_traffic(self, client):
        client.solve(ServiceRequest(scenario=TINY))
        metrics = client.metrics()
        assert metrics["requests"]["total"] >= 1
        assert metrics["cache"]["hit_rate"] > 0
        assert metrics["pool"]["workers"] == 1

    def test_batch_ndjson_stream(self, client):
        responses = client.batch(
            [ServiceRequest(scenario=TINY), ServiceRequest(scenario=OTHER)]
        )
        assert [r.scenario_id for r in responses] == [
            TINY.scenario_id,
            OTHER.scenario_id,
        ]
        assert all(r.state == "ok" for r in responses)

    def test_submit_status_result(self, client):
        status, pending = client.submit(ServiceRequest(scenario=TINY))
        assert status == 202 and pending.state == "pending"
        status, document = client.status(pending.request_id)
        assert status in (200, 202)
        status, final = client.result(pending.request_id)
        assert status == 200 and final.state == "ok"

    def test_unknown_request_id_is_404(self, client):
        status, _ = client.status("req-999999")
        assert status == 404
        with pytest.raises(ServiceClientError):
            client.result("req-999999")

    def test_unknown_endpoint_is_404(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        connection.request("GET", "/nope")
        assert connection.getresponse().status == 404
        connection.close()

    def test_malformed_json_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        connection.request(
            "POST", "/solve", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        assert connection.getresponse().status == 400
        connection.close()

    def test_invalid_request_document_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        body = json.dumps({"schema": "warehouse"}).encode()
        connection.request("POST", "/solve", body=body)
        reply = connection.getresponse()
        assert reply.status == 400
        document = json.loads(reply.read())
        assert document["state"] == "invalid"
        connection.close()

    def test_bare_scenario_document_is_accepted(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
        connection.request("POST", "/solve", body=json.dumps(TINY.to_dict()).encode())
        reply = connection.getresponse()
        assert reply.status == 200
        assert json.loads(reply.read())["state"] == "ok"
        connection.close()

    def test_ndjson_batch_body_is_accepted(self, server):
        body = "\n".join(
            json.dumps(spec.to_dict()) for spec in (TINY, OTHER)
        ).encode()
        connection = http.client.HTTPConnection(server.host, server.port, timeout=180)
        connection.request("POST", "/batch", body=body)
        reply = connection.getresponse()
        assert reply.status == 200
        lines = [line for line in reply.read().decode().splitlines() if line.strip()]
        assert len(lines) == 2
        assert all(json.loads(line)["state"] == "ok" for line in lines)
        connection.close()

    def test_loadtest_harness_round_trip(self, server):
        report = run_loadtest(
            server.url,
            [TINY, OTHER],
            LoadTestOptions(clients=4, requests_per_client=2, timeout=180),
        )
        assert report.transport_errors == 0 and report.server_errors == 0
        assert report.cache_hits > 0
        assert report.total_requests == 2 + 4 * 2
        # The serialized report condenses the server-side registry into a
        # service section (replacing the raw /metrics dump).
        service = report.service
        assert service["cache_hit_rate"] > 0
        assert 0.0 <= service["pool_saturation"] <= 1.0
        assert service["runs_by_status"].get("ok", 0) >= 1
        document = report.to_dict()
        assert "metrics" not in document
        assert document["service"] == service
        # The rendered report carries the service-side columns.
        from repro.analysis import loadtest_report

        text = loadtest_report(report)
        assert "cache hit rate" in text and "pool saturation" in text


class TestGracefulShutdown:
    def test_stop_completes_in_flight_request_and_closes_socket(self):
        instance = ServiceServer(
            ServiceConfig(port=0, workers=1, max_pending=4, warm_up=True)
        ).start()
        host, port = instance.host, instance.port
        outcome = {}

        def in_flight():
            with ServiceClient(instance.url, timeout=180) as client:
                try:
                    outcome["status"], outcome["response"] = client.solve(
                        ServiceRequest(scenario=TINY, fresh=True)
                    )
                except ServiceClientError as error:  # pragma: no cover - fail loudly
                    outcome["error"] = error

        worker = threading.Thread(target=in_flight)
        worker.start()
        time.sleep(0.05)  # let the request reach the pool
        assert instance.stop(drain_timeout=60)
        worker.join(timeout=30)
        # The in-flight request either completed or was cleanly rejected —
        # never dropped on the floor.
        assert "error" not in outcome
        assert outcome["status"] in (200, 503)
        if outcome["status"] == 200:
            assert outcome["response"].state == "ok"
        # The listening socket is closed: new connections are refused.
        with pytest.raises(OSError):
            probe = socket.create_connection((host, port), timeout=2)
            probe.close()

    def test_draining_service_rejects_new_requests(self):
        instance = ServiceServer(ServiceConfig(port=0, workers=1, warm_up=False)).start()
        try:
            instance.service.begin_drain()
            with ServiceClient(instance.url, timeout=30) as client:
                status, response = client.solve(ServiceRequest(scenario=TINY))
                assert status == 503 and response.state == "rejected"
                health = client.health()
                assert health["status"] == "draining"
        finally:
            instance.stop(drain_timeout=10)


@pytest.mark.skipif(not hasattr(signal, "SIGINT"), reason="POSIX signals required")
class TestSigintSubprocess:
    def test_sigint_during_in_flight_request_drains_cleanly(self, tmp_path):
        """Boot ``repro serve``, fire a request, SIGINT mid-flight: the
        request completes (or is cleanly rejected), the process exits 0, and
        the socket closes."""
        repo_src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{repo_src}:{env.get('PYTHONPATH', '')}".rstrip(":")
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    url = line.rsplit(" ", 1)[-1].strip()
                    break
            assert url, "server never announced its address"

            outcome = {}

            def in_flight():
                with ServiceClient(url, timeout=180) as client:
                    try:
                        outcome["status"], _ = client.solve(
                            ServiceRequest(scenario=TINY, fresh=True)
                        )
                    except ServiceClientError as error:
                        outcome["error"] = error

            worker = threading.Thread(target=in_flight)
            worker.start()
            time.sleep(0.3)  # request is in flight (worker pool is spawning/solving)
            process.send_signal(signal.SIGINT)
            worker.join(timeout=120)
            assert process.wait(timeout=120) == 0
            assert "error" not in outcome
            assert outcome["status"] in (200, 503)
            # Socket closed after drain.
            host, port = url.rsplit("//", 1)[-1].split(":")
            with pytest.raises(OSError):
                probe = socket.create_connection((host, int(port)), timeout=2)
                probe.close()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait(timeout=30)
