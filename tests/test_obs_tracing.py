"""Span nesting, zero-cost disabled paths, and deterministic serialization.

The tracer's contract has three legs the rest of the PR leans on:

* spans nest per thread into well-formed trees whose serialized intervals
  are consistent (children inside parents, starts monotone) — checked as a
  hypothesis property over arbitrary tree shapes;
* the disabled path allocates nothing and touches no clock
  (:data:`NULL_SPAN` identity), so instrumentation may stay in hot loops;
* :func:`span_to_dict` is a pure function of the span tree — two
  serializations of the same capture are byte-identical.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_SPAN,
    capture_trace,
    current_span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    span,
    span_to_dict,
    tracing_enabled,
)

# Recursive tree shapes: each node is a list of children.
TREES = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=4), max_leaves=12
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with the ambient tracer disabled."""
    disable_tracing()
    drain_spans()
    yield
    disable_tracing()
    drain_spans()


def build_tree(shape, name="n") -> None:
    with span(name, depth_marker=len(shape)) as sp:
        sp.add("children", len(shape))
        for index, child in enumerate(shape):
            build_tree(child, name=f"{name}.{index}")


def assert_well_formed(node, parent_duration=None):
    assert list(node) == [
        "name", "start", "duration", "attrs", "counters", "phases", "children",
    ]
    assert node["start"] >= 0.0
    assert node["duration"] >= 0.0
    starts = [child["start"] for child in node["children"]]
    assert starts == sorted(starts), "sibling spans must start in order"
    for child in node["children"]:
        # A child's interval lies within its parent's (both measured from the
        # same origin; serialization rounding allows a 1ns slack per bound).
        assert child["start"] + 2e-9 >= node["start"]
        assert child["start"] + child["duration"] <= (
            node["start"] + node["duration"] + 2e-9
        )
        assert_well_formed(child)


@settings(max_examples=60, deadline=None)
@given(shape=TREES)
def test_span_trees_serialize_well_formed(shape):
    with capture_trace() as capture:
        build_tree(shape)
    document = capture.to_dict()
    assert document["schema"] == "obs-trace"
    assert len(document["spans"]) == 1
    assert_well_formed(document["spans"][0])


@settings(max_examples=30, deadline=None)
@given(shape=TREES)
def test_serialization_is_byte_deterministic(shape):
    with capture_trace() as capture:
        build_tree(shape)
    first = json.dumps(capture.to_dict(), sort_keys=True)
    second = json.dumps(capture.to_dict(), sort_keys=True)
    assert first == second


def test_disabled_span_is_the_null_singleton():
    assert not tracing_enabled()
    sp = span("anything", attr=1)
    assert sp is NULL_SPAN
    assert current_span() is NULL_SPAN
    # Every operation is a no-op that returns reusable objects.
    with sp as inner:
        assert inner is NULL_SPAN
        inner.set_attr("x", 1)
        inner.add("hits")
        with inner.timer("phase"):
            pass
    assert drain_spans() == []


def test_counters_and_phases_accumulate():
    with capture_trace() as capture:
        with span("work") as sp:
            sp.add("items", 2)
            sp.add("items", 3)
            with sp.timer("phase"):
                pass
            with sp.timer("phase"):
                pass
    root = capture.to_dict()["spans"][0]
    assert root["counters"] == {"items": 5}
    assert set(root["phases"]) == {"phase"}
    assert root["phases"]["phase"] >= 0.0


def test_exceptions_are_recorded_and_propagate():
    with capture_trace() as capture:
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
    root = capture.to_dict()["spans"][0]
    assert root["attrs"]["error"] == "ValueError"


def test_capture_restores_previous_enabled_state():
    enable_tracing()
    with capture_trace():
        assert tracing_enabled()
    assert tracing_enabled(), "capture must restore the prior enabled state"
    disable_tracing()
    with capture_trace():
        assert tracing_enabled()
    assert not tracing_enabled()


def test_capture_discards_spans_from_before_the_window():
    enable_tracing()
    with span("before"):
        pass
    with capture_trace() as capture:
        with span("inside"):
            pass
    assert [sp.name for sp in capture.spans] == ["inside"]


def test_drain_spans_returns_serialized_roots_once():
    enable_tracing()
    with span("root", tag="x") as sp:
        sp.add("hits")
        with span("child"):
            pass
    drained = drain_spans()
    assert [root["name"] for root in drained] == ["root"]
    assert drained[0]["counters"] == {"hits": 1}
    assert [child["name"] for child in drained[0]["children"]] == ["child"]
    assert drain_spans() == [], "drain must empty the tracer"


def test_threads_get_independent_span_stacks():
    """A span opened on another thread must not nest under this thread's."""
    documents = {}

    def worker():
        with span("worker.root") as sp:
            sp.add("ticks")
        documents["worker"] = True

    with capture_trace() as capture:
        with span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
    names = sorted(root.name for root in capture.spans)
    assert names == ["main.root", "worker.root"]
    for root in capture.spans:
        serialized = span_to_dict(root)
        assert all(child["name"] != "worker.root" for child in serialized["children"])


def test_current_span_tracks_the_open_stack():
    with capture_trace():
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NULL_SPAN
