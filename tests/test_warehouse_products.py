"""Tests for the product catalog and location matrix."""

import numpy as np
import pytest

from repro.warehouse import (
    FloorplanGraph,
    GridMap,
    LocationMatrix,
    ProductCatalog,
    ProductError,
    stock_summary,
)

FIG1_ASCII = """
.....
.S.S.
.....
@T@T@
""".strip("\n")


@pytest.fixture()
def floorplan():
    return FloorplanGraph.from_grid(GridMap.from_ascii(FIG1_ASCII))


@pytest.fixture()
def catalog():
    return ProductCatalog.numbered(2)


class TestCatalog:
    def test_numbered(self, catalog):
        assert catalog.num_products == 2
        assert list(catalog.product_ids) == [1, 2]
        assert catalog.name_of(1) == "product-1"

    def test_name_round_trip(self, catalog):
        assert catalog.id_of(catalog.name_of(2)) == 2

    def test_empty_handed_name(self, catalog):
        assert "empty" in catalog.name_of(0)

    def test_unknown_ids_rejected(self, catalog):
        with pytest.raises(ProductError):
            catalog.name_of(3)
        with pytest.raises(ProductError):
            catalog.id_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ProductError):
            ProductCatalog(("a", "a"))

    def test_zero_count_rejected(self):
        with pytest.raises(ProductError):
            ProductCatalog.numbered(0)


class TestLocationMatrix:
    def test_place_and_query(self, catalog, floorplan):
        matrix = LocationMatrix(catalog, floorplan)
        west = floorplan.vertex_at((0, 2))
        east = floorplan.vertex_at((2, 2))
        matrix.place(1, west, 10)
        matrix.place(2, east, 5)
        assert matrix.units_at(1, west) == 10
        assert matrix.products_at(west) == [1]
        assert matrix.total_units(1) == 10
        assert matrix.total_units_all() == 15
        assert set(matrix.stocked_vertices()) == {west, east}
        assert matrix.vertices_with(2) == [east]

    def test_place_rejects_non_shelf_access(self, catalog, floorplan):
        matrix = LocationMatrix(catalog, floorplan)
        station = floorplan.vertex_at((1, 0))
        with pytest.raises(ProductError):
            matrix.place(1, station, 1)

    def test_place_rejects_bad_product_and_units(self, catalog, floorplan):
        matrix = LocationMatrix(catalog, floorplan)
        access = floorplan.vertex_at((0, 2))
        with pytest.raises(ProductError):
            matrix.place(9, access, 1)
        with pytest.raises(ProductError):
            matrix.place(1, access, -1)

    def test_remove_tracks_inventory(self, catalog, floorplan):
        matrix = LocationMatrix(catalog, floorplan)
        access = floorplan.vertex_at((0, 2))
        matrix.place(1, access, 2)
        matrix.remove(1, access)
        assert matrix.units_at(1, access) == 1
        with pytest.raises(ProductError):
            matrix.remove(1, access, 5)

    def test_from_placements(self, catalog, floorplan):
        access = floorplan.vertex_at((2, 2))
        matrix = LocationMatrix.from_placements(catalog, floorplan, [(1, access, 3), (2, access, 4)])
        assert matrix.products_at(access) == [1, 2]

    def test_copy_is_independent(self, catalog, floorplan):
        access = floorplan.vertex_at((2, 2))
        matrix = LocationMatrix.from_placements(catalog, floorplan, [(1, access, 3)])
        clone = matrix.copy()
        clone.remove(1, access, 3)
        assert matrix.units_at(1, access) == 3
        assert clone.units_at(1, access) == 0

    def test_spread_evenly_totals(self, catalog, floorplan):
        matrix = LocationMatrix.spread_evenly(catalog, floorplan, units_per_product=12,
                                              rng=np.random.default_rng(7))
        for product in catalog.product_ids:
            assert matrix.total_units(product) == 12
        summary = stock_summary(matrix)
        assert summary["total_units"] == 24
        assert summary["products"] == 2

    def test_as_array_shape(self, catalog, floorplan):
        matrix = LocationMatrix(catalog, floorplan)
        assert matrix.as_array().shape == (3, floorplan.num_vertices)

    def test_shape_mismatch_rejected(self, catalog, floorplan):
        with pytest.raises(ProductError):
            LocationMatrix(catalog, floorplan, np.zeros((1, 1)))
