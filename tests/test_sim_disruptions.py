"""Unit tests of the disruption & resilience layer (repro.sim.disruptions).

Scripted (rng-free) disruption schedules pin the exact semantics of every
injection family and every recovery policy on hand-authored plans, where the
expected outcome is computable by inspection: a breakdown parks the agent and
a repair resumes it; a reassignment moves a delivery leg to an idle helper
without duplicating a unit; a blocked edge first stalls and then detours the
walker; a station outage backs its queue up and a failover re-weights the
observed flows onto the surviving station.
"""

import numpy as np
import pytest

from repro.experiments import ScenarioSpec
from repro.sim import (
    DISRUPTION_KINDS,
    DisruptionConfig,
    DisruptionError,
    ResilienceReport,
    ScriptedDisruption,
    ServiceTimeModel,
    SimulationConfig,
    SimulationEngine,
    StationProcess,
    TraceRecorder,
    canonical_edges,
    nominal_deliveries_by,
    parse_disruptions,
    severity_ladder,
    simulate_plan,
)
from repro.sim.disruptions import _bfs_avoiding
from repro.warehouse import PlanValidator
from repro.warehouse.plan import Plan


@pytest.fixture(scope="module")
def tiny():
    spec = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
    )
    return spec.build()


class TestDisruptionConfig:
    def test_defaults_are_inactive(self):
        config = DisruptionConfig()
        assert not config.is_active
        assert config.describe() == "none"

    def test_any_rate_or_schedule_activates(self):
        assert DisruptionConfig(breakdown_rate=0.1).is_active
        assert DisruptionConfig(
            schedule=(ScriptedDisruption(tick=3, kind="surge", magnitude=2),)
        ).is_active

    def test_invalid_values_rejected(self):
        with pytest.raises(DisruptionError):
            DisruptionConfig(breakdown_rate=1.5)
        with pytest.raises(DisruptionError):
            DisruptionConfig(repair_time=0)
        with pytest.raises(DisruptionError):
            DisruptionConfig(slowdown_factor=1)
        with pytest.raises(DisruptionError):
            DisruptionConfig(surge_orders=0)
        with pytest.raises(DisruptionError):
            DisruptionConfig(reroute_patience=0)
        with pytest.raises(DisruptionError):
            ScriptedDisruption(tick=0, kind="breakdown")
        with pytest.raises(DisruptionError):
            ScriptedDisruption(tick=1, kind="earthquake")

    def test_describe_names_active_families(self):
        text = DisruptionConfig(
            breakdown_rate=0.01, surge_rate=0.2, recover=False
        ).describe()
        assert "breakdown:0.01" in text and "surge:0.2" in text
        assert "norecover" in text


class TestParseDisruptions:
    def test_none_means_no_layer(self):
        assert parse_disruptions("none") is None
        assert parse_disruptions("") is None
        assert parse_disruptions("  ") is None

    def test_full_grammar(self):
        config = parse_disruptions(
            "breakdown:0.02:25,slowdown:0.01,outage:0.005:40,"
            "block:0.03:15,surge:0.1:7,deadline:60,norecover"
        )
        assert config.breakdown_rate == 0.02 and config.repair_time == 25
        assert config.slowdown_rate == 0.01 and config.slowdown_duration == 30
        assert config.outage_rate == 0.005 and config.outage_duration == 40
        assert config.block_rate == 0.03 and config.block_duration == 15
        assert config.surge_rate == 0.1 and config.surge_orders == 7
        assert config.order_deadline == 60
        assert config.recover is False

    def test_bad_entries_rejected(self):
        for bad in ("meteor:0.1", "breakdown", "breakdown:x", "deadline:soon", "norecover:1"):
            with pytest.raises(DisruptionError):
                parse_disruptions(bad)

    def test_modifier_only_specs_rejected(self):
        """A spec of only modifiers would silently configure nothing."""
        for inert in ("deadline:60", "norecover", "deadline:10,norecover"):
            with pytest.raises(DisruptionError):
                parse_disruptions(inert)


class TestHelpers:
    def test_canonical_edges_sorted_and_complete(self, tiny):
        floorplan = tiny[0].warehouse.floorplan
        edges = canonical_edges(floorplan)
        assert len(edges) == floorplan.num_edges
        assert all(u < v for u, v in edges)
        assert edges == sorted(edges)

    def test_severity_ladder_scales_active_rates(self):
        base = DisruptionConfig(breakdown_rate=0.01, block_rate=0.02)
        ladder = severity_ladder(base, (0.0, 0.1, 0.5))
        assert [c.breakdown_rate for c in ladder] == [0.0, 0.1, 0.5]
        assert [c.block_rate for c in ladder] == [0.0, 0.1, 0.5]
        # An all-zero base defaults to the breakdown axis.
        fallback = severity_ladder(DisruptionConfig(), (0.25,))
        assert fallback[0].breakdown_rate == 0.25

    def test_resilience_report_round_trip_and_retention(self):
        report = ResilienceReport(
            breakdowns=2, repairs=2, nominal_units=10, units_served=7,
            recovery_latency_total=12,
        )
        assert report.throughput_retention == pytest.approx(0.7)
        assert report.mean_recovery_latency == pytest.approx(6.0)
        assert ResilienceReport.from_dict(report.to_dict()) == report
        assert ResilienceReport().throughput_retention == 1.0


class TestStationOutage:
    def test_offline_station_queues_then_drains_on_restore(self):
        engine = SimulationEngine(seed=0)
        recorder = TraceRecorder(num_vertices=4, num_agents=1, cycle_time=5, ticks=21)
        station = StationProcess(
            engine, 0, recorder, ServiceTimeModel.deterministic(0), servers=1
        )
        station.go_offline()
        engine.schedule_at(1, lambda: station.handoff(1))
        engine.schedule_at(2, lambda: station.handoff(1))
        engine.run(until=3)
        assert station.queue_length == 2 and station.units_served == 0
        engine.schedule_at(4, station.go_online)
        engine.run(until=5)
        assert station.units_served == 2 and station.queue_length == 0


def _hand_plan(warehouse, rows):
    """Rows of (positions, carrying) lists -> a Plan with cycle_time metadata."""
    positions = np.array([r[0] for r in rows], dtype=np.int64)
    carrying = np.array([r[1] for r in rows], dtype=np.int64)
    return Plan(
        positions=positions,
        carrying=carrying,
        warehouse=warehouse,
        metadata={"cycle_time": 5.0},
    )


def _delivery_rows(floorplan, warehouse, start, shelf_v, product, station_v, horizon):
    """One agent's walk start -> shelf (pickup) -> station (drop-off), padded."""
    to_shelf = floorplan.shortest_path(start, shelf_v)
    to_station = floorplan.shortest_path(shelf_v, station_v)
    positions = list(to_shelf)
    positions.append(shelf_v)  # stay one tick while the pickup resolves
    positions.extend(to_station[1:])
    positions.append(station_v)  # stay one tick while the drop-off resolves
    carrying = [0] * len(to_shelf) + [product] * (len(to_station)) + [0]
    positions += [station_v] * (horizon - len(positions))
    carrying += [0] * (horizon - len(carrying))
    return positions[:horizon], carrying[:horizon]


class TestBreakdownAndRepair:
    def test_breakdown_pauses_and_repair_resumes(self, tiny):
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        floorplan = warehouse.floorplan
        rows = [_delivery_rows(floorplan, warehouse, 8, 7, 2, 1, 24)]
        plan = _hand_plan(warehouse, rows)
        assert PlanValidator(warehouse).is_feasible(plan)
        down_for = 5
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                schedule=(
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=down_for),
                )
            ),
        )
        report = simulate_plan(plan, system, config=config)
        resilience = report.resilience
        assert resilience.breakdowns == 1 and resilience.repairs == 1
        assert resilience.agent_downtime == down_for
        assert resilience.recovery_latency_total == down_for
        # The delivery still happens, five ticks late, and the realized motion
        # is the plan's shifted by the downtime.
        assert report.units_served == 1
        realized = report.realized_plan
        assert PlanValidator(warehouse).is_feasible(realized)
        assert list(realized.positions[0][1 + down_for :]) == list(
            plan.positions[0][1 : plan.horizon - down_for]
        )

    def test_downed_agent_blocks_followers(self, tiny):
        """A corridor follower queues behind a broken agent (congestion)."""
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 12
        # Agent 0 walks the serpentine 6->7->8; agent 1 trails one cell behind.
        leader = ([6, 7, 8, 9] + [9] * (horizon - 4), [0] * horizon)
        follower = ([0, 6, 7, 8] + [8] * (horizon - 4), [0] * horizon)
        plan = _hand_plan(warehouse, [leader, follower])
        assert PlanValidator(warehouse).is_feasible(plan)
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                recover=False,
                schedule=(
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=100),
                ),
            ),
        )
        report = simulate_plan(plan, system, config=config)
        realized = report.realized_plan
        # The leader never left vertex 6; the follower stalls at vertex 0
        # forever (vertex 6 stays occupied) instead of colliding.
        assert set(int(v) for v in realized.positions[0]) == {6}
        assert int(realized.positions[1, -1]) == 0
        assert report.resilience.conflict_waits > 0
        assert PlanValidator(warehouse).is_feasible(realized)


class TestReassignment:
    def test_idle_helper_takes_over_the_leg(self, tiny):
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 20
        donor = _delivery_rows(warehouse.floorplan, warehouse, 8, 7, 2, 1, horizon)
        helper = ([6] * horizon, [0] * horizon)  # parked, empty, no duties
        plan = _hand_plan(warehouse, [donor, helper])
        assert PlanValidator(warehouse).is_feasible(plan)
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                schedule=(
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=100),
                )
            ),
        )
        report = simulate_plan(plan, system, config=config)
        resilience = report.resilience
        assert resilience.reassignments == 1
        assert report.units_served == 1  # the helper delivered the donor's unit
        realized = report.realized_plan
        assert PlanValidator(warehouse).is_feasible(realized)
        # The donor stayed parked where it broke; the helper visited the shelf
        # and the station.
        assert set(int(v) for v in realized.positions[0]) == {8}
        assert 7 in realized.positions[1] and 1 in realized.positions[1]

    def test_repaired_donor_walks_its_transferred_leg_empty(self, tiny):
        """Regression: after a leg is reassigned, the donor's actual carry
        (empty) diverges from the plan's loaded profile between the
        suppressed pickup and drop-off; the in-between steps must not
        spuriously re-pick the product (hypothesis-found)."""
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 20
        donor = _delivery_rows(warehouse.floorplan, warehouse, 8, 7, 2, 1, horizon)
        helper = ([6] * horizon, [0] * horizon)
        plan = _hand_plan(warehouse, [donor, helper])
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                schedule=(
                    # Short outage: the donor is repaired at tick 5 and then
                    # walks the remainder of its (transferred) route.
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=4),
                )
            ),
        )
        report = simulate_plan(plan, system, config=config)
        resilience = report.resilience
        assert resilience.reassignments == 1 and resilience.repairs == 1
        # Exactly one unit is picked and served in total — by the helper; the
        # repaired donor crosses its old pickup vertex empty-handed.
        assert report.trace.units_picked == 1
        assert report.units_served == 1
        realized = report.realized_plan
        assert PlanValidator(warehouse).is_feasible(realized)
        assert all(int(c) == 0 for c in realized.carrying[0])

    def test_legs_beyond_a_truncated_window_are_not_transferred(self, tiny):
        """A truncated run must not recover deliveries its nominal baseline
        never counts — otherwise retention would exceed 1."""
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 20
        donor = _delivery_rows(warehouse.floorplan, warehouse, 8, 7, 2, 1, horizon)
        helper = ([6] * horizon, [0] * horizon)
        plan = _hand_plan(warehouse, [donor, helper])
        # The donor's delivery lands at tick 4; a 4-tick window excludes it.
        config = SimulationConfig(
            seed=0,
            max_ticks=4,
            disruptions=DisruptionConfig(
                schedule=(
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=100),
                )
            ),
        )
        report = simulate_plan(plan, system, config=config)
        assert report.resilience.reassignments == 0
        assert report.units_served == 0
        assert report.resilience.nominal_units == 0
        assert report.throughput_retention <= 1.0

    def test_without_recovery_the_unit_is_lost(self, tiny):
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 20
        donor = _delivery_rows(warehouse.floorplan, warehouse, 8, 7, 2, 1, horizon)
        helper = ([6] * horizon, [0] * horizon)
        plan = _hand_plan(warehouse, [donor, helper])
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                recover=False,
                schedule=(
                    ScriptedDisruption(tick=1, kind="breakdown", target=0, duration=100),
                ),
            ),
        )
        report = simulate_plan(plan, system, config=config)
        assert report.resilience.reassignments == 0
        assert report.units_served == 0
        assert report.resilience.throughput_retention == 0.0


class TestRerouting:
    def test_blocked_edge_stalls_then_detours(self, tiny):
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        floorplan = warehouse.floorplan
        edges = canonical_edges(floorplan)
        edge_index, (u, v) = next(
            (i, e)
            for i, e in enumerate(edges)
            if _bfs_avoiding(floorplan, e[0], e[1], {e}) is not None
        )
        horizon = 14
        rows = [([u] + [v] * (horizon - 1), [0] * horizon)]
        plan = _hand_plan(warehouse, rows)
        patience = 2
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                reroute_patience=patience,
                schedule=(
                    ScriptedDisruption(tick=1, kind="block", target=edge_index, duration=100),
                ),
            ),
        )
        report = simulate_plan(plan, system, config=config)
        resilience = report.resilience
        assert resilience.blocks == 1
        assert resilience.reroutes == 1
        assert resilience.blocked_waits >= patience
        realized = report.realized_plan
        assert int(realized.positions[0, -1]) == v  # still reached the goal
        assert PlanValidator(warehouse).is_feasible(realized)
        # The detour is strictly longer than the blocked single edge.
        moves = int(np.sum(realized.positions[0, 1:] != realized.positions[0, :-1]))
        assert moves > 1

    def test_without_recovery_the_walker_waits_out_the_block(self, tiny):
        designed, _ = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        floorplan = warehouse.floorplan
        edges = canonical_edges(floorplan)
        edge_index, (u, v) = next(
            (i, e)
            for i, e in enumerate(edges)
            if _bfs_avoiding(floorplan, e[0], e[1], {e}) is not None
        )
        horizon = 14
        block_for = 4
        rows = [([u] + [v] * (horizon - 1), [0] * horizon)]
        plan = _hand_plan(warehouse, rows)
        config = SimulationConfig(
            seed=0,
            disruptions=DisruptionConfig(
                recover=False,
                schedule=(
                    ScriptedDisruption(
                        tick=1, kind="block", target=edge_index, duration=block_for
                    ),
                ),
            ),
        )
        report = simulate_plan(plan, system, config=config)
        assert report.resilience.reroutes == 0
        assert report.resilience.blocked_waits == block_for
        realized = report.realized_plan
        assert int(realized.positions[0, -1]) == v
        # Exactly one move, taken right after the block expired.
        moves = int(np.sum(realized.positions[0, 1:] != realized.positions[0, :-1]))
        assert moves == 1
        assert int(realized.positions[0, block_for]) == u
        assert int(realized.positions[0, block_for + 1]) == v


class TestFailover:
    @pytest.fixture(scope="class")
    def two_station(self):
        spec = ScenarioSpec(
            kind="fulfillment",
            num_slices=2,
            shelf_columns=3,
            shelf_bands=1,
            num_stations=2,
            num_products=2,
            units=4,
            horizon=150,
        )
        return spec.build()

    def test_handoff_diverts_to_the_online_station(self, two_station):
        designed, _ = two_station
        warehouse, system = designed.warehouse, designed.traffic_system
        floorplan = warehouse.floorplan
        queues = [c.index for c in system.station_queues()]
        assert len(queues) >= 2
        target_component = queues[0]
        station_v = system.station_vertices_in(target_component)[0]
        shelf_v, product = next(
            (v, sorted(warehouse.products_at(v))[0])
            for v in range(floorplan.num_vertices)
            if warehouse.products_at(v)
        )
        horizon = len(floorplan.shortest_path(shelf_v, station_v)) + 8
        rows = [
            _delivery_rows(floorplan, warehouse, shelf_v, shelf_v, product, station_v, horizon)
        ]
        plan = _hand_plan(warehouse, rows)
        assert PlanValidator(warehouse).is_feasible(plan)
        schedule = (
            ScriptedDisruption(tick=1, kind="outage", target=target_component, duration=120),
        )
        report = simulate_plan(
            plan,
            system,
            config=SimulationConfig(
                seed=0, disruptions=DisruptionConfig(schedule=schedule)
            ),
        )
        resilience = report.resilience
        assert resilience.outages == 1
        assert resilience.failovers == 1
        assert report.units_served == 1
        # The observed hand-off flow moved to the surviving station's queue.
        assert all(component != target_component for component, _ in report.trace.handoffs)
        assert resilience.station_downtime > 0

    def test_without_failover_the_unit_waits_out_the_outage(self, two_station):
        designed, _ = two_station
        warehouse, system = designed.warehouse, designed.traffic_system
        floorplan = warehouse.floorplan
        queues = [c.index for c in system.station_queues()]
        target_component = queues[0]
        station_v = system.station_vertices_in(target_component)[0]
        shelf_v, product = next(
            (v, sorted(warehouse.products_at(v))[0])
            for v in range(floorplan.num_vertices)
            if warehouse.products_at(v)
        )
        horizon = len(floorplan.shortest_path(shelf_v, station_v)) + 8
        rows = [
            _delivery_rows(floorplan, warehouse, shelf_v, shelf_v, product, station_v, horizon)
        ]
        plan = _hand_plan(warehouse, rows)
        outage_ticks = horizon + 50  # outlives the run
        schedule = (
            ScriptedDisruption(
                tick=1, kind="outage", target=target_component, duration=outage_ticks
            ),
        )
        report = simulate_plan(
            plan,
            system,
            config=SimulationConfig(
                seed=0,
                disruptions=DisruptionConfig(recover=False, schedule=schedule),
            ),
        )
        assert report.resilience.failovers == 0
        assert report.units_served == 0  # queued at the dark station, unserved
        assert report.trace.station_backlog == 1


class TestSurges:
    def test_scripted_surge_adds_orders(self, tiny):
        designed, workload = tiny
        warehouse, system = designed.warehouse, designed.traffic_system
        horizon = 20
        rows = [([6] * horizon, [0] * horizon)]
        plan = _hand_plan(warehouse, rows)
        schedule = (ScriptedDisruption(tick=5, kind="surge", magnitude=3),)
        report = simulate_plan(
            plan,
            system,
            workload=workload,
            config=SimulationConfig(
                seed=0, disruptions=DisruptionConfig(schedule=schedule)
            ),
        )
        resilience = report.resilience
        assert resilience.surges == 1 and resilience.surged_orders == 3
        assert report.trace.orders_created == workload.total_units + 3
        # Nobody delivers anything in this plan: every order is dropped.
        assert resilience.dropped_orders == report.trace.orders_created
        assert report.trace.conservation_report() == []


class TestScenarioIntegration:
    def test_scenario_spec_disruption_fields_and_id_stability(self):
        nominal = ScenarioSpec(name="x")
        disrupted = ScenarioSpec(name="x", disruptions="breakdown:0.02:10")
        # The default keeps the pre-disruption hash payload (id stability
        # across schema growth), a non-default perturbs it.
        assert nominal.scenario_id == ScenarioSpec().scenario_id
        assert disrupted.scenario_id != nominal.scenario_id
        assert disrupted.disruption_config().breakdown_rate == 0.02
        assert nominal.disruption_config() is None
        assert ScenarioSpec(disruptions="breakdown:0.02:10").label.endswith("-disrupted")

    def test_invalid_disruption_spec_rejected_by_validate(self):
        from repro.experiments import ScenarioError

        spec = ScenarioSpec(disruptions="breakdown:not-a-rate")
        with pytest.raises(ScenarioError):
            spec.validate()

    def test_resilience_preset_suite_covers_all_families(self):
        from repro.experiments import preset_scenarios

        specs = preset_scenarios("resilience")
        assert any(spec.disruptions == "none" for spec in specs)
        joined = ",".join(spec.disruptions for spec in specs)
        for kind in DISRUPTION_KINDS:
            assert kind in joined
        assert any("norecover" in spec.disruptions for spec in specs)
        assert all(spec.is_valid() for spec in specs)
        assert len({spec.scenario_id for spec in specs}) == len(specs)


class TestNominalBaseline:
    def test_nominal_deliveries_counts_in_window(self, tiny):
        designed, _ = tiny
        warehouse = designed.warehouse
        horizon = 20
        rows = [_delivery_rows(warehouse.floorplan, warehouse, 8, 7, 2, 1, horizon)]
        plan = _hand_plan(warehouse, rows)
        assert nominal_deliveries_by(plan, plan.horizon) == 1
        assert nominal_deliveries_by(plan, 2) == 0
