"""Tests for repro.optimize: spaces, objectives, search, campaigns, resume."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.analysis.optimize import (
    acceptance_stats,
    best_vs_baseline_table,
    convergence_table,
    optimize_report,
    render_convergence,
)
from repro.experiments import ScenarioSpec
from repro.experiments.store import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.optimize import (
    OPTIMIZE_PRESETS,
    WORST_SCORE,
    CachedEvaluator,
    CampaignLog,
    DesignSpace,
    Evaluation,
    HillClimbing,
    IntKnob,
    OptimizeError,
    PermutationKnob,
    ServiceEvaluator,
    SimulatedAnnealing,
    knob_from_dict,
    make_objective,
    make_optimizer,
    preset_space,
    run_campaign,
    slotting_space,
)

BASE = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=4,
    shelf_bands=3,
    num_stations=1,
    num_products=6,
    units=12,
    horizon=600,
)


def _ok_record(spec: ScenarioSpec, throughput: float, violations: float = 0.0) -> RunRecord:
    return RunRecord(
        spec=spec,
        status=STATUS_OK,
        sim={
            "realized_throughput": throughput,
            "units_served": throughput * spec.horizon,
            "contract_violations": violations,
        },
    )


class FakeEvaluator:
    """Deterministic, pipeline-free evaluator over a score function.

    ``fail_after`` raises once that many evaluations have run — the
    interrupted-campaign shape the resume tests replay out of.
    """

    def __init__(self, score_fn, fail_after=None, status_fn=None):
        self.score_fn = score_fn
        self.status_fn = status_fn or (lambda spec: STATUS_OK)
        self.fail_after = fail_after
        self.calls = 0
        self._seen = set()
        self._hits = 0

    def evaluate(self, spec: ScenarioSpec) -> Evaluation:
        if self.fail_after is not None and self.calls >= self.fail_after:
            raise RuntimeError("interrupted (test-injected)")
        self.calls += 1
        cache = "hit" if spec.scenario_id in self._seen else "miss"
        if cache == "hit":
            self._hits += 1
        self._seen.add(spec.scenario_id)
        status = self.status_fn(spec)
        if status == STATUS_OK:
            record = _ok_record(spec, self.score_fn(spec))
        else:
            record = RunRecord(spec=spec, status=status, message="test failure")
        return Evaluation(spec=spec, record=record, cache=cache)

    def evaluate_many(self, specs):
        return [self.evaluate(spec) for spec in specs]

    def stats(self):
        return {
            "evaluations": self.calls,
            "hits": self._hits,
            "misses": self.calls - self._hits,
            "hit_rate": self._hits / self.calls if self.calls else 0.0,
        }

    def close(self):
        pass


def _identity_distance_score(spec: ScenarioSpec) -> float:
    """A smooth toy landscape: identity slotting is the unique optimum."""
    order = spec.product_order or tuple(range(1, spec.num_products + 1))
    return -float(sum(abs(value - index - 1) for index, value in enumerate(order)))


# ---------------------------------------------------------------------------
# knobs & spaces
# ---------------------------------------------------------------------------

class TestKnobs:
    def test_int_knob_steps_within_bounds(self):
        knob = IntKnob("shelf_columns", 3, 6)
        rng = random.Random(0)
        values = set()
        for _ in range(50):
            candidate = knob.perturb(BASE, rng)
            values.add(candidate.shelf_columns)
        assert values == {3, 5}  # one step either side of 4

    def test_int_knob_pinned_returns_none(self):
        knob = IntKnob("shelf_columns", 4, 4)
        assert knob.perturb(BASE, random.Random(0)) is None

    def test_int_knob_respects_step(self):
        knob = IntKnob("shelf_bands", 1, 5, step=2)
        rng = random.Random(0)
        assert {knob.perturb(BASE, rng).shelf_bands for _ in range(30)} == {1, 5}

    def test_int_knob_validates(self):
        with pytest.raises(OptimizeError, match="unknown scenario field"):
            IntKnob("no_such_field", 0, 1)
        with pytest.raises(OptimizeError, match="exceeds maximum"):
            IntKnob("units", 5, 4)
        with pytest.raises(OptimizeError, match="step"):
            IntKnob("units", 1, 5, step=0)

    def test_permutation_knob_swaps_two_positions(self):
        spec = BASE.with_updates(product_order=(1, 2, 3, 4, 5, 6))
        candidate = PermutationKnob().perturb(spec, random.Random(0))
        assert sorted(candidate.product_order) == [1, 2, 3, 4, 5, 6]
        moved = [
            index
            for index in range(6)
            if candidate.product_order[index] != spec.product_order[index]
        ]
        assert len(moved) == 2

    def test_permutation_knob_materializes_identity_from_empty(self):
        candidate = PermutationKnob().perturb(BASE, random.Random(0))
        assert sorted(candidate.product_order) == [1, 2, 3, 4, 5, 6]
        assert candidate.product_order != ()

    def test_knob_from_dict_round_trip(self):
        for knob in (IntKnob("shelf_bands", 1, 5, step=2), PermutationKnob()):
            assert knob_from_dict(knob.describe()) == knob
        with pytest.raises(OptimizeError, match="unknown knob kind"):
            knob_from_dict({"kind": "bogus"})


class TestDesignSpace:
    def test_neighbor_is_valid_with_fresh_id(self):
        space = slotting_space()
        rng = random.Random(0)
        spec = space.baseline()
        for _ in range(10):
            neighbor = space.neighbor(spec, rng)
            assert neighbor.scenario_id != spec.scenario_id
            assert neighbor.is_valid()
            spec = neighbor

    def test_neighbors_are_mutually_distinct(self):
        space = preset_space("joint-small")
        drawn = space.neighbors(space.baseline(), random.Random(3), 6)
        assert len({spec.scenario_id for spec in drawn}) == 6

    def test_neighbor_sequence_is_seed_deterministic(self):
        space = preset_space("joint-small")
        ids_a = [s.scenario_id for s in space.neighbors(space.baseline(), random.Random(5), 8)]
        ids_b = [s.scenario_id for s in space.neighbors(space.baseline(), random.Random(5), 8)]
        assert ids_a == ids_b

    def test_space_validates_knobs(self):
        with pytest.raises(OptimizeError, match="at least one knob"):
            DesignSpace(base=BASE, knobs=())
        with pytest.raises(OptimizeError, match="duplicate knob"):
            DesignSpace(
                base=BASE,
                knobs=(IntKnob("units", 4, 20), IntKnob("units", 4, 30)),
            )

    def test_exhausted_neighborhood_raises(self):
        space = DesignSpace(base=BASE, knobs=(IntKnob("shelf_columns", 4, 4),))
        with pytest.raises(OptimizeError, match="valid distinct neighbor"):
            space.neighbor(BASE, random.Random(0))

    def test_presets_have_valid_baselines(self):
        for name in OPTIMIZE_PRESETS:
            space = preset_space(name, seed=0)
            space.baseline().validate()
            assert space.describe()["knobs"]
        with pytest.raises(OptimizeError, match="unknown optimize preset"):
            preset_space("bogus")


# ---------------------------------------------------------------------------
# objectives
# ---------------------------------------------------------------------------

class TestObjective:
    def test_failed_candidates_score_finite_worst_case(self):
        objective = make_objective("throughput")
        assert objective.score(None) == WORST_SCORE
        for status in (STATUS_INFEASIBLE, STATUS_TIMEOUT, STATUS_ERROR):
            record = RunRecord(spec=BASE, status=status, message="boom")
            score = objective.score(record)
            assert score == WORST_SCORE
            assert math.isfinite(score)

    def test_violations_are_penalized(self):
        objective = make_objective("throughput", violation_weight=0.5)
        clean = objective.score(_ok_record(BASE, 2.0))
        dirty = objective.score(_ok_record(BASE, 2.0, violations=3.0))
        assert clean == pytest.approx(2.0)
        assert dirty == pytest.approx(2.0 - 1.5)

    def test_makespan_is_negated_time(self):
        objective = make_objective("makespan", violation_weight=0.0)
        record = _ok_record(BASE, 2.0)  # 1200 served at 2/step -> 600 steps
        assert objective.score(record) == pytest.approx(-600.0)

    def test_agents_objective_prefers_smaller_fleets(self):
        objective = make_objective("agents", violation_weight=0.0)
        small = RunRecord(spec=BASE, status=STATUS_OK, num_agents=5)
        large = RunRecord(spec=BASE, status=STATUS_OK, num_agents=9)
        assert objective.score(small) > objective.score(large)

    def test_make_objective_validates(self):
        with pytest.raises(OptimizeError, match="unknown objective"):
            make_objective("bogus")
        with pytest.raises(OptimizeError, match="non-negative"):
            make_objective("throughput", violation_weight=-1.0)


# ---------------------------------------------------------------------------
# search strategies
# ---------------------------------------------------------------------------

class TestSearch:
    def test_hill_accepts_only_strict_improvement(self):
        hill = HillClimbing(batch_size=3)
        # rng=None proves the decision consumes no randomness.
        assert hill.accept(1.0, 2.0, step=0, rng=None)
        assert not hill.accept(1.0, 1.0, step=0, rng=None)
        assert not hill.accept(1.0, 0.5, step=0, rng=None)
        assert hill.proposals_per_step() == 3

    def test_anneal_always_accepts_improvement_without_rng(self):
        anneal = SimulatedAnnealing()
        assert anneal.accept(1.0, 1.1, step=0, rng=None)

    def test_anneal_metropolis_uses_temperature(self):
        anneal = SimulatedAnnealing(initial_temperature=1.0, cooling=1.0)

        class FixedRng:
            def __init__(self, value):
                self.value = value

            def random(self):
                return self.value

        probability = math.exp(-0.5)  # delta -0.5 at temperature 1.0
        assert anneal.accept(1.0, 0.5, step=0, rng=FixedRng(probability - 0.01))
        assert not anneal.accept(1.0, 0.5, step=0, rng=FixedRng(probability + 0.01))

    def test_anneal_worst_score_delta_underflows_to_reject(self):
        anneal = SimulatedAnnealing(initial_temperature=0.02)
        assert not anneal.accept(0.0, WORST_SCORE, step=0, rng=random.Random(0))

    def test_cooling_schedule_is_geometric(self):
        anneal = SimulatedAnnealing(initial_temperature=0.5, cooling=0.5)
        assert anneal.temperature(0) == pytest.approx(0.5)
        assert anneal.temperature(3) == pytest.approx(0.0625)

    def test_make_optimizer_validates(self):
        with pytest.raises(OptimizeError, match="unknown optimizer"):
            make_optimizer("bogus")
        with pytest.raises(OptimizeError, match="batch_size"):
            make_optimizer("hill", batch_size=0)
        with pytest.raises(OptimizeError, match="cooling"):
            make_optimizer("anneal", cooling=1.5)


# ---------------------------------------------------------------------------
# campaigns (fake evaluator: fast, fully controlled)
# ---------------------------------------------------------------------------

def _toy_campaign(budget=20, seed=11, log_path=None, resume=False, evaluator=None):
    space = slotting_space()
    return run_campaign(
        space,
        SimulatedAnnealing(),
        make_objective("throughput"),
        evaluator if evaluator is not None else FakeEvaluator(_identity_distance_score),
        budget=budget,
        seed=seed,
        log_path=log_path,
        resume=resume,
    )


class TestCampaign:
    def test_budget_is_exact_and_baseline_counts(self):
        result = _toy_campaign(budget=9)
        assert result.evaluations == 9
        assert sum(len(step.proposals) for step in result.steps) == 8

    def test_budget_one_evaluates_only_the_baseline(self):
        result = _toy_campaign(budget=1)
        assert result.evaluations == 1
        assert result.steps == []
        assert result.best_spec.scenario_id == result.baseline_spec.scenario_id

    def test_hill_batches_trim_to_budget(self):
        space = slotting_space()
        result = run_campaign(
            space,
            HillClimbing(batch_size=4),
            make_objective("throughput"),
            FakeEvaluator(_identity_distance_score),
            budget=10,
            seed=2,
        )
        assert [len(step.proposals) for step in result.steps] == [4, 4, 1]
        assert result.evaluations == 10

    def test_search_improves_on_toy_landscape(self):
        result = _toy_campaign(budget=30)
        assert result.best_score > result.baseline_score
        assert result.improvement > 0

    def test_same_seed_is_byte_identical(self):
        first = _toy_campaign()
        second = _toy_campaign()
        assert first.fingerprint() == second.fingerprint()
        serialize = lambda result: json.dumps(  # noqa: E731
            [step.to_dict() for step in result.steps], sort_keys=True
        )
        assert serialize(first) == serialize(second)
        assert first.best_spec.scenario_id == second.best_spec.scenario_id

    def test_different_seed_diverges(self):
        assert _toy_campaign(seed=11).fingerprint() != _toy_campaign(seed=12).fingerprint()

    def test_exhausted_neighborhood_ends_campaign_gracefully(self):
        from repro.obs import EventLog

        # Base sits at shelf_columns=4 in a 3..5 range: only two distinct
        # neighbors exist, so a batch of three can never be drawn.  The
        # campaign must end with a warning event, not raise.
        space = DesignSpace(base=BASE, knobs=(IntKnob("shelf_columns", 3, 5),))
        events = EventLog(capacity=64)
        result = run_campaign(
            space,
            HillClimbing(batch_size=3),
            make_objective("throughput"),
            FakeEvaluator(_identity_distance_score),
            budget=20,
            seed=0,
            events=events,
        )
        assert result.evaluations < 20
        kinds = [event["kind"] for event in events.recent(limit=64)]
        assert "optimize.exhausted" in kinds
        assert "optimize.finished" in kinds

    def test_failing_candidates_never_dethrone_the_baseline(self):
        # Every neighbor errors out; the campaign must complete, score them
        # all at the finite floor, and keep the baseline as best.
        evaluator = FakeEvaluator(
            _identity_distance_score,
            status_fn=lambda spec: STATUS_ERROR if spec.product_order else STATUS_OK,
        )
        space = DesignSpace(base=BASE, knobs=(PermutationKnob(),))
        result = run_campaign(
            space,
            SimulatedAnnealing(),
            make_objective("throughput"),
            evaluator,
            budget=8,
            seed=1,
        )
        assert result.best_spec.scenario_id == result.baseline_spec.scenario_id
        scores = [entry["score"] for step in result.steps for entry in step.proposals]
        assert scores and all(score == WORST_SCORE for score in scores)


class TestCampaignLogAndResume:
    def test_log_round_trips(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        result = _toy_campaign(budget=12, log_path=path)
        header, steps = CampaignLog(path).read()
        assert header["schema"] == "optimize-campaign"
        assert header["budget"] == 12
        assert [step.to_dict() for step in steps] == [
            step.to_dict() for step in result.steps
        ]

    def test_resume_equals_uninterrupted(self, tmp_path):
        full_path = str(tmp_path / "full.jsonl")
        full = _toy_campaign(budget=16, log_path=full_path)
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        partial_path = str(tmp_path / "partial.jsonl")
        (tmp_path / "partial.jsonl").write_text("\n".join(lines[:5]) + "\n")
        resumed = _toy_campaign(budget=16, log_path=partial_path, resume=True)
        assert resumed.resumed_steps == 4
        assert resumed.fingerprint() == full.fingerprint()
        # The resumed log grows back into the uninterrupted log, byte for byte.
        assert (tmp_path / "partial.jsonl").read_text() == "\n".join(lines) + "\n"

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        full_path = str(tmp_path / "full.jsonl")
        full = _toy_campaign(budget=16, log_path=full_path)
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        torn_path = str(tmp_path / "torn.jsonl")
        (tmp_path / "torn.jsonl").write_text("\n".join(lines[:5]) + "\n" + lines[5][:30])
        resumed = _toy_campaign(budget=16, log_path=torn_path, resume=True)
        assert resumed.fingerprint() == full.fingerprint()

    def test_resume_after_interrupting_crash(self, tmp_path):
        full = _toy_campaign(budget=16, log_path=str(tmp_path / "full.jsonl"))
        crash_path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError, match="interrupted"):
            _toy_campaign(
                budget=16,
                log_path=crash_path,
                evaluator=FakeEvaluator(_identity_distance_score, fail_after=7),
            )
        resumed = _toy_campaign(budget=16, log_path=crash_path, resume=True)
        assert resumed.resumed_steps > 0
        assert resumed.fingerprint() == full.fingerprint()

    def test_resume_requires_matching_configuration(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        _toy_campaign(budget=12, log_path=path)
        with pytest.raises(OptimizeError, match="budget"):
            _toy_campaign(budget=14, log_path=path, resume=True)
        with pytest.raises(OptimizeError, match="seed"):
            _toy_campaign(budget=12, seed=99, log_path=path, resume=True)

    def test_resume_without_existing_log_runs_fresh(self, tmp_path):
        path = str(tmp_path / "missing.jsonl")
        result = _toy_campaign(budget=12, log_path=path, resume=True)
        assert result.resumed_steps == 0
        assert result.evaluations == 12

    def test_budget_must_be_positive(self):
        with pytest.raises(OptimizeError, match="budget"):
            _toy_campaign(budget=0)


# ---------------------------------------------------------------------------
# campaigns through the real pipeline (small, deterministic)
# ---------------------------------------------------------------------------

class TestCampaignPipeline:
    def test_slotting_campaign_beats_naive_seed_design(self):
        space = preset_space("slotting-small", seed=0)
        evaluator = CachedEvaluator()
        result = run_campaign(
            space,
            SimulatedAnnealing(),
            make_objective("throughput"),
            evaluator,
            budget=16,
            seed=1,
        )
        assert result.best_score > result.baseline_score
        assert result.evaluations == 16

    def test_infeasible_neighbor_scores_finite_and_search_survives(self):
        # stock_units_per_product=1 passes geometry validation but makes the
        # solve provably infeasible (the Zipf head wants several units of one
        # product).  The campaign must step into it, score it at the finite
        # floor, and keep the feasible baseline as best — not crash.
        space = DesignSpace(
            base=BASE, knobs=(IntKnob("stock_units_per_product", 0, 1),)
        )
        evaluator = CachedEvaluator()
        result = run_campaign(
            space,
            SimulatedAnnealing(),
            make_objective("throughput"),
            evaluator,
            budget=4,
            seed=0,
        )
        statuses = {
            entry["status"] for step in result.steps for entry in step.proposals
        }
        assert statuses == {"infeasible"}
        scores = [entry["score"] for step in result.steps for entry in step.proposals]
        assert all(score == WORST_SCORE and math.isfinite(score) for score in scores)
        assert result.best_spec.scenario_id == result.baseline_spec.scenario_id

    def test_cached_evaluator_turns_revisits_into_hits(self):
        evaluator = CachedEvaluator()
        first = evaluator.evaluate(BASE)
        second = evaluator.evaluate(BASE)
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.record.fingerprint() == first.record.fingerprint()
        stats = evaluator.stats()
        assert stats["hit_rate"] > 0
        assert stats["evaluations"] == 2

    def test_cached_evaluator_persistent_store_warms_next_campaign(self, tmp_path):
        store_path = str(tmp_path / "designs.jsonl")
        first = CachedEvaluator(store_path=store_path)
        first.evaluate(BASE)
        second = CachedEvaluator(store_path=store_path)
        evaluation = second.evaluate(BASE)
        # The cache warms its memory tier from the store at construction, so
        # the persistent hit may surface as either tier — both are cache-served.
        assert evaluation.cache in ("hit", "store")
        assert evaluation.served_from_cache
        assert second.stats()["hit_rate"] == 1.0


class TestServiceEvaluator:
    def test_rejected_response_becomes_error_record(self):
        class StubService:
            def resolve(self, request, request_id=""):
                class Response:
                    record = None
                    message = "service is draining"
                    state = "rejected"
                    cache = ""

                return Response()

        evaluator = ServiceEvaluator(StubService())
        evaluation = evaluator.evaluate(BASE)
        assert evaluation.record.status == STATUS_ERROR
        assert "draining" in evaluation.record.message
        assert make_objective("throughput").score(evaluation.record) == WORST_SCORE


# ---------------------------------------------------------------------------
# analysis renderers
# ---------------------------------------------------------------------------

class TestAnalysis:
    def _report(self):
        return _toy_campaign(budget=14).to_dict()

    def test_optimize_report_renders_all_sections(self):
        text = optimize_report(self._report())
        assert "Best vs. baseline" in text
        assert "Convergence" in text
        assert "baseline" in text and "best" in text
        assert "cache hit-rate" in text

    def test_markdown_tables(self):
        markdown = best_vs_baseline_table(self._report(), markdown=True)
        assert markdown.splitlines()[0].startswith("|")
        assert markdown.splitlines()[1] == "|---|---|---|---|"

    def test_convergence_table_marks_improvements(self):
        report = self._report()
        text = convergence_table(report)
        assert "*" in text  # the toy landscape always improves at least once

    def test_render_convergence_shapes(self):
        report = self._report()
        trace = render_convergence(report, width=20)
        lines = trace.splitlines()
        assert lines[0].startswith("best")
        assert lines[1].startswith("chosen")
        empty = dict(report, steps=[])
        assert "baseline" in render_convergence(empty)

    def test_acceptance_stats(self):
        report = self._report()
        stats = acceptance_stats(report)
        assert stats["steps"] == len(report["steps"])
        assert 0.0 <= stats["acceptance_rate"] <= 1.0
        assert stats["evaluations"] == report["evaluations"]
