"""Failure-injection tests: corrupted intermediate artifacts must be caught.

The pipeline's stages hand each other structured artifacts (flow sets, cycle
sets, schedules).  Downstream stages and validators must detect corrupted
inputs with clear errors instead of silently producing wrong plans — that is
what makes the independent validation layer trustworthy.
"""

import dataclasses

import pytest

from repro.core import (
    CycleError,
    DecompositionError,
    RealizationError,
    build_delivery_schedule,
    decompose_flow_set,
    realize_cycle_set,
    synthesize_flows,
)
from repro.core.agent_cycles import DROPOFF, PICKUP, AgentCycle, AgentCycleSet, CycleAction, DeliverySchedule
from repro.maps import toy_warehouse
from repro.warehouse import PlanValidator, Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def artifacts(designed):
    workload = Workload.uniform(designed.warehouse.catalog, 8)
    result = synthesize_flows(designed.traffic_system, workload, horizon=600)
    assert result.succeeded
    flow_set = result.flow_set
    cycle_set = decompose_flow_set(flow_set)
    schedule = build_delivery_schedule(flow_set, workload)
    return workload, flow_set, cycle_set, schedule


class TestCorruptedFlowSets:
    def test_broken_conservation_detected(self, artifacts):
        _, flow_set, _, _ = artifacts
        corrupted = dataclasses.replace(
            flow_set, loaded_flows=dict(flow_set.loaded_flows), empty_flows=dict(flow_set.empty_flows)
        )
        edge = next(iter(corrupted.loaded_flows))
        corrupted.loaded_flows[edge] += 1
        assert corrupted.check_conservation()

    def test_broken_capacity_detected(self, artifacts, designed):
        _, flow_set, _, _ = artifacts
        corrupted = dataclasses.replace(flow_set, loaded_flows=dict(flow_set.loaded_flows))
        # Push one edge far above its target component's capacity.
        (src, dst) = next(iter(corrupted.loaded_flows))
        corrupted.loaded_flows[(src, dst)] = designed.traffic_system.component(dst).capacity + 5
        assert corrupted.check_capacity()

    def test_unbalanced_pickups_fail_decomposition(self, artifacts):
        _, flow_set, _, _ = artifacts
        corrupted = dataclasses.replace(flow_set, pickups=dict(flow_set.pickups))
        row = next(iter(corrupted.pickups))
        corrupted.pickups[row] += 1
        with pytest.raises(DecompositionError):
            decompose_flow_set(corrupted)

    def test_missing_empty_flow_fails_decomposition(self, artifacts):
        _, flow_set, _, _ = artifacts
        corrupted = dataclasses.replace(flow_set, empty_flows=dict(flow_set.empty_flows))
        edge = next(iter(corrupted.empty_flows))
        del corrupted.empty_flows[edge]
        with pytest.raises(DecompositionError):
            decompose_flow_set(corrupted)


class TestCorruptedCycleSets:
    def test_overloaded_component_rejected_by_realizer(self, artifacts, designed):
        workload, flow_set, cycle_set, schedule = artifacts
        # Duplicate the cycles until some component exceeds its capacity.
        cycles = list(cycle_set.cycles)
        clones = []
        index = len(cycles)
        for _ in range(10):
            for cycle in cycle_set.cycles:
                clones.append(
                    AgentCycle(index=index, components=cycle.components, actions=cycle.actions)
                )
                index += 1
        overloaded = AgentCycleSet(
            system=cycle_set.system,
            cycles=tuple(cycles + clones),
            cycle_time=cycle_set.cycle_time,
            num_periods=cycle_set.num_periods,
        )
        with pytest.raises((CycleError, RealizationError)):
            realize_cycle_set(overloaded, schedule.copy())

    def test_disconnected_cycle_rejected(self, designed, artifacts):
        _, _, cycle_set, schedule = artifacts
        system = designed.traffic_system
        station = system.component_by_name("slice0/station")
        serp = system.component_by_name("slice0/serpentine/0")
        far_top = system.component_by_name("slice1/top")
        bogus = AgentCycle(
            index=0,
            components=(station.index, serp.index, far_top.index),
            actions=(CycleAction(DROPOFF), CycleAction(PICKUP), None),
        )
        broken = AgentCycleSet(
            system=system,
            cycles=(bogus,),
            cycle_time=cycle_set.cycle_time,
            num_periods=cycle_set.num_periods,
        )
        with pytest.raises(CycleError):
            realize_cycle_set(broken, schedule.copy())


class TestCorruptedSchedules:
    def test_empty_schedule_still_produces_feasible_plan(self, artifacts, designed):
        """With no scheduled products, agents cycle empty: feasible but useless."""
        workload, _, cycle_set, _ = artifacts
        result = realize_cycle_set(cycle_set, DeliverySchedule())
        assert result.total_delivered == 0
        assert PlanValidator(designed.warehouse).is_feasible(result.plan)
        assert not result.plan.services(workload)

    def test_schedule_with_unstocked_product_is_skipped(self, artifacts, designed):
        """Scheduling a product a row does not stock simply yields no pickup there."""
        workload, flow_set, cycle_set, _ = artifacts
        row = next(iter(flow_set.pickups))
        # Find a product with no stock at this row.
        unstocked = None
        for product in designed.warehouse.catalog.product_ids:
            if designed.traffic_system.units_at(row, product) == 0:
                unstocked = product
                break
        if unstocked is None:
            pytest.skip("every product is stocked at this row")
        schedule = DeliverySchedule({row: [unstocked] * 5})
        result = realize_cycle_set(cycle_set, schedule)
        assert result.deliveries.get(unstocked, 0) == 0
        assert PlanValidator(designed.warehouse).is_feasible(result.plan)
