"""Unit tests of the discrete-event engine and its building blocks."""

import numpy as np
import pytest

from repro.sim import (
    DeterministicOrderStream,
    Order,
    OrderBook,
    OrderStreamError,
    PoissonOrderStream,
    ServiceModelError,
    ServiceTimeModel,
    SimulationEngine,
    SimulationError,
    TraceRecorder,
    product_mix_from_workload,
)
from repro.warehouse import Workload
from repro.warehouse.products import ProductCatalog


def make_recorder(ticks=101, cycle_time=10):
    return TraceRecorder(
        num_vertices=20, num_agents=3, cycle_time=cycle_time, ticks=ticks
    )


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(5, lambda: fired.append(5))
        engine.schedule_at(1, lambda: fired.append(1))
        engine.schedule_at(3, lambda: fired.append(3))
        engine.run()
        assert fired == [1, 3, 5]
        assert engine.now == 5

    def test_same_tick_ordered_by_priority_then_insertion(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(2, lambda: fired.append("late"), priority=40)
        engine.schedule_at(2, lambda: fired.append("early"), priority=0)
        engine.schedule_at(2, lambda: fired.append("early2"), priority=0)
        engine.run()
        assert fired == ["early", "early2", "late"]

    def test_run_until_is_inclusive_and_advances_clock(self):
        engine = SimulationEngine(seed=0)
        fired = []
        engine.schedule_at(3, lambda: fired.append(3))
        engine.schedule_at(7, lambda: fired.append(7))
        engine.run(until=3)
        assert fired == [3]
        engine.run(until=10)
        assert fired == [3, 7]
        assert engine.now == 10  # clock advanced to `until` with the heap drained

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine(seed=0)
        engine.schedule_at(4, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(2, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine(seed=0)
        fired = []
        event = engine.schedule_at(1, lambda: fired.append("cancelled"))
        engine.schedule_at(1, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_every_repeats_until_bound(self):
        engine = SimulationEngine(seed=0)
        ticks = []
        engine.every(2, lambda: ticks.append(engine.now), start=0, until=6)
        engine.run()
        assert ticks == [0, 2, 4, 6]

    def test_every_never_fires_when_start_past_until(self):
        engine = SimulationEngine(seed=0)
        ticks = []
        engine.every(5, lambda: ticks.append(engine.now), start=10, until=3)
        engine.run()
        assert ticks == []

    def test_stop_halts_the_run(self):
        engine = SimulationEngine(seed=0)
        fired = []

        def first():
            fired.append(engine.now)
            engine.stop()

        engine.schedule_at(1, first)
        engine.schedule_at(2, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1]

    def test_seeded_rng_reproducible(self):
        a = SimulationEngine(seed=42).rng.integers(0, 1000, size=10)
        b = SimulationEngine(seed=42).rng.integers(0, 1000, size=10)
        assert np.array_equal(a, b)


class TestIntraTickOrdering:
    """Regression tests pinning the (tick, priority, sequence) pop order.

    The disruption layer schedules same-tick follow-up work from inside its
    own band (a repair triggering agent reassignment), which surfaced the
    latent bug class these tests pin: events landing at an identical timestamp
    must pop monotonically in (priority, sequence), even when a running
    callback schedules into a phase the clock has already passed.
    """

    def test_ties_pop_in_priority_then_insertion_order(self):
        engine = SimulationEngine(seed=0)
        fired = []
        # Insert deliberately out of priority order at one timestamp.
        for label, priority in (
            ("monitors", 30), ("arrivals", 0), ("telemetry", 40),
            ("agents-a", 10), ("disruptions", 5), ("agents-b", 10), ("stations", 20),
        ):
            engine.schedule_at(3, lambda l=label: fired.append(l), priority=priority)
        engine.run()
        assert fired == [
            "arrivals", "disruptions", "agents-a", "agents-b", "stations",
            "monitors", "telemetry",
        ]

    def test_same_tick_schedule_cannot_reenter_a_completed_phase(self):
        """A callback in band 20 scheduling a same-tick band-0 event must not
        interleave it into the middle of band 20: the event is lifted to the
        executing band and pops after that band's pending events."""
        engine = SimulationEngine(seed=0)
        fired = []

        def first():
            fired.append("first@20")
            engine.schedule(0, lambda: fired.append("lifted@0->20"), priority=0)

        engine.schedule_at(2, first, priority=20)
        engine.schedule_at(2, lambda: fired.append("second@20"), priority=20)
        engine.schedule_at(2, lambda: fired.append("third@30"), priority=30)
        engine.run()
        assert fired == ["first@20", "second@20", "lifted@0->20", "third@30"]

    def test_same_tick_schedule_into_a_later_phase_keeps_its_priority(self):
        engine = SimulationEngine(seed=0)
        fired = []

        def first():
            fired.append("agents@10")
            engine.schedule(0, lambda: fired.append("monitors@30"), priority=30)

        engine.schedule_at(1, first, priority=10)
        engine.schedule_at(1, lambda: fired.append("stations@20"), priority=20)
        engine.run()
        assert fired == ["agents@10", "stations@20", "monitors@30"]

    def test_future_tick_schedules_keep_their_priority(self):
        engine = SimulationEngine(seed=0)
        fired = []

        def first():
            fired.append("t1@20")
            engine.schedule(1, lambda: fired.append("t2@0"), priority=0)

        engine.schedule_at(1, first, priority=20)
        engine.schedule_at(2, lambda: fired.append("t2@10"), priority=10)
        engine.run()
        assert fired == ["t1@20", "t2@0", "t2@10"]


class TestServiceTimeModels:
    def test_deterministic(self):
        model = ServiceTimeModel.deterministic(3)
        rng = np.random.default_rng(0)
        assert [model.sample(rng) for _ in range(5)] == [3] * 5
        assert model.mean == 3
        assert not model.is_instant
        assert ServiceTimeModel.deterministic(0).is_instant

    def test_uniform_within_bounds(self):
        model = ServiceTimeModel.uniform(2, 6)
        rng = np.random.default_rng(0)
        draws = [model.sample(rng) for _ in range(200)]
        assert min(draws) >= 2 and max(draws) <= 6
        assert model.mean == 4

    def test_geometric_mean_and_support(self):
        model = ServiceTimeModel.geometric(4.0)
        rng = np.random.default_rng(0)
        draws = [model.sample(rng) for _ in range(2000)]
        assert min(draws) >= 1
        assert np.mean(draws) == pytest.approx(4.0, rel=0.15)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceTimeModel.deterministic(-1)
        with pytest.raises(ServiceModelError):
            ServiceTimeModel.uniform(5, 2)
        with pytest.raises(ServiceModelError):
            ServiceTimeModel.geometric(0)
        with pytest.raises(ServiceModelError):
            ServiceTimeModel.geometric(0.5)  # unrealizable: draws are >= 1 tick


class TestOrderBook:
    def test_fifo_matching_and_latency(self):
        recorder = make_recorder()
        book = OrderBook(recorder)
        book.add_order(1, 0)
        book.add_order(1, 2)
        served = book.unit_served(1, 10)
        assert isinstance(served, Order)
        assert served.arrival == 0 and served.latency == 10
        assert book.num_pending == 1
        assert recorder.order_latencies == [10]

    def test_over_delivery_banked_for_future_orders(self):
        recorder = make_recorder()
        book = OrderBook(recorder)
        assert book.unit_served(2, 5) is None  # no order waiting — banked
        assert book.buffered_units() == 1
        order = book.add_order(2, 9)
        assert order.fulfilled == 9 and order.latency == 0
        assert book.buffered_units() == 0


class TestOrderStreams:
    @pytest.fixture
    def workload(self):
        return Workload.from_mapping(ProductCatalog.numbered(4), {1: 3, 2: 1, 4: 2})

    def test_deterministic_stream_emits_all_at_t0(self, workload):
        engine = SimulationEngine(seed=0)
        recorder = make_recorder()
        book = OrderBook(recorder)
        DeterministicOrderStream(workload).bind(engine, book)
        engine.run()
        assert engine.now == 0
        assert book.num_orders == workload.total_units
        per_product = {}
        for order in book.orders:
            per_product[order.product] = per_product.get(order.product, 0) + 1
        assert per_product == {1: 3, 2: 1, 4: 2}

    def test_poisson_stream_rate_and_mix(self, workload):
        engine = SimulationEngine(seed=1)
        recorder = make_recorder(ticks=2001)
        book = OrderBook(recorder)
        PoissonOrderStream(0.5, workload=workload, until=1999).bind(engine, book)
        engine.run(until=1999)
        assert book.num_orders == pytest.approx(1000, rel=0.15)
        counts = {}
        for order in book.orders:
            counts[order.product] = counts.get(order.product, 0) + 1
        assert counts[1] > counts[2]  # mix follows demand skew
        assert 3 not in counts  # zero-demand products never sampled

    def test_poisson_stream_is_seed_deterministic(self, workload):
        def arrivals(seed):
            engine = SimulationEngine(seed=seed)
            book = OrderBook(make_recorder(ticks=501))
            PoissonOrderStream(0.3, workload=workload, until=499).bind(engine, book)
            engine.run(until=499)
            return [(o.product, o.arrival) for o in book.orders]

        assert arrivals(7) == arrivals(7)
        assert arrivals(7) != arrivals(8)

    def test_invalid_streams_rejected(self, workload):
        with pytest.raises(OrderStreamError):
            PoissonOrderStream(0.0, workload=workload)
        with pytest.raises(OrderStreamError):
            PoissonOrderStream(1.0)
        with pytest.raises(OrderStreamError):
            product_mix_from_workload(Workload((0, 0)))

    def test_mix_override(self):
        products, probs = (3, 5), (0.25, 0.75)
        stream = PoissonOrderStream(1.0, mix=(products, probs))
        assert stream.products == (3, 5)
        assert stream.probabilities[1] == pytest.approx(0.75)


class TestTraceRecorder:
    def test_period_bucketing(self):
        recorder = make_recorder(ticks=31, cycle_time=10)
        assert recorder.periods == 3
        recorder.record_transition(1, 0, 1, 2)  # period 0
        recorder.record_transition(10, 0, 1, 2)  # still period 0 (moves 1..10)
        recorder.record_transition(11, 0, 1, 2)  # period 1
        trace = recorder.build()
        assert trace.transitions[(0, 1, 2)].tolist() == [2, 1, 0]
        assert recorder.transitions_into(1, 0) == 2

    def test_conservation_accounting(self):
        recorder = make_recorder()
        recorder.record_preload(0, 1)
        recorder.record_pickup(2, 4, 1)
        recorder.record_handoff(5, 7, 1)
        recorder.record_handoff(6, 7, 1)
        recorder.record_served(6, 7, 1)
        trace = recorder.build()
        assert trace.units_in_transit == 0
        assert trace.station_backlog == 1
        assert trace.conservation_report() == []

    def test_conservation_flags_impossible_counts(self):
        recorder = make_recorder()
        recorder.record_handoff(5, 7, 1)  # handed off without any pickup
        trace = recorder.build()
        assert any("handed off" in problem for problem in trace.conservation_report())

    def test_stockout_phantoms_count_as_available(self):
        recorder = make_recorder()
        recorder.record_stockout(2, 4, 1)  # plan picks a unit the twin lacks
        recorder.record_handoff(5, 7, 1)  # the phantom still flows downstream
        trace = recorder.build()
        assert trace.conservation_report() == []
        assert trace.units_in_transit == 0

    def test_event_log_disabled(self):
        recorder = TraceRecorder(
            num_vertices=4, num_agents=1, cycle_time=5, ticks=11, record_events=False
        )
        recorder.record_pickup(1, 0, 1)
        assert recorder.build().events is None
