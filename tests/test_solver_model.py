"""Unit tests for the backend-independent constraint model."""

import numpy as np
import pytest

from repro.solver import ConstraintModel, ModelError, Variable
from repro.solver.expressions import LinearExpr


class TestVariables:
    def test_add_var_registers(self):
        model = ConstraintModel()
        x = model.add_var("x", lb=0, ub=5, integer=True)
        assert x in model.variables
        assert model.variable_by_name("x") is x

    def test_duplicate_name_rejected(self):
        model = ConstraintModel()
        model.add_var("x")
        with pytest.raises(ModelError):
            model.add_var("x")

    def test_register_external_variable(self):
        model = ConstraintModel()
        v = Variable("ext", lb=1, ub=2)
        model.register(v)
        model.register(v)  # idempotent
        assert model.num_variables == 1

    def test_conflicting_external_names_rejected(self):
        model = ConstraintModel()
        model.register(Variable("v", lb=0, ub=1))
        with pytest.raises(ModelError):
            model.register(Variable("v", lb=0, ub=2))

    def test_unknown_name_lookup(self):
        model = ConstraintModel()
        with pytest.raises(ModelError):
            model.variable_by_name("nope")


class TestConstraintsAndObjective:
    def test_constraint_auto_registers_variables(self):
        model = ConstraintModel()
        x = Variable("x", lb=0, ub=4)
        y = Variable("y", lb=0, ub=4)
        model.add_constraint(x + y <= 6, name="cap")
        assert model.num_variables == 2
        assert model.constraints[0].name == "cap"

    def test_bool_guard(self):
        model = ConstraintModel()
        with pytest.raises(ModelError):
            model.add_constraint(True)  # type: ignore[arg-type]

    def test_objective_sense_validation(self):
        model = ConstraintModel()
        x = model.add_var("x")
        with pytest.raises(ModelError):
            model.set_objective(LinearExpr({x: 1.0}), sense="maximize-ish")

    def test_objective_value(self):
        model = ConstraintModel()
        x = model.add_var("x")
        y = model.add_var("y")
        model.set_objective(2 * x + y + 3)
        assert model.objective_value({x: 1, y: 2}) == pytest.approx(7.0)


class TestExportAndChecks:
    def _small_model(self):
        model = ConstraintModel("small")
        x = model.add_var("x", lb=0, ub=10, integer=True)
        y = model.add_var("y", lb=0, ub=10)
        model.add_constraint(x + 2 * y <= 14)
        model.add_constraint(3 * x - y >= 0)
        model.add_constraint(x - y == 2)
        model.set_objective(x + y, sense="max")
        return model, x, y

    def test_standard_arrays_shapes(self):
        model, _, _ = self._small_model()
        arrays = model.to_standard_arrays()
        assert arrays.c.shape == (2,)
        assert arrays.a_ub.shape == (2, 2)  # <= and flipped >=
        assert arrays.a_eq.shape == (1, 2)
        assert list(arrays.integrality) == [1, 0]

    def test_max_objective_flipped(self):
        model, x, y = self._small_model()
        arrays = model.to_standard_arrays()
        # maximize x + y  ->  minimize -(x + y)
        assert arrays.c[arrays.variables.index(x)] == -1.0
        assert arrays.objective_sign == -1.0
        assert arrays.objective_value([3.0, 1.0]) == pytest.approx(4.0)

    def test_ge_row_flipped_into_ub(self):
        model, x, y = self._small_model()
        arrays = model.to_standard_arrays()
        # The >= row appears negated in A_ub.
        assert np.any(arrays.b_ub <= 0.0) or arrays.a_ub.shape[0] == 2

    def test_check_assignment_reports_violations(self):
        model, x, y = self._small_model()
        violated = model.check_assignment({x: 20, y: 1.5})
        names = {c.name for c in violated}
        assert any(name.startswith("ub[") for name in names)
        assert len(violated) >= 2

    def test_check_assignment_integer_violation(self):
        model, x, y = self._small_model()
        violated = model.check_assignment({x: 2.5, y: 0.5})
        assert any(c.name.startswith("int[") for c in violated)

    def test_check_assignment_missing_variable(self):
        model, x, _ = self._small_model()
        with pytest.raises(Exception):
            model.check_assignment({x: 1})

    def test_relaxed_drops_integrality(self):
        model, _, _ = self._small_model()
        relaxed = model.relaxed()
        assert all(not v.integer for v in relaxed.variables)
        assert relaxed.num_constraints == model.num_constraints
        assert relaxed.objective_sense == model.objective_sense

    def test_summary_mentions_counts(self):
        model, _, _ = self._small_model()
        text = model.summary()
        assert "2 vars" in text
        assert "3 constraints" in text
