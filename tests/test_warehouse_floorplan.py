"""Tests for the floorplan graph derived from a grid."""

import pytest

from repro.warehouse import FloorplanError, FloorplanGraph, GridMap, build_grid

FIG1_ASCII = """
.....
.S.S.
.....
@T@T@
""".strip("\n")


@pytest.fixture()
def fig1():
    return FloorplanGraph.from_grid(GridMap.from_ascii(FIG1_ASCII, name="fig1"))


class TestConstruction:
    def test_vertex_count_excludes_blocked(self, fig1):
        # 5x4 = 20 cells, minus 2 shelves and 3 obstacles = 15 vertices.
        assert fig1.num_vertices == 15

    def test_cell_vertex_round_trip(self, fig1):
        for vertex in range(fig1.num_vertices):
            assert fig1.vertex_at(fig1.cell_of(vertex)) == vertex

    def test_vertex_at_unknown_cell(self, fig1):
        with pytest.raises(FloorplanError):
            fig1.vertex_at((0, 0))  # obstacle
        assert not fig1.has_vertex_at((0, 0))

    def test_shelf_access_matches_paper_row(self, fig1):
        # The paper lists S = {v_{0,2}, v_{2,2}, v_{4,2}} for this warehouse
        # (east/west shelf access); our derivation also includes the cells
        # above and below each shelf because they are 4-adjacent open cells.
        access_cells = {fig1.cell_of(v) for v in fig1.shelf_access}
        assert {(0, 2), (2, 2), (4, 2)} <= access_cells

    def test_station_vertices(self, fig1):
        station_cells = {fig1.cell_of(v) for v in fig1.stations}
        assert station_cells == {(1, 0), (3, 0)}

    def test_adjacency_is_symmetric(self, fig1):
        for u in range(fig1.num_vertices):
            for v in fig1.neighbors(u):
                assert u in fig1.neighbors(v)

    def test_edge_count(self, fig1):
        total_degree = sum(fig1.degree(v) for v in range(fig1.num_vertices))
        assert fig1.num_edges == total_degree // 2

    def test_mismatched_adjacency_rejected(self, fig1):
        with pytest.raises(FloorplanError):
            FloorplanGraph(
                cells=fig1.cells,
                adjacency=fig1.adjacency[:-1],
                shelf_access=fig1.shelf_access,
                stations=fig1.stations,
            )

    def test_out_of_range_annotation_rejected(self, fig1):
        with pytest.raises(FloorplanError):
            FloorplanGraph(
                cells=fig1.cells,
                adjacency=fig1.adjacency,
                shelf_access=frozenset({999}),
                stations=fig1.stations,
            )


class TestAlgorithms:
    def test_bfs_distances(self, fig1):
        station = fig1.vertex_at((1, 0))
        distances = fig1.bfs_distances(station)
        assert distances[station] == 0
        assert distances[fig1.vertex_at((1, 1))] == 1
        assert distances[fig1.vertex_at((0, 2))] == 3

    def test_shortest_path_endpoints_and_length(self, fig1):
        a = fig1.vertex_at((1, 0))
        b = fig1.vertex_at((4, 2))
        path = fig1.shortest_path(a, b)
        assert path is not None
        assert path[0] == a and path[-1] == b
        assert len(path) - 1 == fig1.bfs_distances(a)[b]
        assert fig1.induced_path_is_simple(path)

    def test_shortest_path_same_vertex(self, fig1):
        v = fig1.vertex_at((2, 2))
        assert fig1.shortest_path(v, v) == [v]

    def test_unreachable_path(self):
        grid = GridMap.from_ascii(".@.")
        plan = FloorplanGraph.from_grid(grid)
        a, b = plan.vertex_at((0, 0)), plan.vertex_at((2, 0))
        assert plan.shortest_path(a, b) is None
        assert not plan.is_connected()

    def test_is_connected_full_and_subset(self, fig1):
        assert fig1.is_connected()
        subset = [fig1.vertex_at((0, 2)), fig1.vertex_at((1, 3))]
        # These two are not adjacent to each other directly but the induced
        # subgraph only contains them, so it is disconnected.
        assert not fig1.is_connected(subset)
        assert fig1.is_connected([])

    def test_to_networkx(self, fig1):
        graph = fig1.to_networkx()
        assert graph.number_of_nodes() == fig1.num_vertices
        assert graph.number_of_edges() == fig1.num_edges
        station = fig1.vertex_at((1, 0))
        assert graph.nodes[station]["station"]

    def test_induced_path_rejects_repeats_and_jumps(self, fig1):
        a = fig1.vertex_at((0, 1))
        b = fig1.vertex_at((0, 2))
        far = fig1.vertex_at((4, 2))
        assert fig1.induced_path_is_simple([a, b])
        assert not fig1.induced_path_is_simple([a, b, a])
        assert not fig1.induced_path_is_simple([a, far])


class TestOpenGrid:
    def test_full_grid_edge_count(self):
        # 3x3 open grid: 9 vertices, 12 edges.
        plan = FloorplanGraph.from_grid(build_grid(3, 3))
        assert plan.num_vertices == 9
        assert plan.num_edges == 12
        assert plan.is_connected()
