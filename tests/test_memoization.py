"""Correctness tests for the hot-path memos (scenario_id, floorplan graph).

The *speed* claims live in ``benchmarks/test_bench_memoization.py``; these
tests pin the semantics: memoized values equal recomputed ones, identity is
shared where sharing is sound, and the caches never leak across distinct
inputs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import ScenarioSpec
from repro.warehouse.floorplan import (
    FloorplanGraph,
    from_grid_cache_clear,
    from_grid_cache_info,
)
from repro.warehouse.grid import GridMap

BASE = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)

ASCII_GRID = "\n".join(
    [
        ".....",
        ".SSS.",
        ".....",
        "T...T",
    ]
)


class TestScenarioIdMemo:
    def test_memo_matches_fresh_computation(self):
        spec = replace(BASE)  # fresh instance, no memo yet
        first = spec.scenario_id
        assert spec.__dict__["_scenario_id"] == first  # memo populated
        assert spec.scenario_id == first  # served from the memo
        # An identical but distinct instance recomputes to the same id.
        assert replace(BASE).scenario_id == first

    def test_replace_does_not_inherit_stale_memo(self):
        spec = replace(BASE)
        original = spec.scenario_id
        changed = replace(spec, units=BASE.units + 1)
        assert "_scenario_id" not in changed.__dict__
        assert changed.scenario_id != original

    def test_memo_survives_serialization_round_trip(self):
        spec = replace(BASE)
        identity = spec.scenario_id
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.scenario_id == identity

    def test_name_still_excluded_from_identity(self):
        assert replace(BASE, name="renamed").scenario_id == replace(BASE).scenario_id


class TestFloorplanGraphMemo:
    def setup_method(self):
        from_grid_cache_clear()

    def test_same_grid_identity_shares_one_graph(self):
        first = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="memo"))
        second = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="memo"))
        assert second is first
        info = from_grid_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_grids_do_not_collide(self):
        base = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="memo"))
        other_ascii = ASCII_GRID.replace(".....", "...@.", 1)
        other = FloorplanGraph.from_grid(GridMap.from_ascii(other_ascii, name="memo"))
        assert other is not base
        assert other.num_vertices != base.num_vertices

    def test_name_is_part_of_the_identity(self):
        one = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="a"))
        two = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="b"))
        assert one is not two
        assert from_grid_cache_info()["misses"] == 2

    def test_cache_is_bounded(self):
        from repro.warehouse import floorplan as module

        for index in range(module._FROM_GRID_CAPACITY + 8):
            FloorplanGraph.from_grid(
                GridMap.from_ascii(ASCII_GRID, name=f"bounded-{index}")
            )
        assert from_grid_cache_info()["size"] <= module._FROM_GRID_CAPACITY

    def test_cached_graph_is_structurally_correct(self):
        grid = GridMap.from_ascii(ASCII_GRID, name="memo")
        graph = FloorplanGraph.from_grid(grid)
        cached = FloorplanGraph.from_grid(GridMap.from_ascii(ASCII_GRID, name="memo"))
        assert cached.num_vertices == len(grid.traversable_cells())
        assert cached.stations == graph.stations
        assert cached.shelf_access == graph.shelf_access

    def test_scenario_build_reuses_the_graph(self):
        """Two builds of the same spec share one floorplan graph (hot path
        of repeated service requests for a cached-out scenario)."""
        designed_a, _ = replace(BASE).build()
        designed_b, _ = replace(BASE).build()
        assert designed_a.warehouse.floorplan is designed_b.warehouse.floorplan
