"""Unit tests for the linear expression layer."""

import pytest

from repro.solver.expressions import (
    EQ,
    GE,
    LE,
    ExpressionError,
    LinearConstraint,
    LinearExpr,
    Variable,
    variables_of,
)


@pytest.fixture()
def xy():
    return Variable("x", lb=0, ub=10), Variable("y", lb=0, ub=10)


class TestVariable:
    def test_defaults(self):
        v = Variable("v")
        assert v.lb == 0
        assert v.ub is None
        assert not v.integer

    def test_empty_domain_rejected(self):
        with pytest.raises(ExpressionError):
            Variable("v", lb=3, ub=2)

    def test_hashable_and_distinct(self):
        a = Variable("a", lb=0, ub=1)
        b = Variable("a", lb=0, ub=2)
        assert hash(a) != hash(b) or a != b
        assert len({a, b}) == 2

    def test_negation_builds_expr(self):
        v = Variable("v")
        expr = -v
        assert expr.coefficient(v) == -1.0


class TestLinearExpr:
    def test_addition_and_scaling(self, xy):
        x, y = xy
        expr = 2 * x + 3 * y + 4
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 3.0
        assert expr.constant == 4.0

    def test_subtraction_cancels(self, xy):
        x, y = xy
        expr = (x + y) - (x + y)
        assert expr.is_constant()
        assert expr.constant == 0.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 5 - x
        assert expr.coefficient(x) == -1.0
        assert expr.constant == 5.0

    def test_sum_builder(self, xy):
        x, y = xy
        expr = LinearExpr.sum([x, y, x, 2.5])
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 1.0
        assert expr.constant == 2.5

    def test_sum_of_empty_iterable(self):
        expr = LinearExpr.sum([])
        assert expr.is_constant()
        assert expr.constant == 0.0

    def test_evaluate(self, xy):
        x, y = xy
        expr = 2 * x - y + 1
        assert expr.evaluate({x: 3, y: 4}) == pytest.approx(3.0)

    def test_evaluate_missing_variable(self, xy):
        x, y = xy
        expr = x + y
        with pytest.raises(ExpressionError):
            expr.evaluate({x: 1})

    def test_zero_coefficients_dropped(self, xy):
        x, y = xy
        expr = 0 * x + y
        assert x not in expr.coeffs
        assert expr.coefficient(x) == 0.0

    def test_scale_by_expression_rejected(self, xy):
        x, y = xy
        with pytest.raises(ExpressionError):
            (x + 1) * (y + 1)  # type: ignore[operator]

    def test_invalid_operand(self):
        with pytest.raises(ExpressionError):
            LinearExpr.from_operand("not a number")  # type: ignore[arg-type]


class TestLinearConstraint:
    def test_le_normalization(self, xy):
        x, y = xy
        constraint = x + y <= 5
        assert constraint.sense == LE
        assert constraint.expr.constant == -5.0

    def test_ge_and_eq(self, xy):
        x, y = xy
        assert (x >= 2).sense == GE
        assert (x + y == 3).sense == EQ

    def test_satisfaction(self, xy):
        x, y = xy
        constraint = x + 2 * y <= 10
        assert constraint.is_satisfied({x: 2, y: 4})
        assert not constraint.is_satisfied({x: 5, y: 4})

    def test_violation_amount(self, xy):
        x, _ = xy
        constraint = x <= 3
        assert constraint.violation({x: 5}) == pytest.approx(2.0)
        assert constraint.violation({x: 1}) == 0.0

    def test_eq_violation(self, xy):
        x, _ = xy
        # Equality constraints on a single variable are written by lifting the
        # variable into an expression first (plain ``x == 4`` keeps Python's
        # value-equality semantics because variables are used as dict keys).
        constraint = 1 * x == 4
        assert constraint.violation({x: 2.5}) == pytest.approx(1.5)

    def test_plain_variable_equality_is_not_a_constraint(self, xy):
        x, y = xy
        assert (x == y) is False
        assert x == Variable("x", lb=0, ub=10)

    def test_named(self, xy):
        x, _ = xy
        constraint = (x <= 3).named("cap")
        assert constraint.name == "cap"
        assert constraint.sense == LE

    def test_invalid_sense_rejected(self, xy):
        x, _ = xy
        with pytest.raises(ExpressionError):
            LinearConstraint(LinearExpr({x: 1.0}), "<")

    def test_variables_of(self, xy):
        x, y = xy
        constraints = [x <= 1, y >= 0, x + y == 2]
        assert set(variables_of(constraints)) == {x, y}
