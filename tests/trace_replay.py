"""Replay-from-trace assertion helpers shared by the monitor test files.

The AG-contract monitor's verdict must be a pure function of the serialized
trace: every breach it flags during or after a run has to be reproducible by
anyone holding only the trace JSON (and the compiled contracts).  These
helpers round-trip a report's trace through the JSON schema, re-evaluate a
fresh monitor on the reloaded artifact, and assert the two verdicts agree —
including the live capacity breaches, which are independently recomputed from
the trace's per-period transition counts.
"""

import json

from repro.io import trace_from_dict, trace_to_dict
from repro.sim import monitor_from_synthesis
from repro.sim.monitors import LIVE_CAPACITY


def roundtrip_trace(trace):
    """Serialize and reload a trace through its canonical JSON form."""
    payload = json.dumps(trace_to_dict(trace), sort_keys=True)
    return trace_from_dict(json.loads(payload))


def live_capacity_breaches_from_trace(trace, system):
    """(component, period) pairs whose observed entries exceed capacity.

    This recomputes, from the serialized per-period transition counts alone,
    exactly what the live monitor checks at each period boundary.
    """
    breaches = set()
    for component in system.components:
        for period in range(trace.periods):
            entered = sum(
                int(counts[period])
                for (_, dst, _), counts in trace.transitions.items()
                if dst == component.index and period < len(counts)
            )
            if entered > component.capacity:
                breaches.add((component.index, period))
    return breaches


def live_breach_keys(report, system):
    """(component, period) pairs of the report's live-capacity violations."""
    keys = set()
    for violation in report.monitor.violations_of_kind(LIVE_CAPACITY):
        name = violation.contract[len("component[") : -1]
        component = system.component_by_name(name)
        period = violation.tick // report.trace.cycle_time - 1
        keys.add((component.index, period))
    return keys


def assert_breaches_reproducible(report, system, synthesis, workload=None):
    """Every breach the monitor flagged must replay from the trace alone."""
    assert report.monitor is not None, "the run was not monitored"
    reloaded = roundtrip_trace(report.trace)

    monitor = monitor_from_synthesis(
        system, synthesis, slack_units=report.config.monitor_slack_units
    )
    replay = monitor.evaluate(reloaded, workload=workload)

    def key(violation):
        return (
            violation.contract,
            violation.constraint,
            violation.kind,
            round(violation.amount, 9),
        )

    original = sorted(
        key(v) for v in report.monitor.violations if v.kind != LIVE_CAPACITY
    )
    replayed = sorted(key(v) for v in replay.violations)
    assert original == replayed, (
        f"post-hoc verdict changed under replay: {original} != {replayed}"
    )

    # The live capacity breaches are not re-raised by a post-hoc evaluate()
    # (they are stamped during the run), but they must be derivable from the
    # serialized per-period flow counts — and exactly them.
    assert live_breach_keys(report, system) == live_capacity_breaches_from_trace(
        reloaded, system
    )
