"""Tests for the traffic system, its graph, validation and design helpers."""

import pytest

from repro.maps import TOY_LAYOUT, generate_fulfillment_center, toy_warehouse
from repro.traffic import (
    ComponentKind,
    TrafficError,
    TrafficSystem,
    assert_valid,
    auto_connections,
    build_traffic_system,
    chain_connections,
    split_path,
    validate,
)


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


class TestTrafficSystemBasics:
    def test_component_lookup(self, system):
        first = system.component(0)
        assert system.component_by_name(first.name) is first
        with pytest.raises(TrafficError):
            system.component_by_name("no-such-component")

    def test_vertex_ownership_is_partition(self, system):
        owners = {}
        for component in system.components:
            for vertex in component.vertices:
                assert vertex not in owners
                owners[vertex] = component.index
        for vertex in owners:
            assert system.owner_of(vertex) == owners[vertex]
        assert set(system.used_vertices()) == set(owners)

    def test_unused_vertices_are_not_critical(self, system, designed):
        floorplan = designed.warehouse.floorplan
        for vertex in system.unused_vertices():
            assert vertex not in floorplan.shelf_access
            assert vertex not in floorplan.stations

    def test_kind_partition(self, system):
        total = (
            len(system.shelving_rows())
            + len(system.station_queues())
            + len(system.transports())
        )
        assert total == system.num_components

    def test_inlets_outlets_are_inverse(self, system):
        for component in system.components:
            for outlet in system.outlets_of(component.index):
                assert component.index in system.inlets_of(outlet)
            for inlet in system.inlets_of(component.index):
                assert component.index in system.outlets_of(inlet)

    def test_edges_match_outlets(self, system):
        edges = set(system.edges())
        for component in system.components:
            for outlet in system.outlets_of(component.index):
                assert (component.index, outlet) in edges

    def test_cycle_time_and_capacity(self, system):
        assert system.cycle_time() == 2 * system.max_component_length
        assert system.cycle_time(factor=3) == 3 * system.max_component_length
        assert system.station_throughput_capacity() == sum(
            c.capacity for c in system.station_queues()
        )

    def test_units_at(self, system, designed):
        total = sum(
            system.units_at(c.index, product)
            for c in system.components
            for product in designed.warehouse.catalog.product_ids
        )
        assert total == designed.warehouse.stock.total_units_all()

    def test_station_vertices_in(self, system, designed):
        all_station_vertices = set()
        for queue in system.station_queues():
            all_station_vertices.update(system.station_vertices_in(queue.index))
        assert all_station_vertices == set(designed.warehouse.station_vertices)

    def test_networkx_export(self, system):
        graph = system.to_networkx()
        assert graph.number_of_nodes() == system.num_components
        assert graph.number_of_edges() == len(system.edges())
        assert system.is_strongly_connected()


class TestConstructionErrors:
    def test_overlapping_components_rejected(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        cells = [floorplan.cell_of(v) for v in designed.traffic_system.component(0).vertices]
        paths = [("a", cells), ("b", cells)]
        with pytest.raises(TrafficError):
            TrafficSystem.from_cell_paths(warehouse, paths, [("a", "b")])

    def test_duplicate_names_rejected(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        cells = [floorplan.cell_of(v) for v in designed.traffic_system.component(0).vertices]
        other = [floorplan.cell_of(v) for v in designed.traffic_system.component(1).vertices]
        with pytest.raises(TrafficError):
            TrafficSystem.from_cell_paths(warehouse, [("a", cells), ("a", other)], [])

    def test_unknown_connection_rejected(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        cells = [floorplan.cell_of(v) for v in designed.traffic_system.component(0).vertices]
        with pytest.raises(TrafficError):
            TrafficSystem.from_cell_paths(warehouse, [("a", cells)], [("a", "ghost")])


class TestValidation:
    def test_generated_systems_are_valid(self, system):
        report = validate(system)
        assert report.is_valid, [str(v) for v in report.violations]
        assert_valid(system)
        assert "satisfies" in report.summary()

    def test_missing_connection_reported(self, designed):
        # Rebuild the toy traffic system but drop all connections: every
        # component then violates the inlet/outlet count rule and the graph
        # is not strongly connected.
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        paths = [
            (c.name, [floorplan.cell_of(v) for v in c.vertices])
            for c in designed.traffic_system.components
        ]
        system = TrafficSystem.from_cell_paths(warehouse, paths, [])
        report = validate(system)
        assert not report.is_valid
        assert report.by_rule("outlet-count")
        assert report.by_rule("strong-connectivity")
        with pytest.raises(TrafficError):
            assert_valid(system)

    def test_bad_adjacency_reported(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        components = designed.traffic_system.components
        paths = [
            (c.name, [floorplan.cell_of(v) for v in c.vertices]) for c in components
        ]
        # Connect two components whose exit/entry are far apart.
        bogus = [(components[0].name, components[-1].name)]
        original = [
            (components[i].name, components[j].name)
            for i, j in designed.traffic_system.edges()
        ]
        system = TrafficSystem.from_cell_paths(warehouse, paths, original + bogus)
        report = validate(system)
        adjacency_rules = report.by_rule("connection-adjacency")
        outlet_rules = report.by_rule("outlet-count")
        assert adjacency_rules or outlet_rules

    def test_coverage_violation_reported(self, designed):
        # Drop one shelving-row component: its shelf-access vertices become
        # uncovered.
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        keep = [c for c in designed.traffic_system.components if not c.is_shelving_row]
        paths = [(c.name, [floorplan.cell_of(v) for v in c.vertices]) for c in keep]
        name_set = {c.name for c in keep}
        connections = [
            (designed.traffic_system.component(i).name, designed.traffic_system.component(j).name)
            for i, j in designed.traffic_system.edges()
            if designed.traffic_system.component(i).name in name_set
            and designed.traffic_system.component(j).name in name_set
        ]
        system = TrafficSystem.from_cell_paths(warehouse, paths, connections)
        report = validate(system)
        assert report.by_rule("coverage")


class TestDesignHelpers:
    def test_split_path_round_trip(self):
        cells = [(x, 0) for x in range(13)]
        pieces = split_path(cells, max_length=5)
        assert [c for piece in pieces for c in piece] == cells
        assert all(2 <= len(piece) <= 5 for piece in pieces)

    def test_split_path_short_path_untouched(self):
        cells = [(x, 0) for x in range(4)]
        assert split_path(cells, max_length=10) == [cells]

    def test_split_path_bad_arguments(self):
        with pytest.raises(TrafficError):
            split_path([(0, 0), (1, 0), (2, 0)], max_length=1)

    def test_chain_connections(self):
        assert chain_connections(["a", "b", "c"]) == [("a", "b"), ("b", "c")]
        assert chain_connections(["solo"]) == []

    def test_auto_connections_matches_explicit_on_toy(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        paths = [
            (c.name, [floorplan.cell_of(v) for v in c.vertices])
            for c in designed.traffic_system.components
        ]
        derived = set(auto_connections(warehouse, paths))
        explicit = {
            (designed.traffic_system.component(i).name, designed.traffic_system.component(j).name)
            for i, j in designed.traffic_system.edges()
        }
        # Every explicitly designed connection is discoverable from adjacency.
        assert explicit <= derived

    def test_build_traffic_system_auto(self, designed):
        warehouse = designed.warehouse
        floorplan = warehouse.floorplan
        paths = [
            (c.name, [floorplan.cell_of(v) for v in c.vertices])
            for c in designed.traffic_system.components
        ]
        system = build_traffic_system(warehouse, paths, connections=None, validate_rules=False)
        assert system.num_components == designed.traffic_system.num_components
