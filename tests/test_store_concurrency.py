"""Concurrent-appender stress tests for the JSONL ResultStore.

The serving layer appends to the persistent cache tier from many handler
threads, and independent sweep/serve processes may share one result file —
so ``ResultStore.append`` must never interleave partial lines.  The
multi-process test hammers one file from spawned workers and asserts every
line parses and nothing was lost; the thread test does the same in-process.
"""

from __future__ import annotations

import json
import threading
from multiprocessing import get_context
from pathlib import Path

from repro.experiments import ResultStore, RunRecord, ScenarioSpec, load_records

BASE = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


def _record(writer: int, index: int) -> RunRecord:
    spec = ScenarioSpec(
        **{f: getattr(BASE, f) for f in BASE.__dataclass_fields__}
        | {"seed": writer, "name": f"stress/w{writer}-{index}"}
    )
    # A long message makes torn writes overwhelmingly likely to corrupt a
    # line if the locking were broken.
    return RunRecord(spec=spec, status="ok", message="x" * 512, num_agents=index)


def append_many(path: str, writer: int, count: int) -> None:
    """Worker entry point (module-level: must be picklable under spawn)."""
    store = ResultStore(path, load_existing=False)
    for index in range(count):
        store.append(_record(writer, index))


class TestMultiProcessAppend:
    def test_spawned_processes_never_tear_lines(self, tmp_path):
        path = tmp_path / "stress.jsonl"
        writers, per_writer = 4, 25
        context = get_context("spawn")
        processes = [
            context.Process(target=append_many, args=(str(path), writer, per_writer))
            for writer in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == writers * per_writer
        # Every line is a complete, parseable record document.
        for line in lines:
            document = json.loads(line)
            assert document["schema"] == "experiment-run"
        # And the store reloads the lot.
        records = load_records(path)
        assert len(records) == writers * per_writer
        # No record was lost: every (writer, index) pair is present.
        labels = {record.spec.name for record in records}
        assert len(labels) == writers * per_writer


class TestMultiThreadAppend:
    def test_threads_share_one_store_instance(self, tmp_path):
        path = tmp_path / "threads.jsonl"
        store = ResultStore(path, load_existing=False)
        writers, per_writer = 8, 20

        def work(writer: int) -> None:
            for index in range(per_writer):
                store.append(_record(writer, index))

        threads = [threading.Thread(target=work, args=(w,)) for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(store) == writers * per_writer
        assert len(load_records(path)) == writers * per_writer
        # The in-memory index agrees with the file.
        assert len(store.scenario_ids()) == writers  # one id per seed


class TestRefresh:
    """Tailing lines appended by *other* handles — the pre-fork warm layer."""

    def test_refresh_sees_foreign_appends(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        reader = ResultStore(path)
        writer = ResultStore(path)  # stands in for another worker process
        assert reader.refresh() == 0  # nothing new: stat short-circuit
        record = _record(writer=1, index=0)
        writer.append(record)
        assert reader.by_id(record.scenario_id) == []
        assert reader.refresh() == 1
        fetched = reader.by_id(record.scenario_id)
        assert len(fetched) == 1 and fetched[0].to_dict() == record.to_dict()
        # Idempotent: a second refresh with no new bytes adds nothing.
        assert reader.refresh() == 0

    def test_own_appends_are_never_double_counted(self, tmp_path):
        path = tmp_path / "own.jsonl"
        store = ResultStore(path)
        record = _record(writer=2, index=0)
        store.append(record)
        # append() indexes in memory but does not advance the tail offset, so
        # refresh re-reads the line — and must recognise it as already known.
        assert store.refresh() == 0
        assert len(store.by_id(record.scenario_id)) == 1
        assert len(store) == 1

    def test_refresh_stops_at_a_partial_line(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        reader = ResultStore(path)
        complete = json.dumps(_record(3, 0).to_dict(), sort_keys=True) + "\n"
        partial = json.dumps(_record(3, 1).to_dict(), sort_keys=True)
        half = partial[: len(partial) // 2]
        with path.open("a") as handle:
            handle.write(complete + half)  # a writer is mid-append
        assert reader.refresh() == 1  # only the complete line
        with path.open("a") as handle:
            handle.write(partial[len(half):] + "\n")
        assert reader.refresh() == 1  # the finished line arrives intact
        assert len(reader) == 2

    def test_refresh_skips_foreign_garbage_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        reader = ResultStore(path)
        good = json.dumps(_record(4, 0).to_dict(), sort_keys=True)
        with path.open("a") as handle:
            handle.write('{"schema": "something-else"}\n')
            handle.write("not json at all\n")
            handle.write(good + "\n")
        assert reader.refresh() == 1
        assert len(reader) == 1

    def test_two_caches_share_one_file_as_a_warm_tier(self, tmp_path):
        """Worker A's completion is worker B's store hit — via refresh()."""
        from repro.service import ResultCache

        path = tmp_path / "warm.jsonl"
        cache_a = ResultCache(capacity=8, store=ResultStore(path))
        cache_b = ResultCache(capacity=8, store=ResultStore(path))
        record = _record(writer=5, index=0)
        scenario_id = record.scenario_id
        flight, leader = cache_a.lease(scenario_id)
        assert leader
        cache_a.complete(scenario_id, flight, record)
        # B never saw the computation; its store handle tails the new line.
        fetched, tier = cache_b.get(scenario_id)
        assert fetched is not None and tier == "store"
        # Promoted into B's memory: the next lookup is a plain memory hit.
        assert cache_b.get(scenario_id)[1] == "hit"
