"""Concurrent-appender stress tests for the JSONL ResultStore.

The serving layer appends to the persistent cache tier from many handler
threads, and independent sweep/serve processes may share one result file —
so ``ResultStore.append`` must never interleave partial lines.  The
multi-process test hammers one file from spawned workers and asserts every
line parses and nothing was lost; the thread test does the same in-process.
"""

from __future__ import annotations

import json
import threading
from multiprocessing import get_context
from pathlib import Path

from repro.experiments import ResultStore, RunRecord, ScenarioSpec, load_records

BASE = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


def _record(writer: int, index: int) -> RunRecord:
    spec = ScenarioSpec(
        **{f: getattr(BASE, f) for f in BASE.__dataclass_fields__}
        | {"seed": writer, "name": f"stress/w{writer}-{index}"}
    )
    # A long message makes torn writes overwhelmingly likely to corrupt a
    # line if the locking were broken.
    return RunRecord(spec=spec, status="ok", message="x" * 512, num_agents=index)


def append_many(path: str, writer: int, count: int) -> None:
    """Worker entry point (module-level: must be picklable under spawn)."""
    store = ResultStore(path, load_existing=False)
    for index in range(count):
        store.append(_record(writer, index))


class TestMultiProcessAppend:
    def test_spawned_processes_never_tear_lines(self, tmp_path):
        path = tmp_path / "stress.jsonl"
        writers, per_writer = 4, 25
        context = get_context("spawn")
        processes = [
            context.Process(target=append_many, args=(str(path), writer, per_writer))
            for writer in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == writers * per_writer
        # Every line is a complete, parseable record document.
        for line in lines:
            document = json.loads(line)
            assert document["schema"] == "experiment-run"
        # And the store reloads the lot.
        records = load_records(path)
        assert len(records) == writers * per_writer
        # No record was lost: every (writer, index) pair is present.
        labels = {record.spec.name for record in records}
        assert len(labels) == writers * per_writer


class TestMultiThreadAppend:
    def test_threads_share_one_store_instance(self, tmp_path):
        path = tmp_path / "threads.jsonl"
        store = ResultStore(path, load_existing=False)
        writers, per_writer = 8, 20

        def work(writer: int) -> None:
            for index in range(per_writer):
                store.append(_record(writer, index))

        threads = [threading.Thread(target=work, args=(w,)) for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(store) == writers * per_writer
        assert len(load_records(path)) == writers * per_writer
        # The in-memory index agrees with the file.
        assert len(store.scenario_ids()) == writers  # one id per seed
