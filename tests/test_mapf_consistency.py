"""Cross-router cost consistency on the catalog presets.

CBS is optimal (sum-of-costs), prioritized planning is merely feasible, and
ECBS(w) is bounded-suboptimal — so on any instance all three solve, the costs
must order as::

    cost(CBS)  <=  cost(prioritized)
    cost(ECBS) <=  w * cost(CBS)

These inequalities are the routers' *contracts*; a refactor of any search
that silently breaks them would skew every benchmark built on top.  The
instances here are deterministic start/goal sets drawn from the catalog
presets' station and shelf-access vertices (the endpoints real routed plans
use).
"""

import pytest

from repro.maps.catalog import fulfillment_center_1_small, sorting_center_small
from repro.mapf import MAPFProblem, solve_cbs, solve_ecbs, solve_prioritized
from repro.mapf.cbs import CBSOptions
from repro.mapf.ecbs import ECBSOptions

SUBOPTIMALITY = 1.5


def _preset_problem(designed, num_agents):
    """A deterministic MAPF instance on a preset: stations -> shelf access."""
    floorplan = designed.warehouse.floorplan
    # Start at the stations, topped up with shelf-access vertices when the
    # preset has fewer stations than the requested team size.
    starts = sorted(floorplan.stations) + sorted(floorplan.shelf_access)
    starts = list(dict.fromkeys(starts))[:num_agents]
    goals = [
        g for g in sorted(floorplan.shelf_access, reverse=True) if g not in starts
    ]
    pairs = list(zip(starts, goals[:num_agents]))
    assert len(pairs) == num_agents, "preset too small for the requested team"
    return MAPFProblem.from_pairs(floorplan, pairs)


PRESETS = (
    ("sorting-center-small", lambda: sorting_center_small().designed, 2),
    ("fulfillment-1-small", fulfillment_center_1_small, 3),
)


@pytest.mark.parametrize("name,build,num_agents", PRESETS, ids=[p[0] for p in PRESETS])
def test_router_cost_ordering_on_catalog_presets(name, build, num_agents):
    problem = _preset_problem(build(), num_agents)

    cbs = solve_cbs(problem, CBSOptions(max_nodes=50_000))
    assert cbs is not None, f"CBS failed on {name}"
    assert cbs.is_valid()

    ecbs = solve_ecbs(
        problem, ECBSOptions(suboptimality=SUBOPTIMALITY, max_nodes=50_000)
    )
    assert ecbs is not None, f"ECBS failed on {name}"
    assert ecbs.is_valid()

    # ECBS's bounded-suboptimality contract against the CBS optimum.
    assert ecbs.sum_of_costs <= SUBOPTIMALITY * cbs.sum_of_costs

    prioritized = solve_prioritized(problem)
    if prioritized is not None:  # incomplete solver: absence is legitimate
        assert prioritized.is_valid()
        # CBS optimality: nothing beats it.
        assert cbs.sum_of_costs <= prioritized.sum_of_costs


def test_cbs_is_no_worse_than_prioritized_under_congestion():
    """A deliberately congested instance (agents crossing a shared aisle)."""
    designed = sorting_center_small().designed
    floorplan = designed.warehouse.floorplan
    stations = sorted(floorplan.stations)
    # Swap-shaped demand: station agents exchange ends of the station row.
    pairs = [(stations[0], stations[-1]), (stations[-1], stations[0])]
    problem = MAPFProblem.from_pairs(floorplan, pairs)
    cbs = solve_cbs(problem, CBSOptions(max_nodes=50_000))
    assert cbs is not None and cbs.is_valid()
    prioritized = solve_prioritized(problem)
    if prioritized is not None:
        assert cbs.sum_of_costs <= prioritized.sum_of_costs
