"""Tests for the MILP backends (HiGHS, branch-and-bound) and the dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.solver import (
    BnBOptions,
    ConstraintModel,
    SolveStatus,
    solve_branch_and_bound,
    solve_model,
    solve_with_scipy,
)
from repro.solver.expressions import LinearExpr


def knapsack_model():
    """0/1 knapsack: values (10, 13, 7), weights (3, 4, 2), capacity 6 -> 20.

    Two optima exist ({0, 2} and {1, 2}); item 2 is in both.
    """
    model = ConstraintModel("knapsack")
    x = [model.add_var(f"x{i}", lb=0, ub=1, integer=True) for i in range(3)]
    model.add_constraint(3 * x[0] + 4 * x[1] + 2 * x[2] <= 6)
    model.set_objective(10 * x[0] + 13 * x[1] + 7 * x[2], sense="max")
    return model, x


def integer_flow_model():
    """A tiny conservation-style ILP with a unique optimum."""
    model = ConstraintModel("flow")
    a = model.add_var("a", lb=0, ub=5, integer=True)
    b = model.add_var("b", lb=0, ub=5, integer=True)
    c = model.add_var("c", lb=0, ub=5, integer=True)
    model.add_constraint(a + b == 4)
    model.add_constraint(b + c == 3)
    model.add_constraint(a >= 1)
    model.set_objective(a + 2 * b + 3 * c)
    return model


class TestScipyBackend:
    def test_knapsack_optimum(self):
        model, x = knapsack_model()
        result = solve_with_scipy(model)
        assert result.status == SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(20.0)
        assert result.int_value(x[2]) == 1

    def test_infeasible_detected(self):
        model = ConstraintModel()
        v = model.add_var("v", lb=0, ub=1, integer=True)
        model.add_constraint(v >= 2)
        result = solve_with_scipy(model)
        assert result.status == SolveStatus.INFEASIBLE

    def test_pure_lp_path(self):
        model = ConstraintModel()
        x = model.add_var("x", lb=0, ub=4)
        y = model.add_var("y", lb=0, ub=4)
        model.add_constraint(x + y <= 6)
        model.set_objective(x + 2 * y, sense="max")
        result = solve_with_scipy(model)
        assert result.status == SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(10.0)

    def test_named_dict(self):
        model, _ = knapsack_model()
        result = solve_with_scipy(model)
        named = result.as_named_dict()
        assert set(named) == {"x0", "x1", "x2"}


class TestBranchAndBound:
    def test_knapsack_optimum(self):
        model, _ = knapsack_model()
        result = solve_branch_and_bound(model)
        assert result.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
        assert result.objective == pytest.approx(20.0)

    def test_integer_flow(self):
        model = integer_flow_model()
        result = solve_branch_and_bound(model)
        assert result.is_feasible
        reference = solve_with_scipy(model)
        assert result.objective == pytest.approx(reference.objective)

    def test_infeasible(self):
        model = ConstraintModel()
        v = model.add_var("v", lb=0, ub=3, integer=True)
        model.add_constraint(2 * v == 5)  # no integer solution
        result = solve_branch_and_bound(model)
        assert result.status == SolveStatus.INFEASIBLE

    def test_first_solution_mode(self):
        model, _ = knapsack_model()
        result = solve_branch_and_bound(model, BnBOptions(first_solution=True))
        assert result.is_feasible
        assert not model.check_assignment(result.values)

    def test_node_limit_reported(self):
        model, _ = knapsack_model()
        result = solve_branch_and_bound(model, BnBOptions(max_nodes=1))
        # With a single node the root relaxation may already be integral;
        # either way the result must be sane.
        assert result.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.LIMIT,
        )

    def test_simplex_engine(self):
        model = integer_flow_model()
        result = solve_branch_and_bound(model, BnBOptions(lp_engine="simplex"))
        assert result.is_feasible
        assert not model.check_assignment(result.values)

    def test_stats_populated(self):
        model, _ = knapsack_model()
        result = solve_branch_and_bound(model)
        assert result.stats["nodes"] >= 1
        assert result.stats["seconds"] >= 0


class TestDispatcher:
    def test_unknown_backend_rejected(self):
        model, _ = knapsack_model()
        with pytest.raises(ValueError):
            solve_model(model, backend="cplex")

    @pytest.mark.parametrize("backend", ["auto", "highs", "bnb", "simplex-bnb"])
    def test_backends_agree_on_knapsack(self, backend):
        model, _ = knapsack_model()
        result = solve_model(model, backend=backend)
        assert result.is_feasible
        assert result.objective == pytest.approx(20.0)


@st.composite
def random_ilp(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=1, max_value=3))
    c = [draw(st.integers(min_value=-4, max_value=4)) for _ in range(n)]
    rows = [
        [draw(st.integers(min_value=-2, max_value=3)) for _ in range(n)]
        for _ in range(m)
    ]
    rhs = [draw(st.integers(min_value=0, max_value=10)) for _ in range(m)]
    ub = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n)]
    return c, rows, rhs, ub


class TestBnBAgainstHiGHS:
    @settings(max_examples=40, deadline=None)
    @given(random_ilp())
    def test_same_optimum_as_milp(self, ilp):
        c, rows, rhs, ub = ilp
        n = len(c)
        model = ConstraintModel()
        xs = [model.add_var(f"x{i}", lb=0, ub=ub[i], integer=True) for i in range(n)]
        for row, b in zip(rows, rhs):
            model.add_constraint(LinearExpr.sum(coef * x for coef, x in zip(row, xs)) <= b)
        model.set_objective(LinearExpr.sum(coef * x for coef, x in zip(c, xs)))

        ours = solve_branch_and_bound(model)
        a = np.array(rows, dtype=float)
        ref = milp(
            c=np.array(c, dtype=float),
            constraints=LinearConstraint(a, -np.inf * np.ones(len(rhs)), np.array(rhs, dtype=float)),
            bounds=Bounds(np.zeros(n), np.array(ub, dtype=float)),
            integrality=np.ones(n),
        )
        assert ref.status == 0  # box-bounded, always feasible (x = 0 unless rhs < 0)
        assert ours.is_feasible
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
