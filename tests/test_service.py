"""Unit tests of the serving core: cache tiers, single-flight, pool, service.

The deterministic concurrency tests replace the process pool with an
in-test fake whose futures are completed by hand, so leader/follower
interleavings are forced rather than raced.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro.experiments import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultStore,
    RunRecord,
    ScenarioSpec,
)
from repro.service import (
    PoolSaturated,
    ResultCache,
    ServiceConfig,
    ServicePool,
    ServiceRequest,
    ServiceRequestError,
    ServiceResponse,
    SolveService,
)

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


def record_for(spec: ScenarioSpec, status: str = STATUS_OK, **kwargs) -> RunRecord:
    return RunRecord(spec=spec, status=status, **kwargs)


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        record, tier = cache.get(TINY.scenario_id)
        assert record is None and tier == "miss"
        flight, leader = cache.lease(TINY.scenario_id)
        assert leader
        cache.complete(TINY.scenario_id, flight, record_for(TINY))
        record, tier = cache.get(TINY.scenario_id)
        assert record is not None and tier == "hit"
        assert cache.stats["hits_memory"] == 1 and cache.stats["misses"] == 1

    def test_lru_eviction(self):
        # One shard == one global LRU (multi-shard eviction semantics are
        # covered in tests/test_service_sharding.py).
        cache = ResultCache(capacity=2, shards=1)
        specs = [
            TINY,
            ScenarioSpec(**{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}),
            ScenarioSpec(**{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 8}),
        ]
        for spec in specs:
            flight, _ = cache.lease(spec.scenario_id)
            cache.complete(spec.scenario_id, flight, record_for(spec))
        assert len(cache) == 2
        # The first-inserted entry was evicted; the last two are resident.
        assert cache.get(specs[0].scenario_id)[0] is None
        assert cache.get(specs[2].scenario_id)[0] is not None

    @pytest.mark.parametrize("status", [STATUS_TIMEOUT, STATUS_ERROR])
    def test_nondeterministic_outcomes_never_cached(self, status):
        cache = ResultCache(capacity=4)
        flight, _ = cache.lease(TINY.scenario_id)
        cache.complete(TINY.scenario_id, flight, record_for(TINY, status=status, message="x"))
        # The follower still receives the record ...
        assert flight.record is not None and flight.record.status == status
        # ... but a later request recomputes.
        assert cache.get(TINY.scenario_id) == (None, "miss")

    def test_single_flight_lease_and_coalesce(self):
        cache = ResultCache(capacity=4)
        flight, leader = cache.lease(TINY.scenario_id)
        assert leader
        follower_flight, follower_leader = cache.lease(TINY.scenario_id)
        assert not follower_leader and follower_flight is flight
        assert cache.stats["coalesced"] == 1
        cache.complete(TINY.scenario_id, flight, record_for(TINY))
        assert flight.event.is_set() and flight.record.ok
        # The flight is closed: the next lease opens a fresh one.
        _, leader_again = cache.lease(TINY.scenario_id)
        assert leader_again

    def test_abandon_wakes_followers_empty_handed(self):
        cache = ResultCache(capacity=4)
        flight, _ = cache.lease(TINY.scenario_id)
        cache.abandon(TINY.scenario_id, flight)
        assert flight.event.is_set() and flight.record is None

    def test_persistent_tier_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(record_for(TINY, status=STATUS_INFEASIBLE, message="no stock"))
        # A fresh cache warm-boots from the file ...
        cache = ResultCache(capacity=4, store=ResultStore(path))
        record, tier = cache.get(TINY.scenario_id)
        assert record.status == STATUS_INFEASIBLE and tier == "hit"
        # ... and completions persist for the next boot.
        other = ScenarioSpec(
            **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}
        )
        flight, _ = cache.lease(other.scenario_id)
        cache.complete(other.scenario_id, flight, record_for(other))
        reloaded = ResultCache(capacity=4, store=ResultStore(path))
        assert reloaded.get(other.scenario_id)[0] is not None

    def test_store_tier_promotes_on_memory_miss(self, tmp_path):
        path = tmp_path / "results.jsonl"
        seed_store = ResultStore(path)
        seed_store.append(record_for(TINY))
        cache = ResultCache(capacity=4, store=ResultStore(path))
        # Evict the memory tier by hand, then look up again.
        for shard in cache._shards:
            shard.memory.clear()
        record, tier = cache.get(TINY.scenario_id)
        assert record is not None and tier == "store"
        assert cache.stats["hits_store"] == 1


# ---------------------------------------------------------------------------
# ServicePool (admission control only; compute goes through real spawn
# workers in the benchmark and HTTP tests)
# ---------------------------------------------------------------------------

class TestServicePoolValidation:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ServicePool(workers=0)
        with pytest.raises(ValueError):
            ServicePool(workers=1, max_pending=-1)

    def test_retry_after_positive(self):
        pool = ServicePool(workers=1, max_pending=0)
        try:
            assert pool._retry_after() > 0
        finally:
            pool.drain(timeout=10)

    def test_drain_rejects_new_submissions(self):
        pool = ServicePool(workers=1, max_pending=0)
        assert pool.drain(timeout=10)
        with pytest.raises(PoolSaturated):
            pool.submit(TINY.to_dict())
        assert pool.stats["rejected"] == 1


# ---------------------------------------------------------------------------
# SolveService over a hand-driven fake pool
# ---------------------------------------------------------------------------

class FakePool:
    """Admission-compatible pool whose futures the test completes by hand."""

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self.futures = []
        self.workers = 1
        self.max_pending = capacity - 1
        self.stats = {"submitted": 0, "completed": 0, "rejected": 0}
        self._draining = False

    @property
    def draining(self):
        return self._draining

    @property
    def in_flight(self):
        return len([f for f in self.futures if not f.done()])

    def submit(self, document, timeout_seconds=None):
        if self.in_flight >= self.capacity:
            self.stats["rejected"] += 1
            raise PoolSaturated("fake pool full", retry_after_seconds=1.0)
        future = Future()
        future.document = document
        self.futures.append(future)
        self.stats["submitted"] += 1
        return future

    def warm_up(self, timeout=None):
        pass

    def drain(self, timeout=None):
        self._draining = True
        return all(f.done() for f in self.futures)

    def snapshot(self):
        return {**self.stats, "in_flight": self.in_flight, "workers": 1,
                "max_pending": self.max_pending, "draining": float(self._draining)}


@pytest.fixture()
def service():
    svc = SolveService(ServiceConfig(workers=1, warm_up=False, coalesce_wait_seconds=30.0))
    svc.pool = FakePool()
    return svc


def complete_next(svc: SolveService, spec: ScenarioSpec, status: str = STATUS_OK) -> None:
    """Finish the oldest unfinished fake future with a run-record document."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        pending = [f for f in svc.pool.futures if not f.done()]
        if pending:
            pending[0].set_result(record_for(spec, status=status).to_dict())
            return
        time.sleep(0.005)
    raise AssertionError("no pending fake future appeared")


class TestSolveService:
    def test_miss_compute_then_hit(self, service):
        request = ServiceRequest(scenario=TINY)
        worker = threading.Thread(
            target=lambda: setattr(service, "_last", service.resolve(request))
        )
        worker.start()
        complete_next(service, TINY)
        worker.join(timeout=10)
        response = service._last
        assert response.state == STATUS_OK and response.cache == "miss"
        assert response.record["scenario_id"] == TINY.scenario_id
        # Second request is a pure memory hit: no new pool submission.
        hit = service.resolve(ServiceRequest(scenario=TINY))
        assert hit.state == STATUS_OK and hit.cache == "hit"
        assert service.pool.stats["submitted"] == 1

    def test_fresh_bypasses_cache_but_updates_it(self, service):
        first = threading.Thread(
            target=lambda: service.resolve(ServiceRequest(scenario=TINY))
        )
        first.start()
        complete_next(service, TINY)
        first.join(timeout=10)
        responses = []
        second = threading.Thread(
            target=lambda: responses.append(
                service.resolve(ServiceRequest(scenario=TINY, fresh=True))
            )
        )
        second.start()
        complete_next(service, TINY)
        second.join(timeout=10)
        assert responses[0].cache == "bypass"
        assert service.pool.stats["submitted"] == 2

    def test_concurrent_identical_requests_coalesce(self, service):
        """N identical concurrent requests trigger exactly one computation."""
        responses = []
        lock = threading.Lock()

        def call():
            response = service.resolve(ServiceRequest(scenario=TINY))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=call) for _ in range(5)]
        for thread in threads:
            thread.start()
        # Wait until every follower joined the leader's flight.
        deadline = time.monotonic() + 5.0
        while service.cache.stats["coalesced"] < 4 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.cache.stats["coalesced"] == 4
        complete_next(service, TINY)
        for thread in threads:
            thread.join(timeout=10)
        assert len(responses) == 5
        assert service.pool.stats["submitted"] == 1
        assert sum(1 for r in responses if r.cache == "miss") == 1
        assert sum(1 for r in responses if r.cache == "coalesced") == 4
        assert all(r.state == STATUS_OK for r in responses)

    def test_saturation_is_an_explicit_rejection(self, service):
        service.pool.capacity = 0
        response = service.resolve(ServiceRequest(scenario=TINY))
        assert response.state == "rejected"
        assert response.retry_after_seconds and response.retry_after_seconds > 0
        assert response.http_status == 429
        # The abandoned flight did not wedge the id: a later request leads again.
        _, leader = service.cache.lease(TINY.scenario_id)
        assert leader

    def test_draining_rejects_with_503(self, service):
        service.begin_drain()
        response = service.resolve(ServiceRequest(scenario=TINY))
        assert response.state == "rejected" and response.http_status == 503

    def test_submit_status_wait_lifecycle(self, service):
        pending = service.submit(ServiceRequest(scenario=TINY))
        assert pending.state == "pending" and pending.request_id
        assert service.status("nope") is None
        complete_next(service, TINY)
        final = service.wait(pending.request_id, timeout=10)
        assert final.state == STATUS_OK and final.request_id == pending.request_id
        assert service.status(pending.request_id).state == STATUS_OK

    def test_worker_failure_becomes_error_record(self, service):
        worker = threading.Thread(
            target=lambda: setattr(service, "_last", service.resolve(ServiceRequest(scenario=TINY)))
        )
        worker.start()
        deadline = time.monotonic() + 5.0
        while not service.pool.futures and time.monotonic() < deadline:
            time.sleep(0.005)
        service.pool.futures[0].set_exception(RuntimeError("worker exploded"))
        worker.join(timeout=10)
        response = service._last
        assert response.state == STATUS_ERROR
        assert "worker exploded" in response.message
        # Failures are not cached: the next request recomputes.
        assert service.cache.get(TINY.scenario_id) == (None, "miss")

    def test_metrics_and_health_shape(self, service):
        health = service.health()
        assert health["status"] == "ok" and health["workers"] == 1
        metrics = service.metrics()
        assert set(metrics) >= {"requests", "cache", "pool", "latency_seconds", "draining"}
        assert set(metrics["latency_seconds"]) == {"cold", "warm", "coalesced"}

    def test_batch_preserves_input_order(self, service):
        other = ScenarioSpec(
            **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__} | {"units": 6}
        )
        requests = [ServiceRequest(scenario=TINY), ServiceRequest(scenario=other)]
        collected = []

        def consume():
            collected.extend(service.resolve_batch(requests))

        consumer = threading.Thread(target=consume)
        consumer.start()
        complete_next(service, TINY)
        complete_next(service, other)
        consumer.join(timeout=10)
        assert [r.scenario_id for r in collected] == [TINY.scenario_id, other.scenario_id]
        assert all(r.state == STATUS_OK for r in collected)


# ---------------------------------------------------------------------------
# API validation
# ---------------------------------------------------------------------------

class TestApiValidation:
    def test_request_rejects_nonpositive_timeout(self):
        with pytest.raises(ServiceRequestError):
            ServiceRequest(scenario=TINY, timeout_seconds=0.0)

    def test_response_rejects_unknown_state(self):
        with pytest.raises(ServiceRequestError):
            ServiceResponse(state="weird")

    def test_response_rejects_unknown_cache_outcome(self):
        with pytest.raises(ServiceRequestError):
            ServiceResponse(state=STATUS_OK, cache="disk")

    def test_http_status_mapping(self):
        assert ServiceResponse(state=STATUS_OK).http_status == 200
        assert ServiceResponse(state=STATUS_INFEASIBLE).http_status == 200
        assert ServiceResponse(state="pending").http_status == 202
        assert ServiceResponse(state="invalid").http_status == 400
        assert ServiceResponse(state="rejected").http_status == 429
        assert ServiceResponse(state="rejected", info={"draining": 1.0}).http_status == 503
