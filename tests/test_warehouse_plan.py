"""Tests for plans, the feasibility validator, and workload servicing."""

import numpy as np
import pytest

from repro.warehouse import (
    FloorplanGraph,
    GridMap,
    LocationMatrix,
    Plan,
    PlanError,
    PlanValidator,
    ProductCatalog,
    Warehouse,
    Workload,
    WSPInstance,
    WarehouseError,
    build_warehouse,
    empty_plan,
)

FIG1_ASCII = """
.....
.S.S.
.....
@T@T@
""".strip("\n")


def fig1_warehouse(units=10):
    grid = GridMap.from_ascii(FIG1_ASCII, name="fig1")
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog.numbered(2)
    stock = LocationMatrix(catalog, floorplan)
    stock.place(1, floorplan.vertex_at((0, 2)), units)
    stock.place(2, floorplan.vertex_at((4, 2)), units)
    return Warehouse(floorplan=floorplan, catalog=catalog, stock=stock, name="fig1")


def path_plan(warehouse, cells, carrying):
    """Build a 1-agent plan from cell coordinates and a carrying sequence."""
    floorplan = warehouse.floorplan
    positions = np.array([[floorplan.vertex_at(c) for c in cells]])
    return Plan(positions=positions, carrying=np.array([carrying]), warehouse=warehouse)


class TestWarehouseModel:
    def test_validate_ok(self):
        warehouse = fig1_warehouse()
        warehouse.validate()
        assert "fig1" in warehouse.summary()

    def test_products_at(self):
        warehouse = fig1_warehouse()
        west = warehouse.floorplan.vertex_at((0, 2))
        station = warehouse.floorplan.vertex_at((1, 0))
        assert warehouse.products_at(west) == (1,)
        assert warehouse.products_at(station) == ()

    def test_total_stock(self):
        warehouse = fig1_warehouse(units=7)
        assert warehouse.total_stock() == {1: 7, 2: 7}

    def test_missing_station_rejected(self):
        grid = GridMap.from_ascii("...\n.S.\n...")
        warehouse = build_warehouse(grid, num_products=1)
        with pytest.raises(WarehouseError):
            warehouse.validate()

    def test_wsp_instance_validation(self):
        warehouse = fig1_warehouse(units=3)
        workload = Workload.from_mapping(warehouse.catalog, {1: 2})
        WSPInstance(warehouse, workload, horizon=100).validate()
        over = Workload.from_mapping(warehouse.catalog, {1: 5})
        with pytest.raises(WarehouseError):
            WSPInstance(warehouse, over, horizon=100).validate()

    def test_wsp_instance_rejects_bad_horizon(self):
        warehouse = fig1_warehouse()
        workload = Workload.uniform(warehouse.catalog, 2)
        with pytest.raises(WarehouseError):
            WSPInstance(warehouse, workload, horizon=0)

    def test_wsp_instance_rejects_wrong_catalog_size(self):
        warehouse = fig1_warehouse()
        workload = Workload((1, 1, 1))
        with pytest.raises(WarehouseError):
            WSPInstance(warehouse, workload, horizon=10)


class TestPlanBasics:
    def test_shape_validation(self):
        warehouse = fig1_warehouse()
        with pytest.raises(PlanError):
            Plan(np.zeros((2, 3)), np.zeros((2, 4)), warehouse)
        with pytest.raises(PlanError):
            Plan(np.zeros(3), np.zeros(3), warehouse)

    def test_empty_plan_is_feasible(self):
        warehouse = fig1_warehouse()
        plan = empty_plan(warehouse, num_agents=3, horizon=5)
        assert PlanValidator(warehouse).is_feasible(plan)
        assert plan.total_delivered() == 0

    def test_truncated(self):
        warehouse = fig1_warehouse()
        plan = empty_plan(warehouse, num_agents=2, horizon=6)
        assert plan.truncated(3).horizon == 3
        with pytest.raises(PlanError):
            plan.truncated(0)

    def test_state_accessor(self):
        warehouse = fig1_warehouse()
        plan = empty_plan(warehouse, num_agents=1, horizon=2)
        vertex, product = plan.state(0, 0)
        assert product == 0


class TestDeliveryCounting:
    def test_single_delivery_counted(self):
        warehouse = fig1_warehouse()
        # Agent: shelf access (0,2) -> (0,1) -> (1,1) -> (1,0)=station, drops.
        cells = [(0, 2), (0, 2), (0, 1), (1, 1), (1, 0), (1, 0)]
        carrying = [0, 1, 1, 1, 1, 0]
        plan = path_plan(warehouse, cells, carrying)
        report = PlanValidator(warehouse).validate(plan)
        assert report.is_feasible, [str(v) for v in report.violations]
        assert report.delivered == {1: 1}
        assert report.pickups == {1: 1}
        assert plan.delivered_units() == {1: 1}
        assert plan.services(Workload.from_mapping(warehouse.catalog, {1: 1}))
        assert not plan.services(Workload.from_mapping(warehouse.catalog, {1: 2}))

    def test_initially_loaded_agent_can_deliver(self):
        warehouse = fig1_warehouse()
        cells = [(1, 1), (1, 0), (1, 0)]
        carrying = [2, 2, 0]
        plan = path_plan(warehouse, cells, carrying)
        report = PlanValidator(warehouse).validate(plan)
        assert report.is_feasible
        assert report.delivered == {2: 1}


class TestFeasibilityViolations:
    def test_teleport_detected(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(0, 2), (4, 2)], [0, 0])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "movement" for v in report.violations)

    def test_waiting_and_moving_ok(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(0, 2), (0, 2), (0, 1)], [0, 0, 0])
        assert PlanValidator(warehouse).is_feasible(plan)

    def test_vertex_collision_detected(self):
        warehouse = fig1_warehouse()
        v = warehouse.floorplan.vertex_at((2, 1))
        positions = np.array([[v, v], [v, v]])
        carrying = np.zeros((2, 2), dtype=int)
        plan = Plan(positions, carrying, warehouse)
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "vertex-collision" for v in report.violations)

    def test_edge_swap_detected(self):
        warehouse = fig1_warehouse()
        a = warehouse.floorplan.vertex_at((2, 1))
        b = warehouse.floorplan.vertex_at((3, 1))
        positions = np.array([[a, b], [b, a]])
        carrying = np.zeros((2, 2), dtype=int)
        plan = Plan(positions, carrying, warehouse)
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "edge-collision" for v in report.violations)

    def test_following_is_not_a_collision(self):
        warehouse = fig1_warehouse()
        a = warehouse.floorplan.vertex_at((2, 1))
        b = warehouse.floorplan.vertex_at((3, 1))
        c = warehouse.floorplan.vertex_at((4, 1))
        positions = np.array([[b, c], [a, b]])
        carrying = np.zeros((2, 2), dtype=int)
        plan = Plan(positions, carrying, warehouse)
        assert PlanValidator(warehouse).is_feasible(plan)

    def test_pickup_away_from_shelf_detected(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(2, 1), (2, 1)], [0, 1])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "pickup" for v in report.violations)

    def test_pickup_of_wrong_product_detected(self):
        warehouse = fig1_warehouse()
        # (0, 2) stocks product 1, not product 2.
        plan = path_plan(warehouse, [(0, 2), (0, 2)], [0, 2])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "pickup" for v in report.violations)

    def test_dropoff_away_from_station_detected(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(0, 2), (0, 2), (0, 1), (0, 1)], [0, 1, 1, 0])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "dropoff" for v in report.violations)

    def test_product_swap_detected(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(0, 2), (0, 2)], [1, 2])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "swap" for v in report.violations)

    def test_inventory_exhaustion_detected(self):
        warehouse = fig1_warehouse(units=1)
        # Two pickups of product 1 at a vertex holding a single unit.
        cells = [(0, 2)] * 5
        positions = np.array([[warehouse.floorplan.vertex_at(c) for c in cells]] * 2)
        carrying = np.array([[0, 1, 1, 1, 1], [0, 0, 1, 1, 1]])
        # Park the second agent on a different vertex to avoid collisions.
        positions[1, :] = warehouse.floorplan.vertex_at((1, 3))
        plan = Plan(positions, carrying, warehouse)
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition in ("inventory", "pickup") for v in report.violations)

    def test_inventory_tracking_can_be_disabled(self):
        # One agent delivers the single stocked unit of product 1, then comes
        # back and picks "the same" unit up again: a violation only when the
        # validator tracks inventory.
        warehouse = fig1_warehouse(units=1)
        cells = [(0, 2), (0, 2), (0, 1), (1, 1), (1, 0), (1, 0), (1, 1), (0, 1), (0, 2), (0, 2)]
        carrying = [0, 1, 1, 1, 1, 0, 0, 0, 0, 1]
        plan = path_plan(warehouse, cells, carrying)
        strict = PlanValidator(warehouse, track_inventory=True).validate(plan)
        assert any(v.condition == "inventory" for v in strict.violations)
        lenient = PlanValidator(warehouse, track_inventory=False).validate(plan)
        assert lenient.is_feasible

    def test_unknown_product_detected(self):
        warehouse = fig1_warehouse()
        plan = path_plan(warehouse, [(0, 2), (0, 2)], [0, 99])
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "product-range" for v in report.violations)

    def test_out_of_range_vertex_detected(self):
        warehouse = fig1_warehouse()
        positions = np.array([[0, 9999]])
        carrying = np.zeros((1, 2), dtype=int)
        plan = Plan(positions, carrying, warehouse)
        report = PlanValidator(warehouse).validate(plan)
        assert any(v.condition == "vertex-range" for v in report.violations)

    def test_violation_cap(self):
        warehouse = fig1_warehouse()
        v = warehouse.floorplan.vertex_at((2, 1))
        positions = np.full((5, 50), v, dtype=int)
        carrying = np.zeros((5, 50), dtype=int)
        plan = Plan(positions, carrying, warehouse)
        report = PlanValidator(warehouse, max_violations=10).validate(plan)
        assert len(report.violations) <= 10
        assert not report.is_feasible
