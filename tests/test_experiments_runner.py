"""Tests for the batch runner (orchestration, isolation, determinism) and the
sweep aggregation / regression-comparison layer."""

import os
from dataclasses import replace

import pytest

from repro.analysis import (
    aggregate_sweep,
    compare_sweeps,
    scaling_rows,
    sweep_report,
    sweep_table,
)
from repro.experiments import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultStore,
    ScenarioError,
    ScenarioSpec,
    SweepOptions,
    execute_scenario,
    run_sweep,
)

#: A tiny suite exercising both kinds plus one structurally infeasible run.
TINY = [
    ScenarioSpec(num_slices=2, shelf_columns=4, num_products=4, units=8, horizon=800),
    ScenarioSpec(
        kind="sorting", shelf_columns=5, shelf_bands=1, num_stations=2, units=6, horizon=800
    ),
    ScenarioSpec(num_products=4, units=500_000, horizon=800, name="infeasible"),
]


@pytest.fixture(scope="module")
def tiny_records():
    return run_sweep(TINY, SweepOptions(workers=1))


def _crash_or_execute(document, timeout_seconds=None, collect_obs=False):
    """Worker stub (module-level so it pickles): hard-kills marked scenarios."""
    if document.get("name") == "hard-crash":
        os._exit(13)
    return execute_scenario(document, timeout_seconds, collect_obs)


class TestRunner:
    def test_statuses_and_payload(self, tiny_records):
        assert [r.status for r in tiny_records] == [
            STATUS_OK,
            STATUS_OK,
            STATUS_INFEASIBLE,
        ]
        for record in tiny_records[:2]:
            assert record.num_agents > 0
            assert record.units_delivered > 0
            assert record.plan_feasible and record.workload_serviced
            assert record.sim["contracts_ok"] == 1.0
            assert "synthesis" in record.timings and "simulation" in record.timings
        failure = tiny_records[2]
        assert "stocked" in failure.message
        assert failure.num_agents == 0 and not failure.sim

    def test_infeasible_run_does_not_kill_the_batch(self, tiny_records):
        # The infeasible scenario sits *before* the end of the list and the
        # other records are still produced — structured capture, no abort.
        assert len(tiny_records) == len(TINY)

    def test_records_are_deterministic(self, tiny_records):
        rerun = run_sweep(TINY, SweepOptions(workers=1))
        assert [r.fingerprint() for r in rerun] == [
            r.fingerprint() for r in tiny_records
        ]

    def test_parallel_matches_serial_in_spec_order(self, tiny_records):
        parallel = run_sweep(TINY, SweepOptions(workers=2))
        assert [r.fingerprint() for r in parallel] == [
            r.fingerprint() for r in tiny_records
        ]

    def test_store_receives_records_in_order(self, tmp_path, tiny_records):
        store = ResultStore(tmp_path / "results.jsonl")
        seen = []
        run_sweep(
            TINY,
            SweepOptions(workers=2),
            store=store,
            progress=lambda record: seen.append(record.scenario_id),
        )
        assert seen == [spec.scenario_id for spec in TINY]
        reloaded = ResultStore(tmp_path / "results.jsonl")
        assert [r.fingerprint() for r in reloaded] == [
            r.fingerprint() for r in tiny_records
        ]

    def test_timeout_is_a_structured_record(self):
        records = run_sweep(TINY[:1], SweepOptions(workers=1, timeout_seconds=1e-4))
        assert records[0].status == STATUS_TIMEOUT
        assert "timeout" in records[0].message

    def test_worker_exception_is_captured_as_error(self):
        # An invalid spec smuggled past the generator must surface as an
        # infeasible/error record, not an exception out of the batch.
        bogus = replace(ScenarioSpec(), kind="fulfillment", shelf_depth=3)
        records = run_sweep([bogus, TINY[0]], SweepOptions(workers=1))
        assert records[0].status == STATUS_INFEASIBLE
        assert records[1].status == STATUS_OK

    def test_unexpected_exception_is_error_status(self, monkeypatch):
        monkeypatch.setattr(
            ScenarioSpec, "build", lambda self: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        document = execute_scenario(TINY[0].to_dict())
        assert document["status"] == STATUS_ERROR
        assert "boom" in document["message"]

    def test_rejects_zero_workers(self):
        with pytest.raises(ScenarioError):
            run_sweep(TINY, SweepOptions(workers=0))

    def test_hard_worker_crash_is_confined_to_its_scenario(self, monkeypatch):
        # A worker that dies without raising (segfault, OOM kill — modelled
        # with os._exit) breaks the process pool; the runner must attribute
        # the crash to one scenario and still run the remaining ones on a
        # fresh pool.  Fork start method so the stubbed worker reaches the
        # children.
        from repro.experiments import runner as runner_module

        monkeypatch.setattr(runner_module, "execute_scenario", _crash_or_execute)
        specs = [replace(TINY[0], name="hard-crash"), TINY[0], TINY[1]]
        records = run_sweep(specs, SweepOptions(workers=2, start_method="fork"))
        assert [r.status for r in records] == [STATUS_ERROR, STATUS_OK, STATUS_OK]
        assert "worker crashed" in records[0].message


class TestAggregation:
    def test_aggregate_counts_and_percentiles(self, tiny_records):
        summary = aggregate_sweep(tiny_records)
        assert summary.total == 3
        assert summary.by_status == {STATUS_OK: 2, STATUS_INFEASIBLE: 1}
        assert summary.pass_rate == pytest.approx(2 / 3)
        assert summary.synthesis_max >= summary.synthesis_p50 > 0
        assert summary.units_delivered > 0
        assert "pass rate" in summary.summary()

    def test_aggregate_empty(self):
        summary = aggregate_sweep([])
        assert summary.total == 0
        assert summary.pass_rate == 0.0
        assert summary.synthesis_p50 == 0.0

    def test_sweep_table_and_report(self, tiny_records):
        table = sweep_table(tiny_records)
        assert "infeasible" in table
        assert "Experiment sweep" in table
        markdown = sweep_table(tiny_records, markdown=True)
        assert markdown.startswith("| Scenario |")
        report = sweep_report(tiny_records)
        assert "non-ok runs:" in report and "stocked" in report

    def test_scaling_rows_only_successful(self, tiny_records):
        rows = scaling_rows(tiny_records)
        assert len(rows) == 2
        assert all(seconds > 0 for _, _, seconds in rows)
        assert rows == sorted(rows, key=lambda row: (row[0], row[1]))


class TestComparison:
    def test_identical_sweeps_are_clean(self, tiny_records):
        comparison = compare_sweeps(tiny_records, tiny_records)
        assert comparison.ok
        assert comparison.matched == 3
        assert "no regressions" in comparison.summary()

    def test_status_regression_flagged(self, tiny_records):
        broken = [
            replace(r, status=STATUS_ERROR, message="crash") if r.ok else r
            for r in tiny_records
        ]
        comparison = compare_sweeps(tiny_records, broken)
        assert not comparison.ok
        assert len(comparison.status_regressions) == 2
        # The reverse direction is an informational fix, not a regression.
        assert compare_sweeps(broken, tiny_records).ok

    def test_runtime_regression_flagged(self, tiny_records):
        slow = [
            replace(r, timings={**r.timings, "synthesis": r.synthesis_seconds * 10 + 1})
            for r in tiny_records
        ]
        comparison = compare_sweeps(tiny_records, slow, runtime_factor=1.5)
        assert not comparison.ok
        assert len(comparison.runtime_regressions) == 2
        # A generous tolerance lets the same slowdown through.
        assert compare_sweeps(tiny_records, slow, runtime_factor=1000.0).ok

    def test_result_change_flagged(self, tiny_records):
        changed = [
            replace(r, num_agents=r.num_agents + 1) if r.ok else r for r in tiny_records
        ]
        comparison = compare_sweeps(tiny_records, changed)
        assert not comparison.ok
        assert len(comparison.result_changes) == 2

    def test_nonok_to_crash_is_a_regression(self, tiny_records):
        # infeasible -> error/timeout must fail the gate even though neither
        # side is ok; the reverse direction is a (partial) fix.
        crashed = [
            replace(r, status=STATUS_ERROR, message="crash") if not r.ok else r
            for r in tiny_records
        ]
        comparison = compare_sweeps(tiny_records, crashed)
        assert not comparison.ok
        assert comparison.status_regressions == ["infeasible: infeasible -> error"]
        assert compare_sweeps(crashed, tiny_records).status_fixes == [
            "infeasible: error -> infeasible"
        ]
        timed_out = [
            replace(r, status=STATUS_TIMEOUT) if not r.ok else r for r in crashed
        ]
        flipped = compare_sweeps(crashed, timed_out)
        assert not flipped.ok
        assert flipped.result_changes == ["infeasible: error -> timeout"]

    def test_missing_and_new_scenarios(self, tiny_records):
        comparison = compare_sweeps(tiny_records, tiny_records[1:])
        assert comparison.ok  # informational only
        assert len(comparison.missing_scenarios) == 1
        reverse = compare_sweeps(tiny_records[1:], tiny_records)
        assert len(reverse.new_scenarios) == 1

    def test_rejects_bad_tolerance(self, tiny_records):
        with pytest.raises(ValueError):
            compare_sweeps(tiny_records, tiny_records, runtime_factor=0)
