"""Tests for the map generators (example, fulfillment centers, sorting center)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maps import (
    FULFILLMENT_1_LAYOUT,
    FULFILLMENT_2_LAYOUT,
    MAP_REGISTRY,
    PAPER_MAP_STATS,
    SORTING_CENTER_LAYOUT,
    FulfillmentLayout,
    SortingLayout,
    figure1_grid,
    figure1_warehouse,
    generate_fulfillment_center,
    generate_sorting_center,
    scaled_down,
    toy_instance,
    toy_warehouse,
)
from repro.traffic import validate
from repro.warehouse import WarehouseError, Workload


class TestFigure1:
    def test_grid_dimensions(self):
        grid = figure1_grid()
        assert (grid.width, grid.height) == (5, 4)
        assert grid.num_shelves == 2
        assert grid.num_stations == 2

    def test_warehouse_matches_paper_model(self):
        warehouse = figure1_warehouse()
        floorplan = warehouse.floorplan
        # S contains the paper's {v_{0,2}, v_{2,2}, v_{4,2}}.
        access_cells = {floorplan.cell_of(v) for v in floorplan.shelf_access}
        assert {(0, 2), (2, 2), (4, 2)} <= access_cells
        # R = {v_{1,0}, v_{3,0}}.
        assert {floorplan.cell_of(v) for v in floorplan.stations} == {(1, 0), (3, 0)}
        # 10 units of each product, split over the two access cells of its shelf.
        assert warehouse.total_stock() == {1: 10, 2: 10}
        warehouse.validate()


class TestToyWarehouse:
    def test_traffic_system_valid(self):
        designed = toy_warehouse()
        assert validate(designed.traffic_system).is_valid
        designed.warehouse.validate()

    def test_toy_instance(self):
        instance = toy_instance(total_units=8, horizon=500)
        instance.validate()
        assert instance.workload.total_units == 8


class TestLayoutGeometry:
    def test_derived_counts(self):
        layout = FulfillmentLayout(
            num_slices=3, shelf_columns=6, shelf_bands=3, shelf_depth=2, num_products=10
        )
        assert layout.slice_width == 9
        assert layout.width == 27
        assert layout.height == 3 + 3 * 3
        assert layout.num_shelves == 3 * 6 * 2 * 3
        assert len(layout.aisle_rows) == 4

    def test_generated_grid_matches_layout(self):
        layout = FulfillmentLayout(
            num_slices=2, shelf_columns=4, shelf_bands=3, shelf_depth=1, num_products=6,
            num_stations=2,
        )
        designed = generate_fulfillment_center(layout)
        grid = designed.warehouse.floorplan.grid
        assert (grid.width, grid.height) == (layout.width, layout.height)
        assert grid.num_shelves == layout.num_shelves
        assert grid.num_stations == layout.num_stations * layout.station_cells
        assert designed.warehouse.num_products == layout.num_products

    def test_every_product_is_stocked(self):
        layout = FulfillmentLayout(
            num_slices=2, shelf_columns=4, shelf_bands=1, shelf_depth=1, num_products=20
        )
        designed = generate_fulfillment_center(layout)
        stock = designed.warehouse.total_stock()
        assert all(stock[k] > 0 for k in designed.warehouse.catalog.product_ids)

    def test_even_bands_rejected(self):
        with pytest.raises(WarehouseError):
            generate_fulfillment_center(FulfillmentLayout(shelf_bands=2))

    def test_bad_depth_rejected(self):
        with pytest.raises(WarehouseError):
            FulfillmentLayout(shelf_depth=3).validate()

    def test_too_many_station_cells_rejected(self):
        layout = FulfillmentLayout(
            num_slices=1, shelf_columns=2, num_stations=9, station_cells=2
        )
        with pytest.raises(WarehouseError):
            layout.validate()

    def test_scaled_down_is_smaller_and_valid(self):
        small = scaled_down(FULFILLMENT_1_LAYOUT)
        assert small.num_cells < FULFILLMENT_1_LAYOUT.num_cells
        designed = generate_fulfillment_center(small)
        assert validate(designed.traffic_system).is_valid


class TestPaperPresets:
    @pytest.mark.parametrize("name", ["fulfillment-1", "fulfillment-2", "sorting-center"])
    def test_preset_statistics_track_paper(self, name):
        obj = MAP_REGISTRY[name]()
        designed = obj.designed if hasattr(obj, "designed") else obj
        grid = designed.warehouse.floorplan.grid
        paper_cells, paper_shelves, paper_stations, paper_products = PAPER_MAP_STATS[name]
        # Cell counts within 25% of the paper's maps; shelf and product counts
        # match the paper's presets (see maps/catalog.py for the documented
        # deviations on stations and the sorting-center chute count).
        assert abs(grid.width * grid.height - paper_cells) / paper_cells < 0.25
        assert designed.warehouse.num_products == paper_products
        if name != "sorting-center":
            assert grid.num_shelves == paper_shelves

    @pytest.mark.parametrize("name", list(MAP_REGISTRY))
    def test_all_registry_maps_are_valid(self, name):
        obj = MAP_REGISTRY[name]()
        designed = obj.designed if hasattr(obj, "designed") else obj
        designed.warehouse.validate()
        report = validate(designed.traffic_system)
        assert report.is_valid, [str(v) for v in report.violations]

    def test_fulfillment_1_has_four_station_queues(self):
        designed = MAP_REGISTRY["fulfillment-1"]()
        assert len(designed.traffic_system.station_queues()) == 4

    def test_fulfillment_2_station_area_is_spread(self):
        designed = MAP_REGISTRY["fulfillment-2"]()
        # The single logical station is modelled as a spread station area, so
        # several station-queue components exist (documented deviation).
        assert len(designed.traffic_system.station_queues()) >= 3

    def test_throughput_capacity_covers_table1_workloads(self):
        # Largest Table-I workload per map must fit under the traffic system's
        # per-period delivery capacity over T = 3600 timesteps.
        requirements = {
            "fulfillment-1": 1100,
            "fulfillment-2": 1440,
            "sorting-center": 480,
        }
        for name, units in requirements.items():
            obj = MAP_REGISTRY[name]()
            designed = obj.designed if hasattr(obj, "designed") else obj
            system = designed.traffic_system
            periods = 3600 // system.cycle_time()
            assert periods * system.station_throughput_capacity() >= units


class TestSortingCenter:
    def test_reduction_metadata(self):
        center = generate_sorting_center(SORTING_CENTER_LAYOUT)
        assert center.num_chutes == center.warehouse.num_products
        assert center.num_bins == SORTING_CENTER_LAYOUT.num_bins
        assert center.chute_product(0) == 1
        with pytest.raises(ValueError):
            center.chute_product(center.num_chutes)

    def test_package_workload(self):
        center = generate_sorting_center(
            SortingLayout(num_slices=2, chute_columns=5, num_bins=2, name="sc-test")
        )
        workload = center.workload_for_packages({0: 3, 2: 5})
        assert workload.demand(center.chute_product(0)) == 3
        assert workload.demand(center.chute_product(2)) == 5
        assert workload.total_units == 8

    def test_uniform_workload_and_instance(self):
        center = generate_sorting_center(
            SortingLayout(num_slices=2, chute_columns=5, num_bins=2, name="sc-test2")
        )
        workload = center.uniform_workload(center.num_chutes * 2)
        instance = center.wsp_instance(workload, horizon=1000)
        instance.validate()

    def test_chutes_are_isolated(self):
        center = generate_sorting_center(SORTING_CENTER_LAYOUT)
        grid = center.warehouse.floorplan.grid
        # With chute_spacing = 2, no two chutes are horizontally adjacent.
        for (x, y) in grid.shelf_cells():
            assert not grid.is_shelf((x + 1, y)) or not grid.in_bounds((x + 1, y))


class TestLayoutPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(
        num_slices=st.integers(min_value=1, max_value=3),
        shelf_columns=st.integers(min_value=2, max_value=6),
        shelf_bands=st.sampled_from([1, 3]),
        shelf_depth=st.sampled_from([1, 2]),
        num_products=st.integers(min_value=1, max_value=6),
    )
    def test_any_valid_layout_produces_valid_traffic_system(
        self, num_slices, shelf_columns, shelf_bands, shelf_depth, num_products
    ):
        layout = FulfillmentLayout(
            num_slices=num_slices,
            shelf_columns=shelf_columns,
            shelf_bands=shelf_bands,
            shelf_depth=shelf_depth,
            num_products=num_products,
            num_stations=min(num_slices, 2),
            name="hypothesis-layout",
        )
        designed = generate_fulfillment_center(layout)
        designed.warehouse.validate()
        report = validate(designed.traffic_system)
        assert report.is_valid, [str(v) for v in report.violations]
        grid = designed.warehouse.floorplan.grid
        assert grid.num_shelves == layout.num_shelves
