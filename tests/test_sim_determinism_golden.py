"""Golden determinism regression: same seed + scenario → byte-identical traces.

The simulation engine promises that a run is a pure function of (plan, seed,
config): the event heap breaks intra-tick ties by explicit priority and then
insertion sequence, and every stochastic draw comes from the one seeded
generator.  This test pins that promise at its observable boundary — the
*serialized* trace JSON must be byte-identical across independent runs — for
both execution modes:

* abstract plan replay (PR-1 semantics),
* grid-routed execution (MAPF-planned motion), which additionally requires
  the routers themselves to be deterministic (heap tie-breaking by insertion
  order, no wall-clock dependence in any search), and
* failure-injected execution (stochastic and scripted disruption schedules),
  whose serialized traces additionally carry the resilience section — the
  disruption draws, the queued conflict resolution and the recovery policies
  must all be pure functions of (plan, seed, config).

A drift here means the event-heap tie-breaking, the RNG plumbing, a router or
the disruption layer became nondeterministic — exactly the class of bug that
silently invalidates every archived benchmark and regression baseline.
"""

import json

import pytest

from repro.core import WSPSolver
from repro.experiments import ScenarioSpec, execute_scenario
from repro.io import trace_to_dict
from repro.sim import (
    DisruptionConfig,
    RoutingConfig,
    ScriptedDisruption,
    ServiceTimeModel,
    SimulationConfig,
    simulate_plan,
)

SPEC = dict(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


@pytest.fixture(scope="module")
def solved():
    spec = ScenarioSpec(**SPEC)
    designed, workload = spec.build()
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=spec.horizon)
    assert solution.succeeded
    return designed, workload, solution


def _run(solved, config):
    _, workload, solution = solved
    report = simulate_plan(
        solution.plan,
        solution.traffic_system,
        flow_set=solution.flow_set,
        workload=workload,
        synthesis=solution.synthesis,
        config=config,
    )
    return json.dumps(trace_to_dict(report.trace), sort_keys=True).encode()


CONFIGS = {
    "abstract": SimulationConfig(seed=7),
    "abstract-stochastic": SimulationConfig(
        seed=7,
        service_time=ServiceTimeModel.uniform(1, 4),
        arrival_rate=0.5,
    ),
    "grid-prioritized": SimulationConfig(
        seed=7, routing=RoutingConfig(router="prioritized")
    ),
    "grid-lifelong": SimulationConfig(
        seed=7, routing=RoutingConfig(router="lifelong", window=4)
    ),
    "disrupted-stochastic": SimulationConfig(
        seed=7,
        disruptions=DisruptionConfig(
            breakdown_rate=0.05, repair_time=10, block_rate=0.03, block_duration=6,
            outage_rate=0.02, outage_duration=12, surge_rate=0.05, surge_orders=2,
        ),
    ),
    "disrupted-scripted": SimulationConfig(
        seed=7,
        service_time=ServiceTimeModel.uniform(1, 4),
        arrival_rate=0.5,
        disruptions=DisruptionConfig(
            breakdown_rate=0.03,
            repair_time=8,
            schedule=(
                ScriptedDisruption(tick=10, kind="breakdown", target=0, duration=20),
                ScriptedDisruption(tick=30, kind="block", target=0, duration=15),
                ScriptedDisruption(tick=50, kind="surge", magnitude=3),
            ),
        ),
    ),
}


@pytest.mark.parametrize("mode", sorted(CONFIGS), ids=sorted(CONFIGS))
def test_same_seed_same_scenario_byte_identical_trace_json(solved, mode):
    first = _run(solved, CONFIGS[mode])
    second = _run(solved, CONFIGS[mode])
    assert first == second


def test_different_seed_changes_the_stochastic_trace(solved):
    config_a = CONFIGS["abstract-stochastic"]
    config_b = SimulationConfig(
        seed=8, service_time=ServiceTimeModel.uniform(1, 4), arrival_rate=0.5
    )
    assert _run(solved, config_a) != _run(solved, config_b)


def test_grid_routed_and_abstract_traces_differ(solved):
    """The two execution modes must be observably different artifacts."""
    assert _run(solved, CONFIGS["abstract"]) != _run(solved, CONFIGS["grid-prioritized"])


def test_zero_disruption_reproduces_the_nominal_golden_trace(solved):
    """An all-zero-rate disruption config is byte-identical to no config at
    all: the pre-disruption golden traces stay valid for nominal runs."""
    zeroed = SimulationConfig(seed=7, disruptions=DisruptionConfig())
    assert _run(solved, zeroed) == _run(solved, CONFIGS["abstract"])


def test_disrupted_trace_carries_the_resilience_section(solved):
    """The resilience section is part of the golden artifact for disrupted
    runs — and absent (not null) from nominal ones, preserving their schema."""
    nominal = json.loads(_run(solved, CONFIGS["abstract"]))
    disrupted = json.loads(_run(solved, CONFIGS["disrupted-stochastic"]))
    assert "resilience" not in nominal
    assert disrupted["resilience"]["schema"] == "sim-resilience"
    assert disrupted["resilience"]["breakdowns"] > 0
    assert disrupted["agent_paths"] is not None  # the realized (shifted) motion


def test_traced_run_with_obs_stripped_matches_untraced_bytes(solved):
    """Tracing observes, never steers: a traced run's serialized trace minus
    its ``obs`` section is byte-identical to an untraced run's — and untraced
    documents don't carry the key at all, preserving the pre-obs schema."""
    from repro.obs import capture_trace

    config = CONFIGS["grid-prioritized"]
    untraced = _run(solved, config)
    assert "obs" not in json.loads(untraced)
    with capture_trace():
        traced = json.loads(_run(solved, config))
    assert traced["obs"]["schema"] == "obs-trace"
    assert traced["obs"]["spans"], "a traced run must record at least one span"
    traced.pop("obs")
    assert json.dumps(traced, sort_keys=True).encode() == untraced


@pytest.mark.parametrize("router", ("abstract", "ecbs"))
def test_run_record_fingerprint_is_reproducible(router):
    """The experiment runner's whole record is deterministic modulo timings."""
    spec = ScenarioSpec(**SPEC, router=router)
    first = execute_scenario(spec.to_dict())
    second = execute_scenario(spec.to_dict())
    first.pop("timings")
    second.pop("timings")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
