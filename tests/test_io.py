"""Tests for map-file and JSON serialization round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WSPSolver
from repro.io import (
    MapFormatError,
    SerializationError,
    dumps_map,
    load_json,
    load_map,
    loads_map,
    plan_from_dict,
    plan_to_dict,
    save_json,
    save_map,
    traffic_system_from_dict,
    traffic_system_to_dict,
    warehouse_from_dict,
    warehouse_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.maps import figure1_grid, figure1_warehouse, toy_warehouse
from repro.traffic import validate
from repro.warehouse import GridMap, PlanValidator, Workload, build_grid


class TestMapFormat:
    def test_round_trip(self):
        grid = figure1_grid()
        text = dumps_map(grid)
        parsed = loads_map(text, name="fig1")
        assert parsed.cells == grid.cells
        assert "type warehouse" in text

    def test_file_round_trip(self, tmp_path):
        grid = figure1_grid()
        path = tmp_path / "fig1.map"
        save_map(grid, path)
        loaded = load_map(path)
        assert loaded.cells == grid.cells
        assert loaded.name == "fig1"

    def test_missing_map_section(self):
        with pytest.raises(MapFormatError):
            loads_map("type warehouse\nheight 2\nwidth 2\n..\n..")

    def test_wrong_row_count(self):
        with pytest.raises(MapFormatError):
            loads_map("type x\nheight 3\nwidth 2\nmap\n..\n..")

    def test_short_row_rejected(self):
        with pytest.raises(MapFormatError):
            loads_map("type x\nheight 2\nwidth 3\nmap\n...\n..")

    @settings(max_examples=25, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=7),
        height=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_property_round_trip(self, width, height, seed):
        import random

        rng = random.Random(seed)
        cells = {
            (x, y): rng.choice(".@ST")
            for x in range(width)
            for y in range(height)
        }
        grid = GridMap(width=width, height=height, cells=cells)
        assert loads_map(dumps_map(grid)).cells == grid.cells


class TestWarehouseSerialization:
    def test_round_trip(self):
        warehouse = figure1_warehouse()
        document = warehouse_to_dict(warehouse)
        restored = warehouse_from_dict(document)
        assert restored.name == warehouse.name
        assert restored.catalog.names == warehouse.catalog.names
        assert restored.total_stock() == warehouse.total_stock()
        assert restored.floorplan.num_vertices == warehouse.floorplan.num_vertices

    def test_schema_checked(self):
        with pytest.raises(SerializationError):
            warehouse_from_dict({"schema": "plan"})

    def test_json_file_round_trip(self, tmp_path):
        warehouse = figure1_warehouse()
        path = tmp_path / "warehouse.json"
        save_json(warehouse_to_dict(warehouse), path)
        restored = warehouse_from_dict(load_json(path))
        assert restored.total_stock() == warehouse.total_stock()


class TestTrafficSystemSerialization:
    def test_round_trip_preserves_structure_and_validity(self):
        designed = toy_warehouse()
        document = traffic_system_to_dict(designed.traffic_system)
        restored = traffic_system_from_dict(document)
        assert restored.num_components == designed.traffic_system.num_components
        assert len(restored.edges()) == len(designed.traffic_system.edges())
        assert validate(restored).is_valid
        assert restored.max_component_length == designed.traffic_system.max_component_length


class TestWorkloadAndPlanSerialization:
    def test_workload_round_trip(self):
        designed = toy_warehouse()
        workload = Workload.uniform(designed.warehouse.catalog, 9)
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.demands == workload.demands

    def test_plan_round_trip_preserves_feasibility(self):
        designed = toy_warehouse()
        workload = Workload.uniform(designed.warehouse.catalog, 4)
        solution = WSPSolver(designed.traffic_system).solve(workload, horizon=600)
        assert solution.succeeded
        document = plan_to_dict(solution.plan)
        restored = plan_from_dict(document)
        assert restored.num_agents == solution.plan.num_agents
        assert restored.horizon == solution.plan.horizon
        assert restored.delivered_units() == solution.plan.delivered_units()
        assert PlanValidator(restored.warehouse).is_feasible(restored)

    def test_gridless_warehouse_rejected(self):
        from repro.warehouse import FloorplanGraph, LocationMatrix, ProductCatalog, Warehouse

        grid = build_grid(4, 3, shelves=[(1, 1)], stations=[(3, 0)])
        floorplan = FloorplanGraph.from_grid(grid)
        floorplan.grid = None
        catalog = ProductCatalog.numbered(1)
        warehouse = Warehouse(floorplan, catalog, LocationMatrix(catalog, floorplan), name="x")
        with pytest.raises(SerializationError):
            warehouse_to_dict(warehouse)


class TestResilienceSerialization:
    def test_resilience_report_round_trip(self):
        from repro.io import resilience_from_dict, resilience_to_dict
        from repro.sim import ResilienceReport

        report = ResilienceReport(
            breakdowns=3, blocks=2, surges=1, surged_orders=4,
            repairs=3, reassignments=1, reroutes=2, failovers=1,
            recovery_latency_total=31, agent_downtime=40, blocked_waits=6,
            nominal_units=20, units_served=14, dropped_orders=2, late_orders=1,
            breach_windows=2, first_breach_tick=55,
        )
        document = resilience_to_dict(report)
        assert document["schema"] == "sim-resilience"
        assert resilience_from_dict(document) == report

    def test_resilience_schema_checked(self):
        from repro.io import resilience_from_dict

        with pytest.raises(SerializationError):
            resilience_from_dict({"schema": "plan"})
