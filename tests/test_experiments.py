"""Tests for scenario specs, generators and the result store."""

import json
from dataclasses import replace

import pytest

from repro.experiments import (
    PRESET_SUITES,
    ResultStore,
    RunRecord,
    ScenarioError,
    ScenarioSpec,
    grid_scenarios,
    load_records,
    preset_scenarios,
    random_scenarios,
    smoke_suite,
)
from repro.io import (
    SerializationError,
    run_record_from_dict,
    run_record_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)


class TestScenarioSpec:
    def test_round_trip(self):
        spec = ScenarioSpec(kind="sorting", units=40, workload_mix="zipf", seed=3, name="x")
        document = json.loads(json.dumps(scenario_to_dict(spec)))
        assert scenario_from_dict(document) == spec

    def test_scenario_id_ignores_name(self):
        spec = ScenarioSpec(units=10)
        assert spec.scenario_id == replace(spec, name="renamed").scenario_id

    def test_scenario_id_tracks_fields(self):
        spec = ScenarioSpec(units=10)
        assert spec.scenario_id != replace(spec, units=11).scenario_id
        assert spec.scenario_id != replace(spec, seed=1).scenario_id
        assert spec.scenario_id != replace(spec, kind="sorting").scenario_id

    def test_with_updates_is_frozen_safe(self):
        spec = ScenarioSpec(units=10)
        updated = spec.with_updates(units=20, seed=5)
        assert (updated.units, updated.seed) == (20, 5)
        assert (spec.units, spec.seed) == (10, 0)  # the original is untouched
        assert updated is not spec

    def test_with_updates_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="no_such_knob"):
            ScenarioSpec().with_updates(no_such_knob=1)

    def test_with_updates_id_changes_iff_hashed_field_changes(self):
        spec = ScenarioSpec(units=10)
        # name is excluded from the hash: the id must survive a rename.
        assert spec.with_updates(name="renamed").scenario_id == spec.scenario_id
        # every hashed field must move the id.
        for overrides in (
            {"units": 11},
            {"seed": 9},
            {"shelf_columns": spec.shelf_columns + 1},
            {"product_order": tuple(range(1, spec.num_products + 1))},
        ):
            assert spec.with_updates(**overrides).scenario_id != spec.scenario_id
        # a no-op update keeps the id (and equality).
        assert spec.with_updates(units=10).scenario_id == spec.scenario_id

    def test_empty_product_order_keeps_historical_id(self):
        # () is dropped from the hash payload: pre-slotting scenarios keep
        # their archived ids, while an *explicit* identity permutation is a
        # different design identity (it pins the order).
        spec = ScenarioSpec(units=10)
        assert spec.with_updates(product_order=()).scenario_id == spec.scenario_id
        identity = tuple(range(1, spec.num_products + 1))
        assert spec.with_updates(product_order=identity).scenario_id != spec.scenario_id

    def test_product_order_normalized_to_tuple(self):
        spec = ScenarioSpec(product_order=[2, 1, 3, 4, 5, 6])
        assert spec.product_order == (2, 1, 3, 4, 5, 6)
        assert spec == ScenarioSpec(product_order=(2, 1, 3, 4, 5, 6))

    def test_product_order_rejected_for_sorting(self):
        with pytest.raises(ScenarioError, match="fulfillment"):
            ScenarioSpec(kind="sorting", product_order=(1, 2)).validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"kind": "bogus"},
            {"workload_mix": "bogus"},
            {"units": -1},
            {"horizon": 0},
            {"arrival_rate": 0.0},
            {"service_time": "uniform:nope"},
            {"shelf_bands": 2},  # serpentine needs an odd band count
        ],
    )
    def test_validate_rejects(self, overrides):
        with pytest.raises(ScenarioError):
            replace(ScenarioSpec(), **overrides).validate()

    def test_build_fulfillment(self):
        spec = ScenarioSpec(num_products=5, units=10)
        designed, workload = spec.build()
        assert designed.warehouse.num_products == 5
        assert workload.total_units == 10

    def test_build_sorting_derives_products_from_chutes(self):
        spec = ScenarioSpec(kind="sorting", num_slices=2, shelf_columns=5, shelf_bands=1)
        designed, workload = spec.build()
        assert designed.warehouse.num_products == spec.layout().num_shelves
        assert workload.num_products == designed.warehouse.num_products

    def test_zipf_workload_is_seeded(self):
        spec = ScenarioSpec(workload_mix="zipf", units=30, seed=4)
        _, first = spec.build()
        _, again = spec.build()
        _, other = replace(spec, seed=5).build()
        assert first == again
        assert first.total_units == other.total_units == 30
        assert first != other

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            scenario_from_dict({"schema": "plan", "version": 1})
        with pytest.raises(SerializationError):
            scenario_from_dict({"schema": "scenario", "version": 1, "not_a_field": 1})


class TestGenerators:
    def test_grid_cartesian_product(self):
        specs = grid_scenarios(ScenarioSpec(), {"num_slices": (2, 3), "units": (5, 10, 15)})
        assert len(specs) == 6
        assert len({spec.scenario_id for spec in specs}) == 6

    def test_grid_skips_invalid_combinations(self):
        specs = grid_scenarios(ScenarioSpec(), {"shelf_bands": (2, 3)})
        assert [spec.shelf_bands for spec in specs] == [3]
        with pytest.raises(ScenarioError):
            grid_scenarios(ScenarioSpec(), {"shelf_bands": (2, 3)}, strict=True)

    def test_grid_rejects_unknown_axis(self):
        with pytest.raises(ScenarioError):
            grid_scenarios(ScenarioSpec(), {"warp_speed": (1,)})
        with pytest.raises(ScenarioError):
            grid_scenarios(ScenarioSpec(), {"units": ()})

    def test_random_is_deterministic_and_distinct(self):
        ranges = {"units": tuple(range(5, 50)), "seed": tuple(range(10))}
        first = random_scenarios(ScenarioSpec(), 6, ranges, seed=1)
        again = random_scenarios(ScenarioSpec(), 6, ranges, seed=1)
        other = random_scenarios(ScenarioSpec(), 6, ranges, seed=2)
        assert first == again
        assert first != other
        assert len({spec.scenario_id for spec in first}) == 6

    def test_random_raises_when_space_exhausted(self):
        with pytest.raises(ScenarioError):
            random_scenarios(ScenarioSpec(), 3, {"units": (7,)}, seed=0)

    def test_presets(self):
        for name in PRESET_SUITES:
            specs = preset_scenarios(name)
            assert specs, name
            assert len({spec.scenario_id for spec in specs}) == len(specs)
        with pytest.raises(ScenarioError):
            preset_scenarios("no-such-suite")

    def test_smoke_suite_shape(self):
        specs = smoke_suite()
        assert len(specs) >= 8
        kinds = {spec.kind for spec in specs}
        assert kinds == {"fulfillment", "sorting"}
        assert any(spec.workload_mix == "zipf" for spec in specs)
        infeasible = [spec for spec in specs if spec.name == "smoke/infeasible-stock"]
        assert len(infeasible) == 1


def _record(**overrides) -> RunRecord:
    defaults = dict(
        spec=ScenarioSpec(units=overrides.pop("units", 10)),
        status="ok",
        timings={"synthesis": 0.5, "realization": 0.2},
        num_agents=4,
        units_delivered=12,
        plan_feasible=True,
        workload_serviced=True,
        sim={"throughput_ratio": 1.0, "contracts_ok": 1.0, "contract_violations": 0.0},
    )
    defaults.update(overrides)
    return RunRecord(**defaults)


class TestRunRecord:
    def test_round_trip(self):
        record = _record()
        document = json.loads(json.dumps(run_record_to_dict(record)))
        assert run_record_from_dict(document) == record

    def test_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            _record(status="exploded")

    def test_fingerprint_excludes_timings(self):
        record = _record()
        slower = _record(timings={"synthesis": 99.0})
        assert record.fingerprint() == slower.fingerprint()
        assert record.fingerprint() != _record(num_agents=5).fingerprint()

    def test_stale_scenario_id_is_recomputed_not_fatal(self):
        # Old result files whose stored id predates a ScenarioSpec schema
        # change must stay loadable; the embedded spec's hash is canonical.
        document = run_record_to_dict(_record())
        document["scenario_id"] = "0" * 12
        record = run_record_from_dict(document)
        assert record.scenario_id == _record().scenario_id

    def test_derived_properties(self):
        record = _record()
        assert record.ok and not record.failed
        assert record.synthesis_seconds == pytest.approx(0.5)
        assert record.total_seconds == pytest.approx(0.7)
        assert record.contracts_ok is True
        assert record.throughput_ratio == pytest.approx(1.0)
        failure = _record(status="error", message="boom", sim={})
        assert failure.failed
        assert failure.contracts_ok is None
        assert failure.throughput_ratio is None
        assert "boom" in failure.summary()


class TestResultStore:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(_record(units=10))
        store.append(_record(units=20))
        store.append(_record(units=10, status="infeasible", message="again"))
        assert len(store) == 3
        assert path.read_text().count("\n") == 3

        reloaded = ResultStore(path)
        assert len(reloaded) == 3
        assert [r.spec.units for r in reloaded] == [10, 20, 10]
        first_id = _record(units=10).scenario_id
        assert [r.status for r in reloaded.by_id(first_id)] == ["ok", "infeasible"]
        assert len(reloaded.scenario_ids()) == 2

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "results" / "nested" / "sweep.jsonl"
        store = ResultStore(path)
        store.append(_record())
        assert len(load_records(path)) == 1

    def test_append_mode_tolerates_foreign_lines(self, tmp_path):
        # The runner appends to whatever file it is given; unreadable
        # pre-existing lines must not block the sweep.
        path = tmp_path / "results.jsonl"
        path.write_text("truncated junk\n")
        store = ResultStore(path, load_existing=False)
        store.append(_record())
        assert len(store) == 1
        assert len(path.read_text().splitlines()) == 2

    def test_load_records_skips_blank_lines(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text(json.dumps(run_record_to_dict(_record())) + "\n\n")
        assert len(load_records(path)) == 1

    def test_load_records_reports_bad_line(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="results.jsonl:1"):
            load_records(path)
