"""Metamorphic tests of the AG-contract monitor under failure injection.

Two metamorphic relations the monitor-as-instrument must satisfy:

* **Severity monotonicity** — injecting disruptions can delay or lose
  deliveries but never create them, so no disruption profile (at any severity
  on a ladder) may *increase* the measured throughput beyond the nominal
  run's.  Recovery policies redistribute the plan's own legs; they have no
  units of their own to add.
* **Breach reproducibility** — every contract breach the monitor flags, live
  or post-hoc, must be reproducible by a third party holding only the
  serialized trace JSON (and the compiled contracts): the verdict is evidence
  about the artifact, not about the process that produced it.  The live
  capacity breaches are additionally recomputed straight from the trace's
  per-period transition counts (see ``tests/trace_replay.py``).
"""

import pytest
from trace_replay import assert_breaches_reproducible, live_breach_keys

from repro.core import WSPSolver
from repro.experiments import ScenarioSpec
from repro.sim import (
    DisruptionConfig,
    SimulationConfig,
    severity_ladder,
    simulate_plan,
)
from repro.sim.monitors import SERVICE

SPEC = dict(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


@pytest.fixture(scope="module")
def solved():
    spec = ScenarioSpec(**SPEC)
    designed, workload = spec.build()
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=spec.horizon)
    assert solution.succeeded, solution.message
    return designed, workload, solution


def _run(solved, config):
    _, workload, solution = solved
    return simulate_plan(
        solution.plan,
        solution.traffic_system,
        flow_set=solution.flow_set,
        workload=workload,
        synthesis=solution.synthesis,
        config=config,
    )


PROFILES = {
    "breakdown": DisruptionConfig(breakdown_rate=0.01, repair_time=15),
    "slowdown": DisruptionConfig(slowdown_rate=0.01, slowdown_duration=20),
    "block": DisruptionConfig(block_rate=0.01, block_duration=10),
    "mixed": DisruptionConfig(
        breakdown_rate=0.01, repair_time=10, block_rate=0.01, block_duration=8,
        outage_rate=0.01, outage_duration=15,
    ),
}

LADDER = (0.005, 0.02, 0.08, 0.25)


class TestSeverityMonotonicity:
    @pytest.mark.parametrize("profile", sorted(PROFILES), ids=sorted(PROFILES))
    def test_no_severity_beats_the_nominal_throughput(self, solved, profile):
        nominal = _run(solved, SimulationConfig(seed=11))
        assert nominal.throughput_retention == 1.0
        for config in severity_ladder(PROFILES[profile], LADDER):
            report = _run(solved, SimulationConfig(seed=11, disruptions=config))
            assert report.units_served <= nominal.units_served, config.describe()
            assert report.realized_throughput <= nominal.realized_throughput + 1e-12
            assert report.throughput_retention <= 1.0 + 1e-9

    def test_norecover_never_beats_recovery_on_scripted_storms(self, solved):
        """With identical (rng-consumption-free) scripted schedules, disabling
        the recovery policies cannot serve *more* than running them."""
        from repro.sim import ScriptedDisruption

        schedule = tuple(
            ScriptedDisruption(tick=tick, kind="breakdown", target=agent, duration=60)
            for tick, agent in ((5, 0), (20, 1), (40, 2))
        )
        recovered = _run(
            solved,
            SimulationConfig(seed=11, disruptions=DisruptionConfig(schedule=schedule)),
        )
        abandoned = _run(
            solved,
            SimulationConfig(
                seed=11, disruptions=DisruptionConfig(schedule=schedule, recover=False)
            ),
        )
        assert abandoned.units_served <= recovered.units_served


class TestBreachReproducibility:
    def test_service_breaches_replay_from_the_trace_alone(self, solved):
        """A storm heavy enough to strand demand must flag workload-service
        breaches — and they must replay bit-for-bit from the serialized trace."""
        designed, workload, solution = solved
        report = _run(
            solved,
            SimulationConfig(
                seed=5,
                disruptions=DisruptionConfig(breakdown_rate=0.2, repair_time=40),
            ),
        )
        assert report.units_served < workload.total_units
        service = report.monitor.violations_of_kind(SERVICE)
        assert service, "expected workload-service breaches under a heavy storm"
        assert_breaches_reproducible(
            report, solution.traffic_system, solution.synthesis, workload
        )

    def test_live_capacity_breaches_replay_from_the_trace_alone(self, solved):
        """Congestion induced by blocks + breakdowns trips the live per-period
        capacity assumption; the breach set must equal what a third party
        recomputes from the serialized per-period flow counts."""
        designed, workload, solution = solved
        report = _run(
            solved,
            SimulationConfig(
                seed=0,
                disruptions=DisruptionConfig(
                    block_rate=0.05, block_duration=10,
                    breakdown_rate=0.02, repair_time=8,
                ),
            ),
        )
        assert live_breach_keys(report, solution.traffic_system), (
            "expected at least one live capacity breach at this seed"
        )
        assert report.resilience.breach_windows == len(
            live_breach_keys(report, solution.traffic_system)
        )
        assert report.resilience.first_breach_tick >= 0
        assert_breaches_reproducible(
            report, solution.traffic_system, solution.synthesis, workload
        )

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_every_monitored_run_replays_cleanly(self, solved, seed):
        """Breach or no breach, the monitor's verdict is a pure function of
        the serialized trace."""
        _, workload, solution = solved
        report = _run(
            solved,
            SimulationConfig(
                seed=seed,
                disruptions=DisruptionConfig(
                    breakdown_rate=0.03, repair_time=12,
                    block_rate=0.02, block_duration=8, surge_rate=0.05, surge_orders=2,
                ),
            ),
        )
        assert_breaches_reproducible(
            report, solution.traffic_system, solution.synthesis, workload
        )
