"""Round-trip tests for the service request/response schemas.

Golden documents pin the wire format (a served client must keep parsing
responses produced by older servers and vice versa); the hypothesis
round-trip property covers the full field space.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import RUN_STATUSES, RunRecord, ScenarioSpec
from repro.io import (
    SerializationError,
    service_request_from_dict,
    service_request_to_dict,
    service_response_from_dict,
    service_response_to_dict,
)
from repro.service import (
    CACHE_OUTCOMES,
    SERVICE_STATES,
    ServiceRequest,
    ServiceResponse,
)

TINY = ScenarioSpec(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)

#: The pinned wire format of a request (update deliberately, never casually).
GOLDEN_REQUEST = {
    "schema": "service-request",
    "version": 1,
    "scenario": TINY.to_dict(),
    "timeout_seconds": 30.0,
    "fresh": True,
    "tag": "golden",
}

GOLDEN_RESPONSE = {
    "schema": "service-response",
    "version": 1,
    "state": "ok",
    "scenario_id": TINY.scenario_id,
    "request_id": "req-000042",
    "cache": "hit",
    "record": RunRecord(spec=TINY, status="ok").to_dict(),
    "message": "",
    "tag": "golden",
    "queue_seconds": 0.001,
    "compute_seconds": 0.0,
    "retry_after_seconds": None,
    "info": {},
}


class TestGoldenDocuments:
    def test_request_golden_parses_and_reserializes(self):
        request = service_request_from_dict(GOLDEN_REQUEST)
        assert request.scenario.scenario_id == TINY.scenario_id
        assert request.timeout_seconds == 30.0
        assert request.fresh is True
        assert service_request_to_dict(request) == GOLDEN_REQUEST

    def test_response_golden_parses_and_reserializes(self):
        response = service_response_from_dict(GOLDEN_RESPONSE)
        assert response.state == "ok" and response.cache == "hit"
        assert response.record["scenario_id"] == TINY.scenario_id
        assert service_response_to_dict(response) == GOLDEN_RESPONSE

    def test_golden_documents_are_json_stable(self):
        # The documents must survive an actual JSON wire trip unchanged.
        for document in (GOLDEN_REQUEST, GOLDEN_RESPONSE):
            assert json.loads(json.dumps(document)) == document

    def test_wrong_schema_rejected(self):
        with pytest.raises(SerializationError):
            service_request_from_dict({"schema": "scenario"})
        with pytest.raises(SerializationError):
            service_response_from_dict({"schema": "service-request"})

    def test_malformed_request_rejected(self):
        bad = dict(GOLDEN_REQUEST, timeout_seconds=-1.0)
        with pytest.raises(SerializationError):
            service_request_from_dict(bad)

    def test_malformed_response_rejected(self):
        bad = dict(GOLDEN_RESPONSE, state="nonsense")
        with pytest.raises(SerializationError):
            service_response_from_dict(bad)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        units=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=10_000),
        timeout=st.one_of(st.none(), st.floats(min_value=0.1, max_value=3600.0)),
        fresh=st.booleans(),
        tag=st.text(max_size=12),
    )
    def test_request_round_trip(self, units, seed, timeout, fresh, tag):
        spec = ScenarioSpec(
            **{f: getattr(TINY, f) for f in TINY.__dataclass_fields__}
            | {"units": units, "seed": seed}
        )
        request = ServiceRequest(
            scenario=spec, timeout_seconds=timeout, fresh=fresh, tag=tag
        )
        document = service_request_to_dict(request)
        restored = service_request_from_dict(json.loads(json.dumps(document)))
        assert restored == request
        assert restored.scenario_id == request.scenario_id

    @settings(max_examples=60, deadline=None)
    @given(
        state=st.sampled_from(SERVICE_STATES),
        cache=st.sampled_from(CACHE_OUTCOMES),
        with_record=st.booleans(),
        message=st.text(max_size=40),
        tag=st.text(max_size=12),
        queue_seconds=st.floats(min_value=0.0, max_value=100.0),
        compute_seconds=st.floats(min_value=0.0, max_value=100.0),
        retry_after=st.one_of(st.none(), st.floats(min_value=0.0, max_value=60.0)),
        draining=st.booleans(),
    )
    def test_response_round_trip(
        self,
        state,
        cache,
        with_record,
        message,
        tag,
        queue_seconds,
        compute_seconds,
        retry_after,
        draining,
    ):
        record = (
            RunRecord(spec=TINY, status=state).to_dict()
            if with_record and state in RUN_STATUSES
            else None
        )
        response = ServiceResponse(
            state=state,
            scenario_id=TINY.scenario_id,
            request_id="req-000007",
            cache=cache,
            record=record,
            message=message,
            tag=tag,
            queue_seconds=queue_seconds,
            compute_seconds=compute_seconds,
            retry_after_seconds=retry_after,
            info={"draining": 1.0} if draining else {},
        )
        document = service_response_to_dict(response)
        restored = service_response_from_dict(json.loads(json.dumps(document)))
        assert restored == response
        assert restored.http_status == response.http_status
        assert restored.terminal == response.terminal
