"""Unit and property tests for the pure-Python tableau simplex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.solver.simplex import solve_lp


class TestKnownLPs:
    def test_simple_maximization_as_min(self):
        # max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> (4, 0), obj 12
        sol = solve_lp(
            c=[-3, -2],
            a_ub=np.array([[1, 1], [1, 3]], dtype=float),
            b_ub=[4, 6],
        )
        assert sol.status == "optimal"
        assert sol.objective == pytest.approx(-12.0)
        assert sol.x[0] == pytest.approx(4.0)

    def test_equality_constraints(self):
        # min x + y s.t. x + y == 5, x - y == 1 -> (3, 2)
        sol = solve_lp(
            c=[1, 1],
            a_eq=np.array([[1, 1], [1, -1]], dtype=float),
            b_eq=[5, 1],
        )
        assert sol.status == "optimal"
        assert sol.x == pytest.approx([3.0, 2.0])

    def test_infeasible(self):
        sol = solve_lp(
            c=[1],
            a_ub=np.array([[1.0], [-1.0]]),
            b_ub=[1.0, -3.0],  # x <= 1 and x >= 3
        )
        assert sol.status == "infeasible"

    def test_unbounded(self):
        # min -x with x >= 0 and no upper restriction.
        sol = solve_lp(c=[-1], a_ub=np.zeros((0, 1)), b_ub=[])
        assert sol.status == "unbounded"

    def test_upper_bounds_respected(self):
        sol = solve_lp(c=[-1, -1], bounds=[(0, 2), (0, 3)])
        assert sol.status == "optimal"
        assert sol.x == pytest.approx([2.0, 3.0])

    def test_negative_lower_bounds(self):
        # min x subject to x >= -5.
        sol = solve_lp(c=[1], bounds=[(-5, 5)])
        assert sol.status == "optimal"
        assert sol.x[0] == pytest.approx(-5.0)

    def test_free_variable(self):
        # min x s.t. x >= -7 expressed via a constraint, variable itself free.
        sol = solve_lp(
            c=[1],
            a_ub=np.array([[-1.0]]),
            b_ub=[7.0],
            bounds=[(None, None)],
        )
        assert sol.status == "optimal"
        assert sol.x[0] == pytest.approx(-7.0)

    def test_degenerate_problem_terminates(self):
        # Classic degenerate LP; Bland's rule must not cycle.
        a_ub = np.array(
            [
                [0.5, -5.5, -2.5, 9.0],
                [0.5, -1.5, -0.5, 1.0],
                [1.0, 0.0, 0.0, 0.0],
            ]
        )
        b_ub = [0.0, 0.0, 1.0]
        c = [-10.0, 57.0, 9.0, 24.0]
        sol = solve_lp(c=c, a_ub=a_ub, b_ub=b_ub)
        assert sol.status == "optimal"
        assert sol.objective == pytest.approx(-1.0, abs=1e-6)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_lp(c=[1, 2], a_ub=np.array([[1.0]]), b_ub=[1.0])

    def test_transportation_like_flow(self):
        # Two sources (supply 3, 2), two sinks (demand 2, 3); min cost.
        # Variables: x11, x12, x21, x22.
        a_eq = np.array(
            [
                [1, 1, 0, 0],
                [0, 0, 1, 1],
                [1, 0, 1, 0],
                [0, 1, 0, 1],
            ],
            dtype=float,
        )
        b_eq = [3, 2, 2, 3]
        c = [4, 6, 5, 3]
        sol = solve_lp(c=c, a_eq=a_eq, b_eq=b_eq)
        assert sol.status == "optimal"
        ref = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=[(0, None)] * 4, method="highs")
        assert sol.objective == pytest.approx(ref.fun, abs=1e-6)


@st.composite
def random_lp(draw):
    """Random bounded-feasible LPs: box bounds guarantee boundedness."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=0, max_value=4))
    c = [draw(st.integers(min_value=-5, max_value=5)) for _ in range(n)]
    a_rows = [
        [draw(st.integers(min_value=-3, max_value=3)) for _ in range(n)]
        for _ in range(m)
    ]
    b = [draw(st.integers(min_value=0, max_value=12)) for _ in range(m)]
    ub = [draw(st.integers(min_value=1, max_value=8)) for _ in range(n)]
    return c, a_rows, b, ub


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_matches_highs_on_random_boxed_lps(self, lp):
        c, a_rows, b, ub = lp
        n = len(c)
        a_ub = np.array(a_rows, dtype=float) if a_rows else np.zeros((0, n))
        bounds = [(0.0, float(u)) for u in ub]
        ours = solve_lp(c=c, a_ub=a_ub, b_ub=b, bounds=bounds)
        ref = linprog(
            c,
            A_ub=a_ub if a_ub.size else None,
            b_ub=b if b else None,
            bounds=bounds,
            method="highs",
        )
        if ref.status == 0:
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
        elif ref.status == 2:
            assert ours.status == "infeasible"
