"""Property-based tests of the MAPF invariants (hypothesis).

For randomly drawn small grids and agent sets, every router's output must be
vertex- and edge-collision-free, start and end at the requested endpoints,
and respect grid adjacency.  The library's conflict detector
(:func:`repro.mapf.problem.find_conflicts`) is cross-checked against an
independently written brute-force O(T·n²) checker — in particular,
``LifelongResult.is_collision_free()`` must agree with the brute force on
both clean and deliberately corrupted path sets.

A separate regression class pins the ``_retreat_target`` contract: when every
reachable vertex is blocked, the idle agent waits in place (the sentinel) and
the lifelong solve degrades gracefully instead of raising.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.mapf import (
    IteratedPlanner,
    IteratedPlannerOptions,
    LifelongResult,
    LifelongTask,
    MAPFProblem,
    find_conflicts,
    solve_cbs,
    solve_ecbs,
    solve_prioritized,
)
from repro.mapf.cbs import CBSOptions
from repro.mapf.ecbs import ECBSOptions
from repro.warehouse.floorplan import FloorplanGraph
from repro.warehouse.grid import GridMap


# ---------------------------------------------------------------------------
# independent brute-force conflict checker
# ---------------------------------------------------------------------------

def brute_force_conflicts(paths):
    """All pairwise vertex/edge collisions, written independently of repro.mapf.

    Agents rest at their final vertex forever (the MAPF convention).  Returns
    a list of (kind, agent_i, agent_j, timestep) tuples.
    """
    if not paths:
        return []
    horizon = max(len(path) for path in paths)

    def at(path, t):
        return path[t] if t < len(path) else path[-1]

    found = []
    for t in range(horizon):
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                if at(paths[i], t) == at(paths[j], t):
                    found.append(("vertex", i, j, t))
                if (
                    t > 0
                    and at(paths[i], t) != at(paths[i], t - 1)
                    and at(paths[i], t) == at(paths[j], t - 1)
                    and at(paths[i], t - 1) == at(paths[j], t)
                ):
                    found.append(("edge", i, j, t))
    return found


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def small_floorplans(draw):
    """A connected floorplan derived from a random small obstacle grid."""
    width = draw(st.integers(min_value=3, max_value=5))
    height = draw(st.integers(min_value=3, max_value=4))
    rows = []
    for _ in range(height):
        row = "".join(
            "@" if draw(st.integers(min_value=0, max_value=9)) < 2 else "."
            for _ in range(width)
        )
        rows.append(row)
    grid = GridMap.from_ascii("\n".join(rows), name="hypothesis-grid")
    floorplan = FloorplanGraph.from_grid(grid)
    assume(floorplan.num_vertices >= 4 and floorplan.is_connected())
    return floorplan


@st.composite
def mapf_problems(draw):
    floorplan = draw(small_floorplans())
    num_agents = draw(
        st.integers(min_value=1, max_value=min(3, floorplan.num_vertices // 2))
    )
    vertices = list(range(floorplan.num_vertices))
    starts = draw(st.permutations(vertices))[:num_agents]
    goals = draw(st.permutations(vertices))[:num_agents]
    return MAPFProblem.from_pairs(floorplan, list(zip(starts, goals)))


@st.composite
def lifelong_instances(draw):
    floorplan = draw(small_floorplans())
    num_agents = draw(
        st.integers(min_value=1, max_value=min(3, floorplan.num_vertices // 2))
    )
    vertices = list(range(floorplan.num_vertices))
    starts = draw(st.permutations(vertices))[:num_agents]
    tasks = []
    for agent, start in enumerate(starts):
        num_goals = draw(st.integers(min_value=0, max_value=2))
        goals = tuple(
            draw(st.sampled_from(vertices)) for _ in range(num_goals)
        )
        tasks.append(LifelongTask(agent_id=agent, start=start, goals=goals))
    return floorplan, tasks


SOLVERS = (
    ("prioritized", lambda problem: solve_prioritized(problem)),
    ("cbs", lambda problem: solve_cbs(problem, CBSOptions(max_nodes=2_000))),
    (
        "ecbs",
        lambda problem: solve_ecbs(
            problem, ECBSOptions(suboptimality=1.5, max_nodes=2_000)
        ),
    ),
)


# ---------------------------------------------------------------------------
# one-shot router invariants
# ---------------------------------------------------------------------------

class TestOneShotRouterInvariants:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(problem=mapf_problems())
    def test_solutions_are_collision_free_and_anchored(self, problem):
        for name, solve in SOLVERS:
            solution = solve(problem)
            if solution is None:
                # Prioritized is incomplete; CBS/ECBS may hit node limits.
                continue
            assert len(solution.paths) == problem.num_agents, name
            for agent, path in zip(problem.agents, solution.paths):
                assert path[0] == agent.start, name
                assert path[-1] == agent.goal, name
                for u, v in zip(path, path[1:]):
                    assert u == v or problem.floorplan.are_adjacent(u, v), name
            assert find_conflicts(solution.paths) == [], name
            assert brute_force_conflicts(solution.paths) == [], name
            assert solution.is_valid(), name

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(problem=mapf_problems())
    def test_conflict_detector_agrees_with_brute_force(self, problem):
        solution = solve_cbs(problem, CBSOptions(max_nodes=2_000))
        if solution is None:
            return
        # Clean paths: both checkers agree there is nothing.
        assert bool(find_conflicts(solution.paths)) == bool(
            brute_force_conflicts(solution.paths)
        )
        if problem.num_agents >= 2:
            # Corrupted paths: duplicating one agent's path onto another must
            # be flagged by both checkers identically.
            corrupted = list(solution.paths)
            corrupted[1] = corrupted[0]
            assert find_conflicts(corrupted) != []
            assert brute_force_conflicts(corrupted) != []


# ---------------------------------------------------------------------------
# lifelong planner invariants
# ---------------------------------------------------------------------------

class TestLifelongInvariants:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(instance=lifelong_instances(), data=st.data())
    def test_is_collision_free_agrees_with_brute_force(self, instance, data):
        floorplan, tasks = instance
        engine = data.draw(st.sampled_from(["prioritized", "ecbs"]), label="engine")
        window = data.draw(st.sampled_from([None, 2, 5]), label="window")
        planner = IteratedPlanner(
            floorplan,
            IteratedPlannerOptions(
                engine=engine,
                max_episodes=60,
                commit_window=window,
                per_episode_node_limit=4_000,
            ),
        )
        result = planner.solve(tasks)
        assert result.is_collision_free() == (
            brute_force_conflicts(result.paths) == []
        )
        # The stitched paths must be genuinely collision-free, start where the
        # tasks start, and respect adjacency.
        assert brute_force_conflicts(result.paths) == []
        for task, path in zip(tasks, result.paths):
            assert path[0] == task.start
            for u, v in zip(path, path[1:]):
                assert u == v or floorplan.are_adjacent(u, v)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(instance=lifelong_instances())
    def test_completed_runs_visit_goals_in_order_with_recorded_arrivals(
        self, instance
    ):
        floorplan, tasks = instance
        planner = IteratedPlanner(
            floorplan,
            IteratedPlannerOptions(
                engine="ecbs", max_episodes=60, per_episode_node_limit=4_000
            ),
        )
        result = planner.solve(tasks)
        if not result.completed:
            return
        assert result.goals_completed == result.goals_total
        for task, path, arrivals in zip(tasks, result.paths, result.goal_arrivals):
            assert len(arrivals) == len(task.goals)
            for goal, arrival in zip(task.goals, arrivals):
                assert 0 <= arrival < len(path)
                assert path[arrival] == goal
            assert list(arrivals) == sorted(arrivals)

    def test_is_collision_free_flags_corrupted_result(self):
        # A hand-built result with two agents on the same vertex: the library
        # checker and the brute force must both reject it.
        result = LifelongResult(
            completed=True,
            paths=((0, 1), (1, 1)),
            goals_completed=2,
            goals_total=2,
            episodes=1,
            expansions=0,
            runtime_seconds=0.0,
            engine="ecbs",
        )
        assert not result.is_collision_free()
        assert brute_force_conflicts(result.paths) != []


# ---------------------------------------------------------------------------
# retreat-target regression (wait-in-place sentinel, never raise)
# ---------------------------------------------------------------------------

class TestRetreatTarget:
    def _corridor(self, length=2):
        grid = GridMap.from_ascii("." * length, name="corridor")
        return FloorplanGraph.from_grid(grid)

    def test_fully_blocked_retreat_returns_start_sentinel(self):
        floorplan = self._corridor(2)
        planner = IteratedPlanner(floorplan)
        blocked = set(range(floorplan.num_vertices))
        assert planner._retreat_target(0, blocked) == 0

    def test_fully_blocked_floorplan_solve_degrades_gracefully(self):
        # Every free vertex is either an agent position or a pending goal:
        # the idle agent on vertex 0 cannot retreat anywhere, and the solve
        # must terminate without raising (reporting incompleteness is fine).
        floorplan = self._corridor(2)
        tasks = [
            LifelongTask(agent_id=0, start=0, goals=()),
            LifelongTask(agent_id=1, start=1, goals=(0,)),
        ]
        for engine in ("prioritized", "cbs", "ecbs"):
            planner = IteratedPlanner(
                floorplan, IteratedPlannerOptions(engine=engine, max_episodes=10)
            )
            result = planner.solve(tasks)  # must not raise
            assert result.is_collision_free()
            assert result.paths[0][0] == 0

    def test_partial_block_retreats_to_nearest_free_vertex(self):
        floorplan = self._corridor(4)
        planner = IteratedPlanner(floorplan)
        # Vertices 0 and 1 blocked: the nearest free vertex from 0 is 2.
        assert planner._retreat_target(0, {0, 1}) == 2

    def test_idle_agent_clears_a_pending_goal_cell(self):
        # Agent 0 idles on agent 1's goal; it must step aside so the run
        # completes — the classic MAPD "move off task endpoints" behaviour.
        floorplan = self._corridor(4)
        tasks = [
            LifelongTask(agent_id=0, start=2, goals=()),
            LifelongTask(agent_id=1, start=0, goals=(2,)),
        ]
        planner = IteratedPlanner(
            floorplan, IteratedPlannerOptions(engine="ecbs", max_episodes=50)
        )
        result = planner.solve(tasks)
        assert result.completed
        assert result.is_collision_free()
        assert result.paths[1][-1] == 2
