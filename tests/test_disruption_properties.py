"""Hypothesis property tests of the disruption layer.

Over randomly drawn disruption profiles and seeds, on one solved instance:

* **Nominal equivalence** — a disruption config with every rate at zero is
  indistinguishable, byte for byte in the serialized trace JSON, from no
  disruption layer at all.
* **Conservation** — no disruption schedule can break flow conservation:
  orders are created then served or still pending, and every unit is picked,
  in transit, queued or served (``completed + dropped + in-flight ==
  injected`` at every boundary the trace exposes).
* **Recovery soundness** — whatever the recovery policies improvise
  (reassigned legs, detours, failovers), the *realized* motion is a feasible
  plan under the paper's three conditions, checked by the independent
  validator; and throughput retention never exceeds 1 (recovery can save
  deliveries, not invent them).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import WSPSolver
from repro.experiments import ScenarioSpec
from repro.io import trace_to_dict
from repro.sim import DisruptionConfig, SimulationConfig, simulate_plan
from repro.warehouse import PlanValidator

SPEC = dict(
    kind="fulfillment",
    num_slices=1,
    shelf_columns=3,
    shelf_bands=1,
    num_stations=1,
    num_products=2,
    units=4,
    horizon=150,
)


@pytest.fixture(scope="module")
def solved():
    spec = ScenarioSpec(**SPEC)
    designed, workload = spec.build()
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=spec.horizon)
    assert solution.succeeded, solution.message
    return designed, workload, solution


def _run(solved, config):
    _, workload, solution = solved
    return simulate_plan(
        solution.plan,
        solution.traffic_system,
        flow_set=solution.flow_set,
        workload=workload,
        synthesis=solution.synthesis,
        config=config,
    )


def _trace_bytes(report):
    return json.dumps(trace_to_dict(report.trace), sort_keys=True).encode()


@st.composite
def disruption_configs(draw):
    """Random mixed disruption profiles, short durations for the tiny horizon."""
    return DisruptionConfig(
        breakdown_rate=draw(st.floats(0.0, 0.15)),
        repair_time=draw(st.integers(1, 30)),
        slowdown_rate=draw(st.floats(0.0, 0.1)),
        slowdown_duration=draw(st.integers(1, 25)),
        outage_rate=draw(st.floats(0.0, 0.05)),
        outage_duration=draw(st.integers(1, 30)),
        block_rate=draw(st.floats(0.0, 0.1)),
        block_duration=draw(st.integers(1, 20)),
        surge_rate=draw(st.floats(0.0, 0.1)),
        surge_orders=draw(st.integers(1, 4)),
        recover=draw(st.booleans()),
        reroute_patience=draw(st.integers(1, 5)),
    )


class TestZeroRateEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**16))
    def test_zero_rates_reproduce_the_nominal_trace_bytes(self, solved, seed):
        nominal = _run(solved, SimulationConfig(seed=seed))
        zeroed = _run(solved, SimulationConfig(seed=seed, disruptions=DisruptionConfig()))
        assert _trace_bytes(nominal) == _trace_bytes(zeroed)
        assert zeroed.resilience is None and zeroed.realized_plan is None


class TestConservationUnderDisruption:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(config=disruption_configs(), seed=st.integers(0, 2**16))
    def test_orders_and_units_are_conserved(self, solved, config, seed):
        report = _run(solved, SimulationConfig(seed=seed, disruptions=config))
        trace = report.trace
        # Conservation of orders: completed + still-pending == injected
        # (surged orders included), at the run's end boundary.
        assert trace.orders_served + trace.orders_pending == trace.orders_created
        # Conservation of units through the pick -> carry -> queue -> serve
        # chain, as exposed by the trace aggregates.
        assert trace.conservation_report() == []
        assert trace.units_in_transit >= 0
        assert trace.station_backlog >= 0
        if report.resilience is not None:
            assert report.resilience.dropped_orders == trace.orders_pending


class TestRecoverySoundness:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(config=disruption_configs(), seed=st.integers(0, 2**16))
    def test_recovery_never_produces_an_infeasible_plan(self, solved, config, seed):
        designed, _, _ = solved
        report = _run(solved, SimulationConfig(seed=seed, disruptions=config))
        if report.realized_plan is None:
            assert not config.is_active
            return
        validation = PlanValidator(designed.warehouse).validate(report.realized_plan)
        assert validation.is_feasible, [str(v) for v in validation.violations[:5]]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(config=disruption_configs(), seed=st.integers(0, 2**16))
    def test_retention_is_bounded_and_consistent(self, solved, config, seed):
        report = _run(solved, SimulationConfig(seed=seed, disruptions=config))
        if report.resilience is None:
            assert report.throughput_retention == 1.0
            return
        resilience = report.resilience
        assert 0.0 <= resilience.throughput_retention <= 1.0 + 1e-9
        assert resilience.units_served == report.units_served
        assert resilience.num_recoveries >= 0
        assert resilience.agent_downtime >= resilience.repairs  # each repair >= 1 tick down
