"""The structured event log: determinism, bounded fan-out, and SSE framing.

Three layers under test:

* :class:`~repro.obs.events.EventLog` in isolation — byte-determinism under
  fixed clocks (two identical emit sequences serialize identically, in
  memory and on disk), ring/replay semantics, bounded subscriptions that
  drop instead of stalling, thread-local context layering;
* the JSONL file sink — flock-appended lines parse back, malformed/partial
  lines are skipped, not fatal;
* the live ``GET /events`` Server-Sent-Events endpoint on a real
  :class:`~repro.service.server.ServiceServer` — well-formed ``id:`` /
  ``event:`` / ``data:`` frames, keep-alive comments while idle, replay via
  ``since=`` and ``Last-Event-ID`` (the reconnect path), and a client that
  disconnects mid-stream leaving the server healthy with no leaked
  subscription.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.obs import (
    CONTEXT_KEYS,
    Event,
    EventError,
    EventLog,
    current_context,
    event_context,
    read_events,
)
from repro.service import ServiceConfig, ServiceServer


class FakeClock:
    """A deterministic clock: starts at ``start``, advances ``step`` per call."""

    def __init__(self, start: float = 0.0, step: float = 0.125):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def fixed_log(tmp_path=None, **kwargs) -> EventLog:
    log = EventLog(
        clock=FakeClock(start=0.0, step=0.25),
        wall=FakeClock(start=1_754_650_000.0, step=1.0),
        path=(tmp_path / "events.jsonl") if tmp_path else None,
        **kwargs,
    )
    return log


def emit_sample_sequence(log: EventLog) -> None:
    log.emit("sweep.started", "sweep", message="smoke", total=9, workers=2)
    with event_context(run_id="sweep-1", scenario_id="8a65fb6b025c"):
        log.emit("run.started", "runner", message="smoke/tiny")
        log.emit(
            "run.finished",
            "runner",
            level="warning",
            message="timeout",
            status="timeout",
            seconds=1.25,
        )
    log.emit("sweep.finished", "sweep", total=9, seconds=3.5)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_event_log_is_byte_deterministic_under_fixed_clocks(tmp_path):
    first = fixed_log(tmp_path / "a")
    second = fixed_log(tmp_path / "b")
    emit_sample_sequence(first)
    emit_sample_sequence(second)
    lines_a = (tmp_path / "a" / "events.jsonl").read_bytes()
    lines_b = (tmp_path / "b" / "events.jsonl").read_bytes()
    assert lines_a == lines_b
    assert len(lines_a.splitlines()) == 4
    memory_a = [json.dumps(e, sort_keys=True) for e in first.recent()]
    memory_b = [json.dumps(e, sort_keys=True) for e in second.recent()]
    assert memory_a == memory_b
    # The file and the ring agree byte for byte.
    assert lines_a.decode().splitlines() == memory_a


def test_event_serialization_has_fixed_key_order_and_rounding():
    event = Event(
        seq=17,
        ts=1754650000.123456789,
        mono=3.14159265358979,
        level="info",
        component="sweep",
        kind="run.finished",
        message="ok",
        fields={"b": 2, "a": 1},
    )
    document = event.to_dict()
    assert list(document) == [
        "seq", "ts", "mono", "level", "component", "kind",
        "message", "run_id", "request_id", "scenario_id", "fields",
    ]
    assert document["ts"] == 1754650000.123457  # 1 µs
    assert document["mono"] == 3.141592654  # 1 ns
    assert list(document["fields"]) == ["a", "b"]
    assert Event.from_dict(json.loads(event.to_json())).to_json() == event.to_json()


def test_sequence_numbers_are_monotonic_and_clear_resets():
    log = fixed_log()
    emit_sample_sequence(log)
    seqs = [e["seq"] for e in log.recent()]
    assert seqs == [1, 2, 3, 4]
    assert log.last_seq == 4
    log.clear()
    assert log.last_seq == 0 and log.recent() == []


# ---------------------------------------------------------------------------
# ring, subscriptions, context
# ---------------------------------------------------------------------------


def test_ring_buffer_evicts_oldest():
    log = EventLog(capacity=3)
    for index in range(5):
        log.emit("tick", "test", index=index)
    seqs = [e["seq"] for e in log.recent()]
    assert seqs == [3, 4, 5]
    assert log.last_seq == 5


def test_subscribe_replays_ring_tail_after_since():
    log = fixed_log()
    emit_sample_sequence(log)
    live_only = log.subscribe(since=-1)
    assert live_only.get(timeout=0.01) is None
    full = log.subscribe(since=0)
    assert [full.get(timeout=0.01).seq for _ in range(4)] == [1, 2, 3, 4]
    partial = log.subscribe(since=2)
    assert [partial.get(timeout=0.01).seq for _ in range(2)] == [3, 4]
    assert partial.get(timeout=0.01) is None
    # New events reach every live subscriber.
    log.emit("tick", "test")
    assert live_only.get(timeout=0.01).seq == 5
    assert full.get(timeout=0.01).seq == 5
    for subscription in (live_only, full, partial):
        log.unsubscribe(subscription)
    assert log.num_subscribers == 0


def test_slow_subscriber_drops_instead_of_stalling():
    log = EventLog()
    subscription = log.subscribe(capacity=2)
    for index in range(5):
        log.emit("tick", "test", index=index)
    assert subscription.dropped == 3
    assert subscription.get(timeout=0.01).seq == 1
    assert subscription.get(timeout=0.01).seq == 2
    assert subscription.get(timeout=0.01) is None
    log.unsubscribe(subscription)
    assert subscription.closed


def test_event_context_layers_and_explicit_kwargs_win():
    log = fixed_log()
    with event_context(run_id="outer"):
        with event_context(scenario_id="abc123"):
            assert current_context() == {"run_id": "outer", "scenario_id": "abc123"}
            event = log.emit("tick", "test")
            assert event.run_id == "outer" and event.scenario_id == "abc123"
            override = log.emit("tick", "test", scenario_id="explicit")
            assert override.scenario_id == "explicit" and override.run_id == "outer"
        assert current_context() == {"run_id": "outer"}
    assert current_context() == {}
    # Context never leaks into the free-form fields payload.
    assert event.to_dict()["fields"] == {}


def test_unknown_context_key_and_level_fail_loudly():
    log = EventLog()
    with pytest.raises(EventError, match="unknown context key"):
        with event_context(trace_id="nope"):
            pass  # pragma: no cover - context manager raises on entry
    with pytest.raises(EventError, match="unknown level"):
        log.emit("tick", "test", level="fatal")
    assert set(CONTEXT_KEYS) == {"run_id", "request_id", "scenario_id"}


def test_disabled_log_is_silent(tmp_path):
    log = fixed_log(tmp_path)
    log.enabled = False
    assert log.emit("tick", "test") is None
    assert log.last_seq == 0
    assert (tmp_path / "events.jsonl").read_text() == ""
    log.enabled = True
    assert log.emit("tick", "test").seq == 1


# ---------------------------------------------------------------------------
# the JSONL file sink
# ---------------------------------------------------------------------------


def test_read_events_skips_malformed_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    log = fixed_log(tmp_path)
    emit_sample_sequence(log)
    raw = path.read_text()
    # Simulate a torn write and stray junk between two valid appends.
    lines = raw.splitlines()
    mangled = "\n".join(
        lines[:2] + ['{"seq": 99, "truncat', "not json at all", "[1, 2, 3]", ""] + lines[2:]
    )
    path.write_text(mangled + "\n")
    events = read_events(path)
    assert [e["seq"] for e in events] == [1, 2, 3, 4]
    assert events[2]["scenario_id"] == "8a65fb6b025c"
    assert read_events(tmp_path / "missing.jsonl") == []


def test_detach_file_stops_appending(tmp_path):
    log = fixed_log(tmp_path)
    log.emit("tick", "test")
    log.detach_file()
    log.emit("tick", "test")
    assert len(read_events(tmp_path / "events.jsonl")) == 1
    assert log.last_seq == 2  # the ring still records


# ---------------------------------------------------------------------------
# the /events SSE endpoint
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=4, warm_up=False)
    ).start()
    yield instance
    assert instance.stop(drain_timeout=30)


def parse_sse(payload: str):
    """Split an SSE byte stream into (comments, frames) where each frame is
    the dict of ``field: value`` lines between blank-line delimiters."""
    comments, frames, current = [], [], {}
    for line in payload.split("\n"):
        if line.startswith(":"):
            comments.append(line)
        elif not line:
            if current:
                frames.append(current)
                current = {}
        else:
            field, _, value = line.partition(":")
            current[field] = value.lstrip()
    if current:
        frames.append(current)
    return comments, frames


def stream_raw(server, query: str, headers=None, read_seconds: float = 5.0) -> str:
    """GET /events and read until the server closes (bounded by ``max=``)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=read_seconds)
    try:
        connection.request("GET", f"/events?{query}", headers=headers or {})
        reply = connection.getresponse()
        assert reply.status == 200
        assert reply.headers["Content-Type"].startswith("text/event-stream")
        return reply.read().decode("utf-8")
    finally:
        connection.close()


def test_sse_frames_are_well_formed(server):
    events = server.service.events
    base = events.last_seq
    events.emit("test.alpha", "test", message="first", index=1)
    events.emit("test.beta", "test", level="warning", message="second", index=2)
    payload = stream_raw(server, f"since={base}&max=2")
    comments, frames = parse_sse(payload)
    assert ": stream opened" in comments
    assert len(frames) == 2
    for frame, kind in zip(frames, ("test.alpha", "test.beta")):
        assert set(frame) == {"id", "event", "data"}
        assert frame["event"] == kind
        document = json.loads(frame["data"])
        assert document["kind"] == kind
        assert int(frame["id"]) == document["seq"]
    assert json.loads(frames[1]["data"])["fields"] == {"index": 2}


def test_sse_sends_keepalive_comments_while_idle(server):
    events = server.service.events

    def emit_soon():
        time.sleep(0.8)
        events.emit("test.late", "test", message="wake up")

    import threading

    thread = threading.Thread(target=emit_soon)
    thread.start()
    try:
        payload = stream_raw(server, f"since={events.last_seq}&max=1&keepalive=0.2")
    finally:
        thread.join()
    comments, frames = parse_sse(payload)
    assert any(comment == ": keep-alive" for comment in comments)
    assert len(frames) == 1 and frames[0]["event"] == "test.late"


def test_sse_reconnect_replays_via_last_event_id(server):
    events = server.service.events
    base = events.last_seq
    first = events.emit("test.one", "test").seq
    events.emit("test.two", "test")
    # A first read consumed up to `first`; the reconnect passes it back.
    payload = stream_raw(server, "max=1", headers={"Last-Event-ID": str(first)})
    _, frames = parse_sse(payload)
    assert [f["event"] for f in frames] == ["test.two"]
    # `since=` works the same way when no header is set.
    payload = stream_raw(server, f"since={base}&max=2")
    _, frames = parse_sse(payload)
    assert [f["event"] for f in frames] == ["test.one", "test.two"]


def test_sse_client_disconnect_mid_stream_is_clean(server):
    events = server.service.events
    baseline = events.num_subscribers
    connection = http.client.HTTPConnection(server.host, server.port, timeout=5)
    connection.request("GET", f"/events?since={events.last_seq}&keepalive=0.1")
    reply = connection.getresponse()
    assert reply.status == 200
    assert reply.fp.readline() == b": stream opened\n"
    assert events.num_subscribers == baseline + 1
    # Hang up mid-stream without reading to the end.  (Closing the response
    # too matters: it holds its own reference to the socket, and the FIN only
    # goes out once both are gone.)
    reply.close()
    connection.close()
    # The handler notices on its next write (keep-alive or event) and drops
    # the subscription.
    deadline = time.time() + 5.0
    while events.num_subscribers > baseline and time.time() < deadline:
        events.emit("test.poke", "test")
        time.sleep(0.05)
    assert events.num_subscribers == baseline
    # The server is still perfectly healthy for the next client.
    connection = http.client.HTTPConnection(server.host, server.port, timeout=5)
    connection.request("GET", "/healthz")
    health = json.loads(connection.getresponse().read())
    connection.close()
    assert health["status"] == "ok"
    assert "uptime_seconds" in health and "version" in health


def test_sse_rejects_malformed_parameters(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=5)
    connection.request("GET", "/events?since=abc")
    reply = connection.getresponse()
    body = json.loads(reply.read())
    connection.close()
    assert reply.status == 400
    assert "since" in body["error"]


def test_dashboard_snapshot_carries_the_event_tail(server):
    events = server.service.events
    marker = events.emit("test.dash", "test", message="dashboard marker").seq
    connection = http.client.HTTPConnection(server.host, server.port, timeout=5)
    connection.request("GET", "/dashboard?events=10")
    document = json.loads(connection.getresponse().read())
    connection.close()
    assert document["schema"] == "service-dashboard"
    assert document["last_event_seq"] >= marker
    kinds = [e["kind"] for e in document["events"]]
    assert "test.dash" in kinds
    assert document["health"]["status"] == "ok"
