"""Tests for the agent-flow synthesis stage."""

import pytest

from repro.core import SynthesisOptions, synthesize_flows
from repro.maps import toy_warehouse
from repro.solver import SolveStatus
from repro.warehouse import Workload


@pytest.fixture(scope="module")
def designed():
    return toy_warehouse()


@pytest.fixture(scope="module")
def system(designed):
    return designed.traffic_system


@pytest.fixture(scope="module")
def workload(designed):
    return Workload.uniform(designed.warehouse.catalog, 8)


@pytest.fixture(scope="module")
def result(system, workload):
    return synthesize_flows(system, workload, horizon=600)


class TestSynthesisSuccess:
    def test_status_and_flow_set(self, result):
        assert result.succeeded
        assert result.status.has_solution
        assert result.flow_set is not None

    def test_cycle_time_matches_system(self, result, system):
        assert result.cycle_time == system.cycle_time()
        assert result.num_periods == 600 // system.cycle_time()
        assert result.flow_set.cycle_time == result.cycle_time

    def test_flow_set_conserves_and_respects_capacity(self, result):
        assert result.flow_set.check_conservation() == []
        assert result.flow_set.check_capacity() == []

    def test_deliveries_cover_demand_rate(self, result, workload):
        flow_set = result.flow_set
        # Aggregate drop-off rate integrated over the effective horizon must
        # cover the total demand.
        assert (
            flow_set.deliveries_per_period() * flow_set.effective_periods
            >= workload.total_units
        )

    def test_per_product_rates_cover_demand(self, result, workload):
        flow_set = result.flow_set
        for product in workload.requested_products():
            rate = sum(
                value for (_, p), value in flow_set.dropoff_rates.items() if p == product
            )
            assert rate * flow_set.effective_periods >= workload.demand(product) - 1e-6

    def test_pickups_match_dropoffs(self, result):
        flow_set = result.flow_set
        assert flow_set.pickups_per_period() == flow_set.deliveries_per_period()

    def test_agents_equal_total_flow(self, result):
        flow_set = result.flow_set
        assert flow_set.num_agents == sum(flow_set.loaded_flows.values()) + sum(
            flow_set.empty_flows.values()
        )
        assert flow_set.num_agents > 0

    def test_timings_and_model_stats_recorded(self, result):
        assert result.build_seconds >= 0
        assert result.solve_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.build_seconds + result.solve_seconds
        )
        assert result.num_variables > 0
        assert result.num_constraints > 0

    def test_contracts_attached(self, result):
        assert result.traffic_contract is not None
        assert result.workload_contract is not None
        assert result.workload_contract.num_guarantees > 0


class TestSynthesisVariants:
    def test_feasibility_objective(self, system, workload):
        result = synthesize_flows(
            system, workload, horizon=600, options=SynthesisOptions(objective="none")
        )
        assert result.succeeded
        assert result.flow_set.check_conservation() == []

    def test_min_carrying_objective(self, system, workload):
        result = synthesize_flows(
            system,
            workload,
            horizon=600,
            options=SynthesisOptions(objective="min_carrying"),
        )
        assert result.succeeded

    def test_min_agents_uses_fewest_agents(self, system, workload):
        minimal = synthesize_flows(system, workload, horizon=600)
        free = synthesize_flows(
            system, workload, horizon=600, options=SynthesisOptions(objective="none")
        )
        assert minimal.flow_set.num_agents <= free.flow_set.num_agents

    def test_larger_cycle_time_factor(self, system, workload):
        result = synthesize_flows(
            system,
            workload,
            horizon=600,
            options=SynthesisOptions(cycle_time_factor=3),
        )
        assert result.cycle_time == system.cycle_time(3)
        assert result.succeeded

    def test_branch_and_bound_backend_on_small_model(self, system, designed):
        workload = Workload.from_mapping(designed.warehouse.catalog, {1: 2})
        result = synthesize_flows(
            system, workload, horizon=600, options=SynthesisOptions(backend="bnb")
        )
        assert result.succeeded

    def test_explicit_warmup(self, system, workload):
        result = synthesize_flows(
            system, workload, horizon=600, options=SynthesisOptions(warmup_periods=0)
        )
        assert result.succeeded
        assert result.flow_set.warmup_periods == 0


class TestSynthesisFailure:
    def test_impossible_workload_is_infeasible(self, system, designed):
        # Demand far beyond the traffic system's per-period capacity.
        workload = Workload.uniform(designed.warehouse.catalog, 100_000)
        result = synthesize_flows(system, workload, horizon=600)
        assert not result.succeeded
        assert result.status == SolveStatus.INFEASIBLE

    def test_horizon_shorter_than_cycle_period(self, system, workload):
        from repro.core.workload_contract import WorkloadContractError

        with pytest.raises(WorkloadContractError):
            synthesize_flows(system, workload, horizon=5)

    def test_contract_precheck_reports_consistent(self, system, workload):
        result = synthesize_flows(
            system, workload, horizon=600, options=SynthesisOptions(check_contracts=True)
        )
        assert result.succeeded
