"""Observability overhead and the first CBS phase-time breakdown.

Two measurements on the small sorting map, emitted as ``BENCH_obs.json``
at the repository root:

* **overhead** — the same grid-routed simulation timed with tracing
  disabled and enabled (min-of-N wall clock each way).  The acceptance bar
  is < 5% relative overhead: instrumentation that taxes the pipeline more
  than that would distort every future performance PR's numbers.  The
  disabled path must be *zero-cost* by construction (``NULL_SPAN``), so the
  enabled-path budget is what this benchmark actually polices.
* **cbs_breakdown** — one CBS-routed simulation captured under the tracer,
  with the ``mapf.cbs`` phase timers (heuristic / low_level /
  conflict_detection / ct_management) summed over every routing episode:
  the paper-style answer to "where does the CBS search spend its time?".
* **events_overhead** — the same simulation run disruption-laden (the
  chattiest event source: every onset/recovery emits a structured event)
  timed with the event log disabled and enabled, under the same < 5%
  budget as the tracer.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.obs import capture_trace, get_event_log, span_phase_totals, tracing_enabled
from repro.sim import RoutingConfig, SimulationConfig, parse_disruptions

from .conftest import get_designed, solve_instance, write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

MAP_NAME = "sorting-center-small"
UNITS = 4
HORIZON = 400
#: min-of-N repetitions per timing (min is robust against scheduler noise).
#: The PR 8 search-core rewrite made the measured run ~10x faster (tens of
#: ms), so a handful of samples no longer resolves a 5% *relative* budget
#: against scheduler jitter; many short samples beat few long ones because
#: the min of a short window escapes noise bursts a long window cannot.
REPEATS = 25
OVERHEAD_BUDGET_PCT = 5.0
CBS_PHASES = ("conflict_detection", "ct_management", "heuristic", "low_level")


@pytest.fixture(scope="module")
def solved(designed_maps):
    designed = get_designed(designed_maps, MAP_NAME)
    solution = solve_instance(designed, UNITS, HORIZON)
    return designed, solution


def _simulate(designed, solution, router: str):
    from repro.core import WSPSolver

    solver = WSPSolver(designed.traffic_system)
    config = SimulationConfig(
        record_events=False, routing=RoutingConfig(router=router)
    )
    return solver.simulate(solution, config)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _min_of_interleaved(plain_fn, instrumented_fn) -> tuple:
    """Min-of-``REPEATS`` wall clock for two arms, interleaved so clock-drift
    hits both equally, with the cyclic GC paused so collection pauses (the
    instrumented arm allocates ring-retained events/spans) don't land
    asymmetrically inside one sample — the same discipline ``timeit`` uses.
    """
    disabled, enabled = float("inf"), float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            gc.collect()
            disabled = min(disabled, _timed(plain_fn))
            gc.collect()
            enabled = min(enabled, _timed(instrumented_fn))
    finally:
        if gc_was_enabled:
            gc.enable()
    return disabled, enabled


@pytest.fixture(scope="module")
def overhead(solved):
    designed, solution = solved
    assert not tracing_enabled(), "tracing must start disabled"

    def plain():
        _simulate(designed, solution, "prioritized")

    def traced():
        with capture_trace():
            _simulate(designed, solution, "prioritized")

    # Warm-up (imports, allocator, branch caches), then *interleave* the two
    # arms so clock-frequency drift hits both equally; min-of-N is robust
    # against scheduler noise.
    plain()
    disabled, enabled = _min_of_interleaved(plain, traced)
    pct = (enabled - disabled) / disabled * 100.0 if disabled > 0 else 0.0
    return {
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_pct": pct,
        "repeats": REPEATS,
    }


@pytest.fixture(scope="module")
def events_overhead(solved):
    designed, solution = solved
    from repro.core import WSPSolver

    solver = WSPSolver(designed.traffic_system)

    def run():
        config = SimulationConfig(
            seed=7,
            record_events=False,
            routing=RoutingConfig(router="prioritized"),
            disruptions=parse_disruptions("breakdown:0.08:10"),
        )
        solver.simulate(solution, config)

    log = get_event_log()
    assert log.enabled, "the event log starts enabled"

    def silenced():
        log.enabled = False
        try:
            run()
        finally:
            log.enabled = True

    # Same discipline as the tracer benchmark: warm-up, then interleave the
    # two arms so clock drift hits both equally; min-of-N beats the noise.
    before = log.last_seq
    run()
    emitted = log.last_seq - before
    assert emitted > 0, "a disrupted run must emit events"
    disabled, enabled = _min_of_interleaved(silenced, run)
    pct = (enabled - disabled) / disabled * 100.0 if disabled > 0 else 0.0
    return {
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_pct": pct,
        "repeats": REPEATS,
        "events_per_run": emitted,
    }


@pytest.fixture(scope="module")
def cbs_breakdown(solved):
    designed, solution = solved
    with capture_trace() as trace:
        report = _simulate(designed, solution, "cbs")
    document = trace.to_dict()
    totals = span_phase_totals(document, "mapf.cbs")
    return report, document, totals


def test_instrumentation_overhead_under_budget(overhead):
    assert overhead["disabled_seconds"] > 0
    assert overhead["overhead_pct"] < OVERHEAD_BUDGET_PCT, (
        f"tracing overhead {overhead['overhead_pct']:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT:.0f}% budget "
        f"({overhead['disabled_seconds']:.3f}s -> {overhead['enabled_seconds']:.3f}s)"
    )


def test_event_logging_overhead_under_budget(events_overhead):
    assert events_overhead["disabled_seconds"] > 0
    assert events_overhead["events_per_run"] > 0
    assert events_overhead["overhead_pct"] < OVERHEAD_BUDGET_PCT, (
        f"event-log overhead {events_overhead['overhead_pct']:.2f}% exceeds "
        f"the {OVERHEAD_BUDGET_PCT:.0f}% budget "
        f"({events_overhead['disabled_seconds']:.3f}s -> "
        f"{events_overhead['enabled_seconds']:.3f}s)"
    )


def test_event_log_reenabled_after_benchmark(events_overhead):
    assert get_event_log().enabled


def test_tracing_restored_after_capture(overhead):
    # The module fixtures toggled tracing repeatedly; the ambient state must
    # come back disabled or every later benchmark pays the enabled tax.
    assert not tracing_enabled()


def test_cbs_phase_breakdown_complete(cbs_breakdown):
    report, _, totals = cbs_breakdown
    assert report.routing is not None and report.routing.conflicts == 0
    assert set(totals) == set(CBS_PHASES)
    for phase in CBS_PHASES:
        assert totals[phase] > 0.0, f"phase {phase!r} never accumulated time"
    # The phase timers cover real work: their sum is within the total time
    # the mapf.cbs spans report (phases cannot exceed their spans).
    cbs_total = 0.0
    for root in cbs_breakdown[1]["spans"]:
        stack = [root]
        while stack:
            node = stack.pop()
            if node["name"] == "mapf.cbs":
                cbs_total += node["duration"]
            stack.extend(node.get("children", []))
    assert sum(totals.values()) <= cbs_total * 1.01


def test_emit_bench_obs_json(overhead, events_overhead, cbs_breakdown):
    """Write the BENCH_obs.json artifact consumed by the perf driver."""
    report, _, totals = cbs_breakdown
    document = {
        "schema": "bench-obs",
        "version": 1,
        "map": MAP_NAME,
        "units": UNITS,
        "horizon": HORIZON,
        "overhead": {
            "router": "prioritized",
            "disabled_seconds": round(overhead["disabled_seconds"], 6),
            "enabled_seconds": round(overhead["enabled_seconds"], 6),
            "overhead_pct": round(overhead["overhead_pct"], 3),
            "budget_pct": OVERHEAD_BUDGET_PCT,
            "repeats": overhead["repeats"],
        },
        "events_overhead": {
            "router": "prioritized",
            "disruptions": "breakdown:0.08:10",
            "disabled_seconds": round(events_overhead["disabled_seconds"], 6),
            "enabled_seconds": round(events_overhead["enabled_seconds"], 6),
            "overhead_pct": round(events_overhead["overhead_pct"], 3),
            "budget_pct": OVERHEAD_BUDGET_PCT,
            "repeats": events_overhead["repeats"],
            "events_per_run": events_overhead["events_per_run"],
        },
        "cbs_breakdown": {
            "router": "cbs",
            "replans": float(report.routing.replans),
            "expansions": float(report.routing.expansions),
            "phase_seconds": {
                phase: round(seconds, 6) for phase, seconds in sorted(totals.items())
            },
        },
    }
    reloaded = write_bench(BENCH_PATH, document)
    assert set(reloaded["cbs_breakdown"]["phase_seconds"]) == set(CBS_PHASES)
    shares = {
        phase: seconds / (sum(totals.values()) or 1.0)
        for phase, seconds in sorted(totals.items())
    }
    print(
        "\nCBS phase breakdown: "
        + ", ".join(f"{phase}={share:.0%}" for phase, share in shares.items())
    )
