"""Experiment E15 (extension): resilience under failure injection.

Solves one catalog instance (``sorting-center-small``), executes the realized
plan through the digital twin once per disruption profile — the nominal
baseline, each disruption family in isolation, and a combined storm with and
without the online recovery policies — and emits ``BENCH_resilience.json`` at
the repository root: one row per profile with the resilience telemetry
(throughput retention, recovery actions and latency, downtime, dropped/late
orders, contract-breach windows).

This is the machine-readable artifact later resilience/performance PRs
compare against.  The assertions pin the properties the comparison relies on:

* the nominal profile retains the full synthesized throughput (retention 1);
* an agent-breakdown profile completes, degrades throughput (retention < 1)
  and performs at least one recovery action — the acceptance gate of the
  disruption subsystem;
* every disrupted run conserves orders and units, and its realized motion is
  a feasible plan under the paper's three conditions;
* disruptions never *increase* throughput beyond nominal.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import resilience_comparison_table, resilience_row
from repro.core import WSPSolver
from repro.maps.catalog import sorting_center_small
from repro.sim import SimulationConfig, parse_disruptions
from repro.warehouse import PlanValidator, Workload

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

MAP_NAME = "sorting-center-small"
UNITS = 4
HORIZON = 400
SEED = 7

PROFILES = (
    ("nominal", "none"),
    ("breakdown", "breakdown:0.01:20"),
    ("slowdown", "slowdown:0.02:25"),
    ("outage", "outage:0.01:30"),
    ("block", "block:0.02:12"),
    ("surge", "surge:0.05:3,deadline:80"),
    ("storm", "breakdown:0.008:15,slowdown:0.01:15,outage:0.005:25,block:0.01:10,surge:0.03:2"),
    ("storm-norecover", "breakdown:0.008:15,slowdown:0.01:15,outage:0.005:25,block:0.01:10,surge:0.03:2,norecover"),
)


@pytest.fixture(scope="module")
def profile_reports():
    designed = sorting_center_small().designed
    solver = WSPSolver(designed.traffic_system)
    workload = Workload.uniform(designed.warehouse.catalog, UNITS)
    solution = solver.solve(workload, horizon=HORIZON)
    assert solution.succeeded, solution.message
    reports = {}
    for name, profile in PROFILES:
        config = SimulationConfig(
            seed=SEED, disruptions=parse_disruptions(profile), record_events=False
        )
        reports[name] = solver.simulate(solution, config)
    return designed, solution, reports


def test_every_profile_produces_a_row(profile_reports):
    _, _, reports = profile_reports
    assert set(reports) == {name for name, _ in PROFILES}
    for name, report in reports.items():
        row = resilience_row(report)
        assert row["units_served"] >= 0
        assert 0.0 <= row["throughput_retention"] <= 1.0, name


def test_nominal_profile_retains_everything(profile_reports):
    _, solution, reports = profile_reports
    nominal = reports["nominal"]
    assert nominal.resilience is None
    assert nominal.throughput_retention == 1.0
    assert nominal.units_served == solution.plan.total_delivered()


def test_breakdowns_degrade_throughput_with_recovery(profile_reports):
    """The acceptance gate: a catalog preset run with a positive breakdown
    rate completes, reports retention < 1.0, and recovers at least once."""
    _, _, reports = profile_reports
    report = reports["breakdown"]
    resilience = report.resilience
    assert resilience is not None
    assert resilience.breakdowns > 0
    assert resilience.num_recoveries >= 1
    assert resilience.throughput_retention < 1.0
    assert resilience.agent_downtime > 0


def test_disrupted_runs_conserve_and_stay_feasible(profile_reports):
    designed, _, reports = profile_reports
    validator = PlanValidator(designed.warehouse)
    for name, report in reports.items():
        trace = report.trace
        assert trace.conservation_report() == [], name
        assert trace.orders_served + trace.orders_pending == trace.orders_created, name
        if report.realized_plan is not None:
            assert validator.is_feasible(report.realized_plan), name


def test_no_profile_beats_nominal_throughput(profile_reports):
    _, _, reports = profile_reports
    ceiling = reports["nominal"].units_served
    for name, report in reports.items():
        assert report.units_served <= ceiling, name


def test_emit_bench_resilience_json(profile_reports):
    """Write the BENCH_resilience.json artifact consumed by the perf driver."""
    _, solution, reports = profile_reports
    rows = []
    for name, profile in PROFILES:
        report = reports[name]
        row = resilience_row(report)
        row["profile"] = name
        row["spec"] = profile
        row["sim_seconds"] = float(report.seconds)
        row["contracts_ok"] = float(report.contracts_ok)
        rows.append(row)
    document = {
        "schema": "bench-resilience",
        "version": 1,
        "map": MAP_NAME,
        "units": UNITS,
        "horizon": HORIZON,
        "seed": SEED,
        "num_agents": solution.num_agents,
        "plan_delivered": solution.plan.total_delivered(),
        "profiles": rows,
    }
    reloaded = write_bench(BENCH_PATH, document)
    assert [row["profile"] for row in reloaded["profiles"]] == [n for n, _ in PROFILES]
    print(
        "\n"
        + resilience_comparison_table(
            [reports[name] for name, _ in PROFILES], labels=[n for n, _ in PROFILES]
        )
    )
