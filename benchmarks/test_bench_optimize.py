"""Closed-loop optimization campaigns over the solve→simulate pipeline.

Two small, fully deterministic campaigns emitted as ``BENCH_optimize.json``
at the repository root:

* **slotting_anneal** — simulated annealing over the product→shelf
  permutation of the ``slotting-small`` preset (whose seed design is a
  deliberately naive slotting).  The acceptance bar is *tuned beats seed*:
  the campaign must strictly improve the throughput objective within the
  fixed budget — a search layer that cannot beat an intentionally bad
  baseline is broken.
* **joint_hill** — batched hill climbing over the joint slotting + layout
  space, recorded for convergence-shape comparison (improvement is gated
  here too: the joint space contains the slotting space).

Both campaigns evaluate through a content-addressed ``CachedEvaluator``; the
bench also gates a **nonzero cache hit-rate** — permutation swaps revisit
designs often enough that a cold cache across an entire campaign means the
scenario-id keying broke.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.optimize import (
    CachedEvaluator,
    make_objective,
    make_optimizer,
    preset_space,
    run_campaign,
)

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_optimize.json"

BUDGET = 24
SEED = 1

CAMPAIGNS = (
    ("slotting_anneal", "slotting-small", "anneal", {}),
    ("joint_hill", "joint-small", "hill", {"batch_size": 4}),
)


def _run(preset: str, optimizer_name: str, options: dict):
    space = preset_space(preset, seed=0)
    evaluator = CachedEvaluator()
    started = time.perf_counter()
    try:
        result = run_campaign(
            space,
            make_optimizer(optimizer_name, **options),
            make_objective("throughput"),
            evaluator,
            budget=BUDGET,
            seed=SEED,
        )
    finally:
        evaluator.close()
    return result, time.perf_counter() - started


@pytest.fixture(scope="module")
def campaign_results():
    return {
        key: _run(preset, optimizer, options)
        for key, preset, optimizer, options in CAMPAIGNS
    }


def _section(preset: str, optimizer: str, result, seconds: float) -> dict:
    return {
        "preset": preset,
        "optimizer": optimizer,
        "budget": result.budget,
        "seed": result.seed,
        "fingerprint": result.fingerprint(),
        "baseline": {
            "scenario_id": result.baseline_spec.scenario_id,
            "score": result.baseline_score,
        },
        "best": {
            "scenario_id": result.best_spec.scenario_id,
            "score": result.best_score,
        },
        "improvement": result.improvement,
        "steps": len(result.steps),
        "evaluations": result.evaluations,
        "accepted": result.accepted,
        "improved": result.improved,
        "convergence": [step.best_score for step in result.steps],
        "cache": result.cache,
        "wall_seconds": seconds,
    }


def test_bench_optimize(campaign_results):
    document = {"schema": "bench-optimize", "version": 1, "budget": BUDGET, "seed": SEED}
    for key, preset, optimizer, _options in CAMPAIGNS:
        result, seconds = campaign_results[key]
        document[key] = _section(preset, optimizer, result, seconds)
    persisted = write_bench(BENCH_PATH, document)

    for key, _preset, _optimizer, _options in CAMPAIGNS:
        section = persisted[key]
        # Gate 1: tuned beats seed, strictly, within the fixed budget.
        assert section["best"]["score"] > section["baseline"]["score"], (
            f"{key}: the campaign failed to improve on the naive seed design "
            f"(baseline {section['baseline']['score']}, best {section['best']['score']})"
        )
        assert section["best"]["scenario_id"] != section["baseline"]["scenario_id"]
        # Gate 2: the content-addressed cache absorbed revisited designs.
        assert section["cache"]["hit_rate"] > 0.0, (
            f"{key}: an entire campaign ran cold — scenario-id keying is broken"
        )
        # The convergence trace is monotone in the best score by construction.
        trace = section["convergence"]
        assert trace == sorted(trace)
        assert section["evaluations"] == BUDGET
