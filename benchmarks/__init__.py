"""Benchmark harness package.

The benchmark modules import shared helpers with ``from .conftest import …``,
which requires package context; this file provides it so a plain
``python -m pytest`` from the repository root collects the benchmarks cleanly.
"""
