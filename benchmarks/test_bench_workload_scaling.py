"""Experiment E9: runtime sensitivity to the workload size.

Sec. V of the paper observes that doubling the units of product in the
workload increases the flow-synthesis runtime by less than 10% on both map
families (the methodology's cost is driven by the traffic system and the
product count, not by the demand volume).  This benchmark sweeps ×1 / ×2 / ×3
workloads per map and checks the relative growth.
"""

from __future__ import annotations

import pytest

from .conftest import get_designed, paper_scale_enabled, solve_instance

SWEEPS_SMALL = {
    "sorting-center-small": ((16, 32, 48), 1500),
    "fulfillment-1-small": ((24, 48, 72), 1500),
}
SWEEPS_PAPER = {
    "sorting-center": ((160, 320, 480), 3600),
    "fulfillment-1": ((550, 1100, 1650), 3600),
}


def _sweeps():
    return SWEEPS_PAPER if paper_scale_enabled() else SWEEPS_SMALL


@pytest.mark.parametrize("map_name", list(SWEEPS_PAPER if paper_scale_enabled() else SWEEPS_SMALL))
def test_workload_doubling(benchmark, map_name, designed_maps):
    """Doubling the workload must increase synthesis runtime only mildly."""
    workloads, horizon = _sweeps()[map_name]
    designed = get_designed(designed_maps, map_name)
    runtimes = {}
    repeats = 1 if paper_scale_enabled() else 2

    def run_all():
        for units in workloads:
            samples = []
            for _ in range(repeats):
                solution = solve_instance(designed, units, horizon)
                samples.append(solution.synthesis_seconds)
            runtimes[units] = min(samples)
        return runtimes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    base, doubled = workloads[0], workloads[1]
    growth = runtimes[doubled] / max(runtimes[base], 1e-9)
    benchmark.extra_info["runtimes"] = {str(k): round(v, 4) for k, v in runtimes.items()}
    benchmark.extra_info["x2_growth_factor"] = round(growth, 3)
    if paper_scale_enabled():
        # The paper reports < 1.10; allow some margin for solver noise while
        # still ruling out anything close to demand-proportional growth.
        assert growth < 1.25, f"doubling the workload grew runtime by {growth:.2f}x"
    else:
        # The small presets solve in ~0.1 s where MILP branching noise
        # dominates; the check degrades to a smoke test that growth stays far
        # from linear-in-demand (the paper-scale run enforces the real bound).
        assert growth < 3.0, f"doubling the workload grew runtime by {growth:.2f}x"
