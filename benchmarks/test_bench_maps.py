"""Experiments E3 / E4: the evaluation maps (Fig. 4 and Fig. 5).

The paper's figures show the two evaluation map families with their traffic
systems.  These benchmarks regenerate the presets, check that their headline
statistics track the paper's (cells, shelves, stations, products), verify the
design rules, and measure the generation + rule-checking time (the "topology"
part of the co-design loop).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_traffic_system
from repro.maps import MAP_REGISTRY, PAPER_MAP_STATS
from repro.traffic import validate

PRESETS = ["fulfillment-1", "fulfillment-2", "sorting-center"]


@pytest.mark.parametrize("name", PRESETS)
def test_map_generation(benchmark, name):
    """Benchmark map + traffic-system generation; check geometry vs. the paper."""

    def generate():
        obj = MAP_REGISTRY[name]()
        return obj.designed if hasattr(obj, "designed") else obj

    designed = benchmark(generate)
    grid = designed.warehouse.floorplan.grid
    paper_cells, paper_shelves, _, paper_products = PAPER_MAP_STATS[name]

    assert validate(designed.traffic_system).is_valid
    assert designed.warehouse.num_products == paper_products
    assert abs(grid.width * grid.height - paper_cells) / paper_cells < 0.25
    if name != "sorting-center":
        assert grid.num_shelves == paper_shelves

    benchmark.extra_info["cells"] = grid.width * grid.height
    benchmark.extra_info["paper_cells"] = paper_cells
    benchmark.extra_info["shelves"] = grid.num_shelves
    benchmark.extra_info["components"] = designed.traffic_system.num_components
    benchmark.extra_info["max_component_length"] = designed.traffic_system.max_component_length


@pytest.mark.parametrize("name", ["fulfillment-1", "sorting-center"])
def test_figure_rendering(benchmark, name):
    """The Fig. 4 / Fig. 5 ASCII rendering of the traffic system on the map."""
    obj = MAP_REGISTRY[name]()
    designed = obj.designed if hasattr(obj, "designed") else obj

    text = benchmark(render_traffic_system, designed.traffic_system)
    lines = text.splitlines()
    grid = designed.warehouse.floorplan.grid
    assert len(lines) == grid.height
    # Every component exit is marked, exactly like the green "!" cells of Fig. 4.
    assert text.count("!") == designed.traffic_system.num_components
