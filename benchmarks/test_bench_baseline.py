"""Experiment E8: co-design methodology vs. the search-based lifelong baseline.

The paper gives Iterated EECBS the start positions and shelf/station visit
sequences of the co-design solution on the largest instance; the baseline
fails to terminate within an hour while the methodology needs about a minute.
At laptop scale we reproduce the *shape* of that result: the baseline's
runtime grows steeply (super-linearly) with the number of agents it must
coordinate, while the co-design runtime is paid once for the whole team and
does not depend on how many of its agents the baseline is later asked to
replay.
"""

from __future__ import annotations

import pytest

from repro.core import WSPSolver
from repro.maps import fulfillment_center_1_small
from repro.mapf import IteratedPlanner, IteratedPlannerOptions, goal_sequences_from_plan
from repro.warehouse import Workload

#: Team-size prefixes handed to the baseline and its per-run time limit (s).
TEAM_PREFIXES = (2, 4, 6)
BASELINE_TIME_LIMIT = 20.0
GOALS_PER_AGENT = 3


@pytest.fixture(scope="module")
def codesign_solution():
    designed = fulfillment_center_1_small()
    workload = Workload.uniform(designed.warehouse.catalog, 40)
    solution = WSPSolver(designed.traffic_system).solve(workload, horizon=1500)
    assert solution.succeeded
    return designed, solution


def test_codesign_full_team(benchmark, codesign_solution):
    """The methodology's cost for the full team (the baseline's reference point)."""
    designed, _ = codesign_solution
    workload = Workload.uniform(designed.warehouse.catalog, 40)

    def run():
        return WSPSolver(designed.traffic_system).solve(workload, horizon=1500)

    solution = benchmark.pedantic(run, rounds=1, iterations=1)
    assert solution.succeeded
    benchmark.extra_info["num_agents"] = solution.num_agents
    benchmark.extra_info["synthesis_seconds"] = solution.synthesis_seconds


@pytest.mark.parametrize("engine", ["prioritized", "ecbs"])
@pytest.mark.parametrize("team_size", TEAM_PREFIXES)
def test_baseline_team_prefix(benchmark, codesign_solution, engine, team_size):
    """The baseline replaying a team prefix of the co-design solution."""
    designed, solution = codesign_solution
    tasks = goal_sequences_from_plan(solution.plan, max_goals_per_agent=GOALS_PER_AGENT)
    subset = tasks[:team_size]

    def run():
        planner = IteratedPlanner(
            designed.warehouse.floorplan,
            IteratedPlannerOptions(engine=engine, time_limit=BASELINE_TIME_LIMIT),
        )
        return planner.solve(subset)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["completed"] = result.completed
    benchmark.extra_info["goals_completed"] = result.goals_completed
    benchmark.extra_info["expansions"] = result.expansions
    # When the baseline does finish, its plan must be collision-free.
    if result.completed:
        assert result.is_collision_free()


def test_baseline_scaling_is_superlinear(benchmark, codesign_solution):
    """The qualitative Sec. V claim: baseline cost blows up with team size.

    Measured as: the per-agent runtime of the ECBS baseline on the largest
    prefix is at least twice the per-agent runtime on the smallest prefix, or
    the largest prefix fails to finish within its budget at all.
    """
    designed, solution = codesign_solution
    tasks = goal_sequences_from_plan(solution.plan, max_goals_per_agent=GOALS_PER_AGENT)
    runtimes = {}
    completed = {}

    def sweep():
        for team_size in (TEAM_PREFIXES[0], TEAM_PREFIXES[-1]):
            planner = IteratedPlanner(
                designed.warehouse.floorplan,
                IteratedPlannerOptions(engine="ecbs", time_limit=BASELINE_TIME_LIMIT),
            )
            result = planner.solve(tasks[:team_size])
            runtimes[team_size] = result.runtime_seconds
            completed[team_size] = result.completed
        return runtimes

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    small, large = TEAM_PREFIXES[0], TEAM_PREFIXES[-1]
    benchmark.extra_info["runtimes"] = {str(k): round(v, 3) for k, v in runtimes.items()}
    benchmark.extra_info["completed"] = {str(k): v for k, v in completed.items()}
    if completed[large]:
        per_agent_small = runtimes[small] / small
        per_agent_large = runtimes[large] / large
        assert per_agent_large >= 2 * per_agent_small
    else:
        # Failing to finish the large prefix inside the budget *is* the paper's
        # observed outcome at full scale.
        assert not completed[large]
