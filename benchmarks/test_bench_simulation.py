"""Experiment E12 (extension): cost and fidelity of the digital twin.

The discrete-event engine replays a realized plan with telemetry, station
service queues and runtime contract monitoring attached.  These benchmarks
measure what that observability layer costs (ticks/second of simulated time)
and verify its fidelity claim on every small preset: the deterministic
baseline run must realize the synthesized throughput (ratio 1.0) with zero
contract violations, while stochastic service keeps conservation intact.
"""

from __future__ import annotations

import pytest

from repro.sim import ServiceTimeModel, SimulationConfig, simulate_solution

from .conftest import get_designed, solve_instance

SMALL_PRESETS = {
    "sorting-center-small": 16,
    "fulfillment-1-small": 24,
    "fulfillment-2-small": 36,
}


@pytest.fixture(scope="module")
def solutions(designed_maps):
    cache = {}
    for name, units in SMALL_PRESETS.items():
        cache[name] = solve_instance(get_designed(designed_maps, name), units, 1500)
    return cache


@pytest.mark.parametrize("name", sorted(SMALL_PRESETS))
def test_baseline_simulation(benchmark, solutions, name):
    """Deterministic baseline: engine cost + throughput fidelity + clean monitor."""
    solution = solutions[name]
    report = benchmark(lambda: simulate_solution(solution, SimulationConfig(seed=0)))

    assert report.throughput_ratio == pytest.approx(1.0, abs=0.1)
    assert report.contracts_ok, [str(v) for v in report.monitor.violations]
    assert report.trace.conservation_report() == []

    benchmark.extra_info["ticks"] = report.ticks
    benchmark.extra_info["agents"] = report.num_agents
    benchmark.extra_info["units_served"] = report.units_served
    benchmark.extra_info["ticks_per_second"] = (
        report.ticks / report.seconds if report.seconds > 0 else float("inf")
    )


@pytest.mark.parametrize("name", ["sorting-center-small"])
def test_stochastic_simulation(benchmark, solutions, name):
    """Poisson arrivals + geometric service: the observability-heavy configuration."""
    solution = solutions[name]
    config = SimulationConfig(
        seed=5,
        arrival_rate=0.1,
        service_time=ServiceTimeModel.geometric(3.0),
    )
    report = benchmark(lambda: simulate_solution(solution, config))
    assert report.trace.conservation_report() == []
    assert report.trace.orders_created > 0
    benchmark.extra_info["orders"] = report.trace.orders_created
    benchmark.extra_info["mean_queue"] = report.trace.mean_queue_length()


def test_simulation_overhead_vs_realization(solutions):
    """The twin should cost the same order of magnitude as realizing the plan."""
    solution = solutions["sorting-center-small"]
    report = simulate_solution(solution, SimulationConfig(seed=0, record_events=False))
    realization_seconds = solution.timings.get("realization", 0.0)
    assert report.seconds < max(1.0, 50 * max(realization_seconds, 1e-3))
