"""Shared fixtures and helpers for the benchmark harness.

Every benchmark runs at a laptop-friendly scale by default; set the
environment variable ``REPRO_PAPER_SCALE=1`` to run the paper-scale presets
(the Fulfillment-2 instances then take a couple of minutes each, matching the
paper's reported runtimes).

The Table-I benchmarks accumulate their rows in a session-scoped collector and
print the assembled table (ours vs. the paper) at the end of the session, so
``pytest benchmarks/ --benchmark-only`` reproduces the paper's table directly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import BenchmarkRow, table1_report
from repro.core import SolverOptions, WSPSolver
from repro.maps import MAP_REGISTRY
from repro.warehouse import Workload


def paper_scale_enabled() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false", "no")


#: Decimal places every float in a BENCH_*.json is rounded to before writing.
BENCH_FLOAT_DIGITS = 6


def round_floats(value, digits: int = BENCH_FLOAT_DIGITS):
    """Recursively round every float in a JSON-able document.

    Full-precision floats (``0.7804878048780488``) made successive benchmark
    runs churn every BENCH file line even when nothing meaningful moved;
    rounding to a fixed precision keeps diffs to genuinely changed numbers.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: round_floats(item, digits) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_floats(item, digits) for item in value]
    return value


def write_bench(path: Path, document: Dict) -> Dict:
    """Write one BENCH_*.json artifact: sorted keys, fixed float rounding.

    Returns the document as re-read from disk, so callers assert on exactly
    what was persisted.
    """
    stable = round_floats(document)
    path.write_text(json.dumps(stable, indent=2, sort_keys=True) + "\n")
    return json.loads(path.read_text())


@dataclass
class Table1Collector:
    """Accumulates Table-I rows across benchmark tests."""

    rows: List[BenchmarkRow] = field(default_factory=list)

    def add(self, row: BenchmarkRow) -> None:
        self.rows.append(row)

    def report(self) -> str:
        ordered = sorted(self.rows, key=lambda r: (r.map_name, r.units_moved))
        return table1_report(ordered)


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return paper_scale_enabled()


@pytest.fixture(scope="session")
def designed_maps() -> Dict[str, object]:
    """Cache of generated maps so each preset is only built once per session."""
    return {}


@pytest.fixture(scope="session")
def table1_collector():
    collector = Table1Collector()
    yield collector
    if collector.rows:
        print("\n\n" + collector.report() + "\n")


def get_designed(designed_maps: Dict[str, object], name: str):
    """Fetch (and cache) a designed warehouse from the map registry."""
    if name not in designed_maps:
        obj = MAP_REGISTRY[name]()
        designed_maps[name] = obj.designed if hasattr(obj, "designed") else obj
    return designed_maps[name]


def solve_instance(designed, units: int, horizon: int, options: SolverOptions = None):
    """Solve one uniform-workload instance end to end and return the solution."""
    workload = Workload.uniform(designed.warehouse.catalog, units)
    solver = WSPSolver(designed.traffic_system, options or SolverOptions())
    solution = solver.solve(workload, horizon=horizon)
    if not solution.succeeded:
        raise AssertionError(f"instance {designed.warehouse.name}/{units}: {solution.message}")
    return solution


def row_from_solution(map_name: str, units: int, solution) -> BenchmarkRow:
    return BenchmarkRow(
        map_name=map_name,
        unique_products=solution.instance.warehouse.num_products,
        units_moved=units,
        runtime_seconds=solution.synthesis_seconds,
        num_agents=solution.num_agents,
        units_delivered=solution.plan.total_delivered() if solution.plan else 0,
        plan_feasible=solution.plan_is_feasible,
        workload_serviced=solution.services_workload,
    )
