"""Micro-benchmarks pinning the hot-path memos actually pay off.

The serving layer computes ``scenario_id`` on every cache lookup and
rebuilds the floorplan graph on every cold request for an already-seen map;
both were memoized in the serving PR.  These benchmarks assert the second
call is measurably cheaper than the first — with a generous margin, and on
medians over several rounds, so CI timing noise cannot redden them.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import replace

from repro.experiments import ScenarioSpec
from repro.warehouse.floorplan import (
    FloorplanGraph,
    from_grid_cache_clear,
    from_grid_cache_info,
)

BASE = ScenarioSpec(
    kind="fulfillment",
    num_slices=2,
    shelf_columns=5,
    shelf_bands=3,
    num_stations=2,
    num_products=8,
    units=16,
    horizon=900,
)


def median_seconds(callable_, rounds: int = 7) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_scenario_id_second_call_is_cheaper():
    """The memoized re-read beats the initial hash by a wide margin."""
    cold_samples, warm_samples = [], []
    for round_index in range(7):
        spec = replace(BASE, seed=round_index)  # fresh instance: no memo yet
        start = time.perf_counter()
        first = spec.scenario_id
        cold_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        second = spec.scenario_id
        warm_samples.append(time.perf_counter() - start)
        assert second == first
    cold, warm = statistics.median(cold_samples), statistics.median(warm_samples)
    print(f"\nscenario_id: cold {cold * 1e6:.1f}us -> memoized {warm * 1e6:.1f}us")
    assert warm < cold, f"memoized scenario_id ({warm:.2e}s) not cheaper than cold ({cold:.2e}s)"


def test_floorplan_from_grid_second_call_is_cheaper():
    """Rebuilding a seen grid is a cache lookup, not an adjacency derivation."""
    # Use the scenario's real generated map (what the service rebuilds).
    from repro.maps.fulfillment import generate_fulfillment_center

    warehouse_grid = generate_fulfillment_center(BASE.layout()).warehouse.floorplan.grid
    from_grid_cache_clear()
    cold = median_seconds(lambda: _rebuild_uncached(warehouse_grid))
    warm = median_seconds(lambda: FloorplanGraph.from_grid(warehouse_grid))
    info = from_grid_cache_info()
    print(
        f"\nfrom_grid: cold {cold * 1e3:.3f}ms -> memoized {warm * 1e3:.3f}ms "
        f"(hits={info['hits']})"
    )
    assert info["hits"] >= 7
    assert warm < cold, f"memoized from_grid ({warm:.2e}s) not cheaper than cold ({cold:.2e}s)"


def _rebuild_uncached(grid) -> None:
    from_grid_cache_clear()
    FloorplanGraph.from_grid(grid)


def test_repeated_scenario_build_is_cheaper_than_first():
    """End to end: materializing a spec twice reuses the floorplan graph."""
    from_grid_cache_clear()
    spec = replace(BASE, seed=99)
    start = time.perf_counter()
    spec.build()
    first = time.perf_counter() - start
    rebuild = median_seconds(lambda: replace(BASE, seed=99).build(), rounds=3)
    hits = from_grid_cache_info()["hits"]
    print(f"\nspec.build: first {first * 1e3:.1f}ms -> repeat {rebuild * 1e3:.1f}ms (hits={hits})")
    assert hits >= 3
