"""Experiment E13 (ablation, ours): the topology design-space sweep.

DESIGN.md calls out the component-length choice as the central topology knob
of the co-design (it fixes the cycle time ``tc = 2m`` and therefore the
delivery capacity within the timestep limit).  This benchmark sweeps the knob
on a small fulfillment layout, checks the expected monotone trends, and
records the capacity / agents trade-off alongside the runtime of the sweep.
"""

from __future__ import annotations

import pytest

from repro.core import best_design, explore_component_lengths
from repro.maps import FulfillmentLayout

LAYOUT = FulfillmentLayout(
    num_slices=2,
    shelf_columns=5,
    shelf_bands=3,
    shelf_depth=1,
    num_stations=2,
    num_products=6,
    name="bench-design-space",
)
WORKLOAD_UNITS = 24
HORIZON = 1500


def test_component_length_sweep(benchmark):
    """Sweep the topology knob and verify the capacity trends + best pick."""

    def run():
        return explore_component_lengths(
            LAYOUT, workload_units=WORKLOAD_UNITS, horizon=HORIZON, solve=True
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(points) >= 3

    # Longer components always mean a coarser partition and no more periods.
    for shorter, longer in zip(points, points[1:]):
        assert shorter.num_components >= longer.num_components
        assert shorter.num_periods >= longer.num_periods

    solved = [p for p in points if p.solved]
    assert solved, "at least one design must service the workload"
    chosen = best_design(points)
    assert chosen.solved
    assert chosen.num_agents == min(p.num_agents for p in solved)

    benchmark.extra_info["designs"] = len(points)
    benchmark.extra_info["best_max_length"] = chosen.max_component_length
    benchmark.extra_info["best_agents"] = chosen.num_agents
    benchmark.extra_info["capacities"] = [p.total_capacity for p in points]


def test_capacity_analysis_only(benchmark):
    """The analysis-only sweep (no solving) is cheap enough for interactive use."""

    def run():
        return explore_component_lengths(
            LAYOUT, workload_units=WORKLOAD_UNITS, horizon=HORIZON, solve=False
        )

    points = benchmark(run)
    assert all(not p.solved for p in points)
    assert any(p.capacity_feasible for p in points)
