"""Experiments E5–E7: regenerate the paper's Table I.

Nine WSP instances — three workload sizes on each of the three evaluation maps
— are solved end to end; the benchmarked quantity is the agent-flow-synthesis
runtime, which is exactly what the paper's Table I reports.  The assembled
table (with the paper's runtimes side by side and the plan-level verification
columns the paper omits) is printed at the end of the benchmark session.

By default the structurally identical small presets are used so the whole
suite runs in well under a minute; set ``REPRO_PAPER_SCALE=1`` to run the
paper-scale maps and workloads (Fulfillment-2 then takes on the order of a
minute per instance, as in the paper).
"""

from __future__ import annotations

import pytest

from .conftest import get_designed, paper_scale_enabled, row_from_solution, solve_instance

#: (map preset, workloads, horizon) per Table-I block, at both scales.
PAPER_INSTANCES = {
    "sorting-center": ((160, 320, 480), 3600),
    "fulfillment-1": ((550, 825, 1100), 3600),
    "fulfillment-2": ((1200, 1320, 1440), 3600),
}
SMALL_INSTANCES = {
    "sorting-center-small": ((16, 32, 48), 1500),
    "fulfillment-1-small": ((24, 36, 48), 1500),
    "fulfillment-2-small": ((36, 48, 60), 1500),
}


def _instances():
    table = PAPER_INSTANCES if paper_scale_enabled() else SMALL_INSTANCES
    for map_name, (workloads, horizon) in table.items():
        for units in workloads:
            yield map_name, units, horizon


@pytest.mark.parametrize(
    "map_name, units, horizon",
    list(_instances()),
    ids=[f"{m}-{u}" for m, u, _ in _instances()],
)
def test_table1_instance(benchmark, map_name, units, horizon, designed_maps, table1_collector):
    """One Table-I row: benchmark the flow synthesis, verify the realized plan."""
    designed = get_designed(designed_maps, map_name)
    solutions = []

    def run():
        solution = solve_instance(designed, units, horizon)
        solutions.append(solution)
        return solution.synthesis_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)
    solution = solutions[-1]
    table1_collector.add(row_from_solution(map_name, units, solution))

    # The realized plan must be feasible and actually service the workload —
    # the paper's headline claim for every Table-I instance.
    assert solution.plan_is_feasible
    assert solution.services_workload
    benchmark.extra_info["synthesis_seconds"] = solution.synthesis_seconds
    benchmark.extra_info["num_agents"] = solution.num_agents
    benchmark.extra_info["units_delivered"] = solution.plan.total_delivered()
