"""The serving layer as a benchmark artifact: ``BENCH_service.json``.

Boots a real :class:`~repro.service.server.ServiceServer` (HTTP +
spawn-based worker pool) in-process and drives it with the load-generator
harness at the PR's acceptance bar:

* ≥ 8 concurrent clients, zero transport/server errors;
* warm (cache-hit) p50 latency ≥ 10× lower than cold solve latency on the
  smoke preset;
* an overload run against a deliberately tiny pool (1 worker, 0 pending)
  answers every request — mostly with explicit 429 rejections — and the
  service stays healthy afterwards (bounded queue, no crash).

The emitted document carries cold/warm latency percentiles, warm
throughput, cache hit rate and rejection rate: the serving numbers every
future performance PR moves.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import preset_scenarios
from repro.service import (
    LoadTestOptions,
    PreforkServer,
    ServiceClient,
    ServiceConfig,
    ServiceRequest,
    ServiceServer,
    run_loadtest,
    run_saturation,
)

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
CLIENTS = 8


@pytest.fixture(scope="module")
def primary_report():
    """Cold + warm phases on the smoke preset against a well-provisioned pool."""
    specs = preset_scenarios("smoke")
    server = ServiceServer(
        ServiceConfig(port=0, workers=2, max_pending=2 * len(specs), warm_up=True)
    ).start()
    try:
        report = run_loadtest(
            server.url,
            specs,
            LoadTestOptions(clients=CLIENTS, requests_per_client=4, timeout=600),
        )
    finally:
        assert server.stop(drain_timeout=120)
    return report


@pytest.fixture(scope="module")
def overload_report():
    """Overload burst against a minimal pool (1 worker, zero pending slots)."""
    specs = preset_scenarios("routing")[:2]
    server = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=0, warm_up=True)
    ).start()
    try:
        report = run_loadtest(
            server.url,
            specs,
            LoadTestOptions(
                clients=CLIENTS,
                requests_per_client=1,
                overload=True,
                overload_requests=24,
                timeout=600,
            ),
        )
        # The service survived the burst: it still answers, still solves.
        with ServiceClient(server.url, timeout=60) as client:
            health = client.health()
            assert health["status"] == "ok"
            metrics = client.metrics()
    finally:
        assert server.stop(drain_timeout=120)
    return report, metrics


@pytest.fixture(scope="module")
def saturation_data(tmp_path_factory):
    """Same-run saturation sweep: ThreadingHTTPServer baseline vs pre-fork.

    One shared JSONL store carries the warm set across boots, so the cold
    compute happens exactly once (against the baseline server) and every
    later fleet warm-boots from the file.  All three shapes are measured in
    the same process on the same scenarios, which makes the prefork/baseline
    ratio a clean apples-to-apples number.
    """
    specs = preset_scenarios("smoke")[:4]
    store = tmp_path_factory.mktemp("service-bench") / "results.jsonl"
    grid = (1, 2, 4)
    duration = 0.5

    # Baseline: the single threaded-server process, stock handler machinery.
    server = ServiceServer(
        ServiceConfig(port=0, workers=1, max_pending=8, warm_up=True, store_path=store)
    ).start()
    try:
        with ServiceClient(server.url, timeout=600) as client:
            for spec in specs:
                status, response = client.solve(ServiceRequest(scenario=spec))
                assert status == 200 and response.terminal
        baseline = run_saturation(
            [server.url], specs, clients_grid=grid, duration=duration,
            http_workers=1, timeout=120,
        )
    finally:
        assert server.stop(drain_timeout=120)

    # Pre-fork fleet: 2 worker processes, one port, turbo /solve path.
    fleet = PreforkServer(
        ServiceConfig(
            port=0, workers=1, max_pending=8, warm_up=False,
            store_path=store, http_workers=2,
        ),
        quiet=True,
    ).start(ready_timeout=300)
    try:
        prefork = run_saturation(
            [fleet.url], specs, clients_grid=grid, duration=duration,
            http_workers=2, timeout=120,
        )
    finally:
        assert fleet.stop(drain_timeout=120)

    # Replica fan-out: two single-worker pre-fork servers, round-robin client.
    replicas = [
        PreforkServer(
            ServiceConfig(
                port=0, workers=1, max_pending=8, warm_up=False,
                store_path=store, http_workers=1,
            ),
            quiet=True,
        ).start(ready_timeout=300)
        for _ in range(2)
    ]
    try:
        replicated = run_saturation(
            [replica.url for replica in replicas], specs,
            clients_grid=(2, 4), duration=duration, http_workers=1, timeout=120,
        )
    finally:
        for replica in replicas:
            assert replica.stop(drain_timeout=120)

    best_baseline = max(p["throughput_rps"] for p in baseline)
    best_prefork = max(p["throughput_rps"] for p in prefork + replicated)
    return {
        "scenarios": len(specs),
        "clients_grid": list(grid),
        "duration_seconds": duration,
        "baseline": baseline,
        "prefork": prefork,
        "replicated": replicated,
        "best_baseline_rps": best_baseline,
        "best_prefork_rps": best_prefork,
        "speedup_warm": best_prefork / best_baseline if best_baseline else 0.0,
    }


def test_primary_run_meets_the_acceptance_bar(primary_report):
    report = primary_report
    ok, problems = report.acceptable()
    assert ok, f"loadtest failed the acceptance bar: {problems}\n{report.headline()}"
    assert report.transport_errors == 0
    assert report.server_errors == 0
    assert report.states.get("error", 0) == 0
    # Every scenario answered: 9 cold + 8 clients x 4 warm requests.
    assert report.total_requests == report.num_scenarios + CLIENTS * 4
    # The infeasible smoke scenario is a result, not a failure.
    assert report.states.get("infeasible", 0) > 0
    assert report.cache_hits > 0


def test_warm_p50_is_10x_faster_than_cold(primary_report):
    report = primary_report
    cold_p50 = report.percentile("cold", 0.5)
    warm_p50 = report.percentile("warm", 0.5)
    assert warm_p50 > 0 and cold_p50 > 0
    assert cold_p50 / warm_p50 >= 10.0, (
        f"warm p50 {warm_p50 * 1000:.2f}ms vs cold p50 {cold_p50 * 1000:.2f}ms "
        f"({cold_p50 / warm_p50:.1f}x, need >= 10x)"
    )


def test_overload_is_bounded_and_explicit(overload_report):
    report, metrics = overload_report
    # No crashes, no 5xx — overload resolves into explicit 429 rejections.
    assert report.transport_errors == 0
    assert report.server_errors == 0
    assert report.rejections > 0, "overload burst produced no explicit rejections"
    assert report.http_statuses.get(429, 0) > 0
    # Bounded queue: the pool never held more than workers + max_pending.
    assert metrics["pool"]["rejected"] > 0
    assert metrics["pool"]["in_flight"] == 0


def test_saturation_points_are_clean(saturation_data):
    """Every measured point finished without a single transport/server error."""
    for shape in ("baseline", "prefork", "replicated"):
        for point in saturation_data[shape]:
            assert point["errors"] == 0, f"{shape} point {point} saw errors"
            assert point["requests"] > 0
            assert point["throughput_rps"] > 0
    assert all(p["replicas"] == 1 for p in saturation_data["baseline"])
    assert all(p["http_workers"] == 2 for p in saturation_data["prefork"])
    assert all(p["replicas"] == 2 for p in saturation_data["replicated"])


def test_prefork_is_3x_the_threading_baseline(saturation_data):
    """The acceptance gate: warm pre-fork throughput ≥ 3× the single
    ThreadingHTTPServer measured in the same run."""
    assert saturation_data["speedup_warm"] >= 3.0, (
        f"prefork {saturation_data['best_prefork_rps']:.0f} req/s vs baseline "
        f"{saturation_data['best_baseline_rps']:.0f} req/s "
        f"({saturation_data['speedup_warm']:.2f}x, need >= 3x)"
    )


def test_emit_bench_service_json(primary_report, overload_report, saturation_data):
    """Write the BENCH_service.json artifact consumed by the perf driver."""
    report = primary_report
    overload, overload_metrics = overload_report
    document = report.to_dict()
    document["overload"] = {
        "report": overload.to_dict(),
        "pool": overload_metrics["pool"],
    }
    document["saturation"] = saturation_data
    reloaded = write_bench(BENCH_PATH, document)
    assert reloaded["schema"] == "bench-service"
    assert reloaded["speedup_p50"] >= 10.0
    assert reloaded["cache_hit_rate"] > 0.0
    assert reloaded["transport_errors"] == 0
    assert reloaded["overload"]["report"]["rejections"] > 0
    assert reloaded["saturation"]["speedup_warm"] >= 3.0
    assert all(p["errors"] == 0 for p in reloaded["saturation"]["prefork"])
    print(
        f"\nBENCH_service: cold p50 {reloaded['latency_seconds']['cold']['p50'] * 1000:.1f}ms, "
        f"warm p50 {reloaded['latency_seconds']['warm']['p50'] * 1000:.1f}ms "
        f"({reloaded['speedup_p50']:.0f}x), hit rate {reloaded['cache_hit_rate']:.0%}, "
        f"warm throughput {reloaded['warm_throughput_rps']:.0f} req/s, "
        f"prefork saturation {reloaded['saturation']['best_prefork_rps']:.0f} req/s "
        f"({reloaded['saturation']['speedup_warm']:.1f}x baseline)"
    )
