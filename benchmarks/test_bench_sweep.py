"""Experiment E13 (extension): the sweep harness as a benchmark artifact.

Runs the ``smoke`` preset suite through the parallel experiment orchestrator
and emits ``BENCH_sweep.json`` at the repository root: the aggregate summary
(pass rates, runtime percentiles) plus every run record.  This is the
machine-readable baseline later performance PRs compare themselves against
(``repro sweep --compare``), so the checks below pin the properties the
comparison relies on: every scenario yields exactly one structured record,
the deliberately infeasible instance fails *structurally* (not by crashing
the batch), and re-running a seeded scenario reproduces its record bit for
bit modulo wall-clock timings.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import aggregate_sweep, scaling_rows, scaling_report
from repro.experiments import (
    STATUS_INFEASIBLE,
    SweepOptions,
    run_sweep,
    smoke_suite,
)

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


@pytest.fixture(scope="module")
def smoke_records():
    specs = smoke_suite()
    records = run_sweep(specs, SweepOptions(workers=2))
    assert len(records) == len(specs)
    return specs, records


def test_smoke_sweep_shape(smoke_records):
    """≥ 8 distinct scenarios; the infeasible one is a structured failure."""
    specs, records = smoke_records
    assert len(specs) >= 8
    assert len({spec.scenario_id for spec in specs}) == len(specs)
    statuses = {record.spec.label: record.status for record in records}
    assert statuses["smoke/infeasible-stock"] == STATUS_INFEASIBLE
    ok = [record for record in records if record.ok]
    assert len(ok) == len(records) - 1
    for record in ok:
        assert record.plan_feasible and record.workload_serviced
        assert record.throughput_ratio == pytest.approx(1.0, abs=0.1)
        assert record.sim["contract_violations"] == 0


def test_smoke_sweep_is_reproducible(smoke_records):
    """Identical seeds -> identical result records (modulo timings)."""
    specs, records = smoke_records
    rerun = run_sweep(specs[:3], SweepOptions(workers=1))
    for before, after in zip(records[:3], rerun):
        assert before.fingerprint() == after.fingerprint()


def test_emit_bench_sweep_json(smoke_records):
    """Write the BENCH_sweep.json artifact consumed by the perf-tracking driver."""
    specs, records = smoke_records
    summary = aggregate_sweep(records)
    document = {
        "schema": "bench-sweep",
        "version": 1,
        "suite": "smoke",
        "num_scenarios": len(specs),
        "summary": {
            "by_status": summary.by_status,
            "pass_rate": summary.pass_rate,
            "synthesis_p50_seconds": summary.synthesis_p50,
            "synthesis_p90_seconds": summary.synthesis_p90,
            "synthesis_max_seconds": summary.synthesis_max,
            "total_p50_seconds": summary.total_p50,
            "total_max_seconds": summary.total_max,
            "units_delivered": summary.units_delivered,
            "num_agents": summary.num_agents,
            "contract_breaches": summary.contract_breaches,
        },
        "scaling": [
            {"kind": kind, "cells": cells, "synthesis_seconds": seconds}
            for kind, cells, seconds in scaling_rows(records)
        ],
        "runs": [record.to_dict() for record in records],
    }
    reloaded = write_bench(BENCH_PATH, document)
    assert reloaded["summary"]["by_status"]["ok"] >= 7
    print("\n" + scaling_report(scaling_rows(records)))
