"""Experiments E10 / E12 (ablations): solver backend and objective choice.

The paper solves the flow-synthesis constraints with Z3; we reduce them to a
MILP.  These ablations quantify how much of the methodology's speed comes from
the model formulation vs. the solver engine (HiGHS vs. the pure-Python
branch-and-bound backends) and what the objective choice costs (pure
feasibility vs. minimizing the number of agents).
"""

from __future__ import annotations

import pytest

from repro.core import SynthesisOptions, synthesize_flows
from repro.maps import toy_warehouse
from repro.warehouse import Workload

from .conftest import get_designed

BACKENDS = ["highs", "bnb", "simplex-bnb"]
OBJECTIVES = ["none", "min_agents", "min_carrying"]


@pytest.fixture(scope="module")
def toy():
    designed = toy_warehouse()
    workload = Workload.uniform(designed.warehouse.catalog, 8)
    return designed, workload


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_ablation(benchmark, toy, backend):
    """Flow synthesis with different ILP engines on the toy instance."""
    designed, workload = toy

    def run():
        return synthesize_flows(
            designed.traffic_system,
            workload,
            horizon=600,
            options=SynthesisOptions(backend=backend),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=2)
    assert result.succeeded
    assert result.flow_set.check_conservation() == []
    benchmark.extra_info["num_variables"] = result.num_variables
    benchmark.extra_info["num_agents"] = result.flow_set.num_agents


@pytest.mark.parametrize("objective", OBJECTIVES)
def test_objective_ablation(benchmark, toy, objective):
    """Objective choice: feasibility vs. minimizing agents vs. loaded travel."""
    designed, workload = toy

    def run():
        return synthesize_flows(
            designed.traffic_system,
            workload,
            horizon=600,
            options=SynthesisOptions(objective=objective),
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.succeeded
    benchmark.extra_info["num_agents"] = result.flow_set.num_agents
    benchmark.extra_info["deliveries_per_period"] = result.flow_set.deliveries_per_period()


def test_min_agents_never_uses_more_than_feasibility(benchmark, toy):
    """Sanity check on the ablation's meaning: min_agents <= plain feasibility."""
    designed, workload = toy
    results = {}

    def run():
        results["free"] = synthesize_flows(
            designed.traffic_system, workload, horizon=600,
            options=SynthesisOptions(objective="none"),
        )
        results["minimal"] = synthesize_flows(
            designed.traffic_system, workload, horizon=600,
            options=SynthesisOptions(objective="min_agents"),
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["minimal"].flow_set.num_agents <= results["free"].flow_set.num_agents
    benchmark.extra_info["agents_feasibility"] = results["free"].flow_set.num_agents
    benchmark.extra_info["agents_min_agents"] = results["minimal"].flow_set.num_agents


def test_product_count_scaling(benchmark, designed_maps):
    """Model-size scaling with the number of products (the FC-2 effect).

    The paper's runtime grows markedly from 55 to 120 products; here we verify
    the same direction on the small presets: the 12-product map's synthesis
    model has more variables and takes at least as long as the 8-product one.
    """
    from .conftest import solve_instance

    small_a = get_designed(designed_maps, "fulfillment-1-small")   # 8 products
    small_b = get_designed(designed_maps, "fulfillment-2-small")   # 12 products

    results = {}

    def run():
        results["a"] = solve_instance(small_a, 24, 1500)
        results["b"] = solve_instance(small_b, 36, 1500)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    model_a = results["a"].synthesis
    model_b = results["b"].synthesis
    benchmark.extra_info["variables_8_products"] = model_a.num_variables
    benchmark.extra_info["variables_12_products"] = model_b.num_variables
    assert model_b.num_variables > model_a.num_variables
