"""Experiment E11 (ablation): the realization stage and Property 4.1.

The paper states that converting an agent flow set into a plan "is small"
compared to the synthesis time and that cycle time ``tc = 2m`` suffices for
every agent to advance one component per period (Property 4.1).  These
benchmarks measure the realization cost on growing instances and check the
property (and the effect of relaxing the cycle-time factor and of disabling
agent preloading).
"""

from __future__ import annotations

import pytest

from repro.core import (
    RealizationOptions,
    SynthesisOptions,
    build_delivery_schedule,
    decompose_flow_set,
    realize_cycle_set,
    synthesize_flows,
)
from repro.warehouse import PlanValidator, Workload

from .conftest import get_designed


def _prepare(designed, units: int, horizon: int, factor: int = 2):
    workload = Workload.uniform(designed.warehouse.catalog, units)
    result = synthesize_flows(
        designed.traffic_system,
        workload,
        horizon=horizon,
        options=SynthesisOptions(cycle_time_factor=factor),
    )
    assert result.succeeded
    cycle_set = decompose_flow_set(result.flow_set)
    schedule = build_delivery_schedule(result.flow_set, workload)
    return workload, cycle_set, schedule


@pytest.mark.parametrize("units", [16, 48])
def test_realization_runtime(benchmark, designed_maps, units):
    """Realization cost as the number of agents grows."""
    designed = get_designed(designed_maps, "fulfillment-1-small")
    workload, cycle_set, schedule = _prepare(designed, units, horizon=1500)

    result = benchmark.pedantic(
        lambda: realize_cycle_set(cycle_set, schedule.copy()), rounds=2, iterations=1
    )
    assert result.property41_violations == 0
    assert PlanValidator(designed.warehouse).is_feasible(result.plan)
    assert result.plan.services(workload)
    benchmark.extra_info["num_agents"] = cycle_set.num_agents
    benchmark.extra_info["horizon"] = result.plan.horizon


@pytest.mark.parametrize("factor", [2, 3])
def test_cycle_time_factor_ablation(benchmark, designed_maps, factor):
    """Property 4.1 holds at factor 2; larger factors only add slack (and time)."""
    designed = get_designed(designed_maps, "sorting-center-small")
    workload, cycle_set, schedule = _prepare(designed, 16, horizon=1500, factor=factor)

    result = benchmark.pedantic(
        lambda: realize_cycle_set(cycle_set, schedule.copy()), rounds=1, iterations=1
    )
    assert result.property41_violations == 0
    assert result.plan.services(workload)
    benchmark.extra_info["cycle_time"] = cycle_set.cycle_time
    benchmark.extra_info["num_periods"] = cycle_set.num_periods


@pytest.mark.parametrize("preload", [True, False])
def test_preload_ablation(benchmark, designed_maps, preload):
    """Agent preloading removes the warm-up lag (more units delivered)."""
    designed = get_designed(designed_maps, "fulfillment-2-small")
    workload, cycle_set, schedule = _prepare(designed, 36, horizon=1500)

    result = benchmark.pedantic(
        lambda: realize_cycle_set(
            cycle_set, schedule.copy(), RealizationOptions(preload_agents=preload)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.property41_violations == 0
    benchmark.extra_info["units_delivered"] = result.total_delivered
    if preload:
        assert result.plan.services(workload)
