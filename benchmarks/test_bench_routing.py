"""Experiment E14 (extension): router comparison and MAPF scaling benchmark.

Two sections, one artifact (``BENCH_routing.json`` at the repository root):

**Router comparison** — solves one catalog instance (``sorting-center-small``),
executes the realized plan through the digital twin once per execution mode —
the abstract replay and all four grid routers — and emits one row per router
with congestion telemetry (path-length inflation vs. free-flow, replan
episodes, search expansions, edge-load peaks), service quality, and the
contract-monitor verdict.  Since the release-pacing/corridor fix every grid
router must finish the full plan with *zero* contract violations and a
throughput ratio of exactly 1 — the assertions gate on it.

**Scaling** — synthesized lifelong fleets (seeded, deterministic) across map
sizes and fleet sizes up to 100 agents on the ``routing-scale-large`` preset
(~1.4k traversable cells, the ~7% density of the standard warehouse MAPF
benchmarks).  Before the heuristic-table/SIPP search core the 100-agent runs
were intractable; the rows pin wall time, expansions, and expansions/sec so
regressions in the hot path are visible.

The speed-campaign gates compare against the seed baseline this PR replaced
(CBS on sorting-center-small/10-agents: 76,184 expansions, 6.6 s wall): CBS
must now use at most a tenth of the expansions and finish within 0.7 s.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

import pytest

from repro.analysis import routing_comparison_table, routing_row
from repro.core import WSPSolver
from repro.maps.catalog import (
    fulfillment_center_1,
    routing_scale_large,
    sorting_center_small,
)
from repro.mapf.mapd import IteratedPlanner, IteratedPlannerOptions, LifelongTask
from repro.sim import ROUTERS, RoutingConfig, SimulationConfig
from repro.warehouse import Workload

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_routing.json"

MAP_NAME = "sorting-center-small"
UNITS = 4
HORIZON = 400

#: Seed baseline (the pre-campaign search core) on this exact preset: what
#: CBS cost before the heuristic-table/bucket-queue/SIPP rewrite.  The gates
#: below hold the rewritten core to >=10x fewer expansions and a sub-second
#: wall, per the speed-campaign acceptance criteria.
SEED_CBS_EXPANSIONS = 76_184
SEED_CBS_WALL_SECONDS = 6.6
CBS_EXPANSION_BUDGET = SEED_CBS_EXPANSIONS // 10
CBS_WALL_BUDGET_SECONDS = 0.7

#: Scaling fleets: (map preset, fleet size, engine, suboptimality).  Starts
#: and goal chains are drawn deterministically; every run must complete.
SCALING_FLEETS = (
    ("sorting-center-small", 10, "ecbs", 1.5),
    ("fulfillment-1", 50, "ecbs", 1.5),
    ("routing-scale-large", 100, "prioritized", 1.0),
    ("routing-scale-large", 100, "ecbs", 2.0),
)
SCALING_GOALS_PER_AGENT = 3
SCALING_SEED = 7
SCALING_TIME_LIMIT_SECONDS = 120.0


def _scaling_floorplan(map_name: str):
    if map_name == "sorting-center-small":
        return sorting_center_small().designed.warehouse.floorplan
    if map_name == "fulfillment-1":
        return fulfillment_center_1().warehouse.floorplan
    if map_name == "routing-scale-large":
        return routing_scale_large().warehouse.floorplan
    raise ValueError(f"unknown scaling map {map_name!r}")


def _scaling_tasks(floorplan, num_agents: int) -> list:
    rng = random.Random(SCALING_SEED)
    vertices = list(range(floorplan.num_vertices))
    starts = rng.sample(vertices, num_agents)
    tasks = []
    for agent_id, start in enumerate(starts):
        goals = []
        for _ in range(SCALING_GOALS_PER_AGENT):
            goal = rng.choice(vertices)
            while goal == start or (goals and goal == goals[-1]):
                goal = rng.choice(vertices)
            goals.append(goal)
        tasks.append(
            LifelongTask(agent_id=agent_id, start=start, goals=tuple(goals))
        )
    return tasks


@pytest.fixture(scope="module")
def router_reports():
    designed = sorting_center_small().designed
    solver = WSPSolver(designed.traffic_system)
    workload = Workload.uniform(designed.warehouse.catalog, UNITS)
    solution = solver.solve(workload, horizon=HORIZON)
    assert solution.succeeded, solution.message
    reports = {}
    walls = {}
    for router in ROUTERS:
        routing = None if router == "abstract" else RoutingConfig(router=router)
        started = time.perf_counter()
        reports[router] = solver.simulate(
            solution, SimulationConfig(routing=routing, record_events=False)
        )
        walls[router] = time.perf_counter() - started
    return solution, reports, walls


@pytest.fixture(scope="module")
def scaling_rows():
    rows = []
    for map_name, num_agents, engine, suboptimality in SCALING_FLEETS:
        floorplan = _scaling_floorplan(map_name)
        tasks = _scaling_tasks(floorplan, num_agents)
        planner = IteratedPlanner(
            floorplan,
            IteratedPlannerOptions(
                engine=engine,
                suboptimality=suboptimality,
                time_limit=SCALING_TIME_LIMIT_SECONDS,
            ),
        )
        started = time.perf_counter()
        result = planner.solve(tasks)
        wall = time.perf_counter() - started
        rows.append(
            {
                "map": map_name,
                "vertices": int(floorplan.num_vertices),
                "agents": int(num_agents),
                "engine": engine,
                "suboptimality": float(suboptimality),
                "goals_total": int(result.goals_total),
                "goals_completed": int(result.goals_completed),
                "status": result.status,
                "completed": float(result.completed),
                "episodes": int(result.episodes),
                "expansions": int(result.expansions),
                "wall_seconds": float(wall),
                "expansions_per_second": float(result.expansions / max(wall, 1e-9)),
                "makespan": int(result.makespan),
            }
        )
    return rows


# -- router comparison gates ---------------------------------------------------

def test_every_router_produces_a_row(router_reports):
    _, reports, _ = router_reports
    assert set(reports) == set(ROUTERS)
    for router, report in reports.items():
        row = routing_row(report)
        assert row["router"] == router
        assert row["units_served"] >= 0


def test_grid_routed_paths_never_conflict(router_reports):
    _, reports, _ = router_reports
    for router, report in reports.items():
        if report.routing is None:
            continue
        assert report.routing.conflicts == 0, router
        assert report.routing.carry_mismatches == 0, router


def test_completed_routers_preserve_service(router_reports):
    solution, reports, _ = router_reports
    delivered = solution.plan.total_delivered()
    assert reports["abstract"].units_served == delivered
    for router, report in reports.items():
        if report.routing is not None and report.routing.completed:
            assert report.units_served == delivered, router
            assert report.routing.inflation >= 1.0, router


def test_all_routers_complete_with_clean_contracts(router_reports):
    """The headline regression gate: every execution mode finishes the full
    plan on the promised timeline with zero AG-contract violations."""
    _, reports, _ = router_reports
    for router, report in reports.items():
        assert report.contracts_ok, f"{router}: {report.num_violations} violations"
        assert report.num_violations == 0, router
        assert not report.truncated, router
        assert report.throughput_ratio <= 1.0 + 1e-9, (
            f"{router}: ratio {report.throughput_ratio}"
        )
        if report.routing is not None:
            assert report.routing.completed, router
            assert report.routing.status == "completed", router
            assert report.routing.goals_completed == report.routing.goals_total


def test_cbs_speed_campaign_gates(router_reports):
    """CBS on sorting-center-small/10-agents: >=10x fewer expansions than the
    seed core and sub-0.7 s wall (seed: 76,184 expansions / 6.6 s)."""
    _, reports, walls = router_reports
    cbs = reports["cbs"].routing
    assert cbs.expansions <= CBS_EXPANSION_BUDGET, (
        f"CBS used {cbs.expansions} expansions; budget {CBS_EXPANSION_BUDGET} "
        f"(seed {SEED_CBS_EXPANSIONS})"
    )
    assert walls["cbs"] <= CBS_WALL_BUDGET_SECONDS, (
        f"CBS took {walls['cbs']:.2f}s; budget {CBS_WALL_BUDGET_SECONDS}s "
        f"(seed {SEED_CBS_WALL_SECONDS}s)"
    )


# -- scaling gates -------------------------------------------------------------

def test_scaling_fleets_complete(scaling_rows):
    """Every scaling fleet — up to 100 agents on the large map — completes.
    These instances were intractable under the seed search core."""
    for row in scaling_rows:
        label = f"{row['map']}/{row['agents']}-agents/{row['engine']}"
        assert row["status"] == "completed", label
        assert row["goals_completed"] == row["goals_total"], label
        assert row["wall_seconds"] <= SCALING_TIME_LIMIT_SECONDS, label


def test_scaling_includes_100_agent_large_map(scaling_rows):
    large = [r for r in scaling_rows if r["agents"] >= 100]
    assert large, "scaling section must include a 100-agent fleet"
    assert all(r["vertices"] >= 1_000 for r in large)


# -- artifact ------------------------------------------------------------------

def test_emit_bench_routing_json(router_reports, scaling_rows):
    """Write the BENCH_routing.json artifact consumed by the perf driver."""
    solution, reports, walls = router_reports
    rows = []
    for router in ROUTERS:
        report = reports[router]
        row = routing_row(report)
        row["sim_seconds"] = float(report.seconds)
        row["wall_seconds"] = float(walls[router])
        row["contracts_ok"] = float(report.contracts_ok)
        rows.append(row)
    document = {
        "schema": "bench-routing",
        "version": 2,
        "map": MAP_NAME,
        "units": UNITS,
        "horizon": HORIZON,
        "num_agents": solution.num_agents,
        "plan_delivered": solution.plan.total_delivered(),
        "seed_baseline": {
            "cbs_expansions": SEED_CBS_EXPANSIONS,
            "cbs_wall_seconds": SEED_CBS_WALL_SECONDS,
        },
        "gates": {
            "cbs_expansion_budget": CBS_EXPANSION_BUDGET,
            "cbs_wall_budget_seconds": CBS_WALL_BUDGET_SECONDS,
        },
        "routers": rows,
        "scaling": scaling_rows,
    }
    reloaded = write_bench(BENCH_PATH, document)
    assert [row["router"] for row in reloaded["routers"]] == list(ROUTERS)
    assert len(reloaded["scaling"]) == len(SCALING_FLEETS)
    print("\n" + routing_comparison_table([reports[router] for router in ROUTERS]))
