"""Experiment E14 (extension): router comparison on a catalog preset.

Solves one catalog instance (``sorting-center-small``), executes the realized
plan through the digital twin once per execution mode — the abstract replay
and all four grid routers — and emits ``BENCH_routing.json`` at the
repository root: one row per router with congestion telemetry (path-length
inflation vs. free-flow, replan episodes, search expansions, edge-load
peaks), service quality, and the contract-monitor verdict.

This is the machine-readable artifact later routing/performance PRs compare
against.  The assertions pin the properties the comparison relies on:

* every router produces a structured row (an incomplete routing run is a
  *result*, not a crash);
* grid-routed paths are collision-free — the reservation/constraint machinery
  must never leak a conflict into an executed plan;
* the routers that completed deliver exactly what the abstract replay
  delivers (same logistics, different motion);
* the bounded-suboptimal routers' inflation is sane (>= 1).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import routing_comparison_table, routing_row
from repro.core import WSPSolver
from repro.maps.catalog import sorting_center_small
from repro.sim import ROUTERS, RoutingConfig, SimulationConfig
from repro.warehouse import Workload

from .conftest import write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_routing.json"

MAP_NAME = "sorting-center-small"
UNITS = 4
HORIZON = 400


@pytest.fixture(scope="module")
def router_reports():
    designed = sorting_center_small().designed
    solver = WSPSolver(designed.traffic_system)
    workload = Workload.uniform(designed.warehouse.catalog, UNITS)
    solution = solver.solve(workload, horizon=HORIZON)
    assert solution.succeeded, solution.message
    reports = {}
    for router in ROUTERS:
        routing = None if router == "abstract" else RoutingConfig(router=router)
        reports[router] = solver.simulate(
            solution, SimulationConfig(routing=routing, record_events=False)
        )
    return solution, reports


def test_every_router_produces_a_row(router_reports):
    _, reports = router_reports
    assert set(reports) == set(ROUTERS)
    for router, report in reports.items():
        row = routing_row(report)
        assert row["router"] == router
        assert row["units_served"] >= 0


def test_grid_routed_paths_never_conflict(router_reports):
    _, reports = router_reports
    for router, report in reports.items():
        if report.routing is None:
            continue
        assert report.routing.conflicts == 0, router
        assert report.routing.carry_mismatches == 0, router


def test_completed_routers_preserve_service(router_reports):
    solution, reports = router_reports
    delivered = solution.plan.total_delivered()
    assert reports["abstract"].units_served == delivered
    for router, report in reports.items():
        if report.routing is not None and report.routing.completed:
            assert report.units_served == delivered, router
            assert report.routing.inflation >= 1.0, router


def test_emit_bench_routing_json(router_reports):
    """Write the BENCH_routing.json artifact consumed by the perf driver."""
    solution, reports = router_reports
    rows = []
    for router in ROUTERS:
        report = reports[router]
        row = routing_row(report)
        row["sim_seconds"] = float(report.seconds)
        row["contracts_ok"] = float(report.contracts_ok)
        rows.append(row)
    document = {
        "schema": "bench-routing",
        "version": 1,
        "map": MAP_NAME,
        "units": UNITS,
        "horizon": HORIZON,
        "num_agents": solution.num_agents,
        "plan_delivered": solution.plan.total_delivered(),
        "routers": rows,
    }
    reloaded = write_bench(BENCH_PATH, document)
    assert [row["router"] for row in reloaded["routers"]] == list(ROUTERS)
    print("\n" + routing_comparison_table([reports[router] for router in ROUTERS]))
