"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on offline environments that lack the
``wheel`` package (legacy ``setup.py develop`` editable installs).
"""

from setuptools import setup

setup()
