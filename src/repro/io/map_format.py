"""Grid map file format (MovingAI-benchmark style).

Warehouse grids are stored in the de-facto standard MAPF benchmark format::

    type warehouse
    height 4
    width 5
    map
    .....
    .S.S.
    .....
    @T@T@

The ``map`` block uses the same characters as :mod:`repro.warehouse.grid`
(``.`` open floor, ``@`` obstacle, ``S`` shelf, ``T`` station); the first map
line is the *top* row of the warehouse, matching how the benchmarks (and the
ASCII constructor) lay out text.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..warehouse.grid import GridMap

PathLike = Union[str, Path]


class MapFormatError(ValueError):
    """Raised for malformed map files."""


def dumps_map(grid: GridMap, map_type: str = "warehouse") -> str:
    """Serialize a grid to the benchmark text format."""
    return (
        f"type {map_type}\n"
        f"height {grid.height}\n"
        f"width {grid.width}\n"
        "map\n"
        f"{grid.to_ascii()}\n"
    )


def loads_map(text: str, name: str = "grid") -> GridMap:
    """Parse the benchmark text format into a :class:`GridMap`."""
    lines = text.splitlines()
    header = {}
    map_start = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped == "map":
            map_start = index + 1
            break
        parts = stripped.split(maxsplit=1)
        if len(parts) != 2:
            raise MapFormatError(f"malformed header line {line!r}")
        header[parts[0].lower()] = parts[1]
    if map_start is None:
        raise MapFormatError("missing 'map' section")
    try:
        height = int(header["height"])
        width = int(header["width"])
    except (KeyError, ValueError) as exc:
        raise MapFormatError("missing or invalid width/height header") from exc
    body = [line for line in lines[map_start:] if line.strip()]
    if len(body) != height:
        raise MapFormatError(f"expected {height} map rows, found {len(body)}")
    if any(len(row) < width for row in body):
        raise MapFormatError("map row shorter than the declared width")
    grid = GridMap.from_ascii("\n".join(row[:width] for row in body), name=name)
    if grid.width != width or grid.height != height:
        raise MapFormatError("parsed grid does not match the declared dimensions")
    return grid


def save_map(grid: GridMap, path: PathLike) -> None:
    Path(path).write_text(dumps_map(grid))


def load_map(path: PathLike, name: str = "") -> GridMap:
    path = Path(path)
    return loads_map(path.read_text(), name=name or path.stem)
