"""JSON serialization of warehouses, traffic systems, workloads and plans.

The schemas are deliberately simple and explicit (plain dictionaries with a
``"schema"`` tag and a version), so solutions computed by the pipeline can be
archived, diffed and re-validated without the library that produced them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..traffic.system import TrafficSystem
from ..warehouse.floorplan import FloorplanGraph
from ..warehouse.grid import GridMap
from ..warehouse.plan import Plan
from ..warehouse.products import LocationMatrix, ProductCatalog
from ..warehouse.warehouse import Warehouse
from ..warehouse.workload import Workload

PathLike = Union[str, Path]

SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """Raised when loading malformed documents."""


def _check_schema(document: Dict, expected: str) -> None:
    if document.get("schema") != expected:
        raise SerializationError(
            f"expected a {expected!r} document, got {document.get('schema')!r}"
        )


# -- warehouse ----------------------------------------------------------------

def warehouse_to_dict(warehouse: Warehouse) -> Dict:
    grid = warehouse.grid
    if grid is None:
        raise SerializationError("only grid-backed warehouses can be serialized")
    stock_entries: List[List[int]] = []
    matrix = warehouse.stock
    for product in warehouse.catalog.product_ids:
        for vertex in matrix.vertices_with(product):
            cell = warehouse.floorplan.cell_of(vertex)
            stock_entries.append([product, cell[0], cell[1], matrix.units_at(product, vertex)])
    return {
        "schema": "warehouse",
        "version": SCHEMA_VERSION,
        "name": warehouse.name,
        "grid": grid.to_ascii(),
        "products": list(warehouse.catalog.names),
        "stock": stock_entries,
    }


def warehouse_from_dict(document: Dict) -> Warehouse:
    _check_schema(document, "warehouse")
    grid = GridMap.from_ascii(document["grid"], name=document.get("name", "warehouse"))
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog(tuple(document["products"]))
    stock = LocationMatrix(catalog, floorplan)
    for product, x, y, units in document["stock"]:
        stock.place(int(product), floorplan.vertex_at((int(x), int(y))), int(units))
    return Warehouse(
        floorplan=floorplan, catalog=catalog, stock=stock, name=document.get("name", "")
    )


# -- traffic system --------------------------------------------------------------

def traffic_system_to_dict(system: TrafficSystem) -> Dict:
    floorplan = system.floorplan
    return {
        "schema": "traffic-system",
        "version": SCHEMA_VERSION,
        "name": system.name,
        "warehouse": warehouse_to_dict(system.warehouse),
        "components": [
            {
                "name": component.name,
                "cells": [list(floorplan.cell_of(v)) for v in component.vertices],
            }
            for component in system.components
        ],
        "connections": [
            [system.component(i).name, system.component(j).name] for i, j in system.edges()
        ],
    }


def traffic_system_from_dict(document: Dict) -> TrafficSystem:
    _check_schema(document, "traffic-system")
    warehouse = warehouse_from_dict(document["warehouse"])
    cell_paths = [
        (entry["name"], [tuple(cell) for cell in entry["cells"]])
        for entry in document["components"]
    ]
    connections = [tuple(pair) for pair in document["connections"]]
    return TrafficSystem.from_cell_paths(
        warehouse, cell_paths, connections, name=document.get("name", "traffic-system")
    )


# -- workload ----------------------------------------------------------------------

def workload_to_dict(workload: Workload) -> Dict:
    return {
        "schema": "workload",
        "version": SCHEMA_VERSION,
        "demands": list(workload.demands),
    }


def workload_from_dict(document: Dict) -> Workload:
    _check_schema(document, "workload")
    return Workload(tuple(int(d) for d in document["demands"]))


# -- plan ---------------------------------------------------------------------------

def plan_to_dict(plan: Plan) -> Dict:
    return {
        "schema": "plan",
        "version": SCHEMA_VERSION,
        "positions": plan.positions.tolist(),
        "carrying": plan.carrying.tolist(),
        "metadata": dict(plan.metadata),
        "warehouse": warehouse_to_dict(plan.warehouse),
    }


def plan_from_dict(document: Dict) -> Plan:
    _check_schema(document, "plan")
    warehouse = warehouse_from_dict(document["warehouse"])
    return Plan(
        positions=np.asarray(document["positions"], dtype=np.int64),
        carrying=np.asarray(document["carrying"], dtype=np.int64),
        warehouse=warehouse,
        metadata={k: float(v) for k, v in document.get("metadata", {}).items()},
    )


# -- simulation trace ------------------------------------------------------------------

def _keyed_counts_to_list(table: Dict) -> List[List]:
    """``{key_tuple: per-period ndarray} -> [[*key, [counts...]], ...]`` (sorted)."""
    return [
        [*key, [int(c) for c in counts]] for key, counts in sorted(table.items())
    ]


def _keyed_counts_from_list(entries: List[List], key_width: int) -> Dict:
    table = {}
    for entry in entries:
        key = tuple(int(i) for i in entry[:key_width])
        table[key] = np.asarray(entry[key_width], dtype=np.int64)
    return table


def resilience_to_dict(report) -> Dict:
    """Serialize a :class:`~repro.sim.disruptions.ResilienceReport`."""
    return {"schema": "sim-resilience", "version": SCHEMA_VERSION, **report.to_dict()}


def resilience_from_dict(document: Dict):
    """Rebuild a :class:`~repro.sim.disruptions.ResilienceReport`."""
    from ..sim.disruptions import ResilienceReport  # local: io stays import-light

    _check_schema(document, "sim-resilience")
    return ResilienceReport.from_dict(
        {k: v for k, v in document.items() if k not in ("schema", "version")}
    )


def trace_to_dict(trace) -> Dict:
    """Serialize a :class:`~repro.sim.telemetry.SimulationTrace`.

    The event log is included when the trace carries one, so archived traces
    remain byte-comparable determinism witnesses.  The resilience section is
    only present for disrupted runs — nominal traces keep the pre-disruption
    schema byte for byte.
    """
    document = {
        "schema": "sim-trace",
        "version": SCHEMA_VERSION,
        "ticks": trace.ticks,
        "num_agents": trace.num_agents,
        "cycle_time": trace.cycle_time,
        "seed": trace.seed,
        "periods": trace.periods,
        "visits": [int(v) for v in trace.visits],
        "transitions": _keyed_counts_to_list(trace.transitions),
        "pickups": _keyed_counts_to_list(trace.pickups),
        "handoffs": _keyed_counts_to_list(trace.handoffs),
        "served": _keyed_counts_to_list(trace.served),
        "queue_samples": [
            [int(component), [int(s) for s in samples]]
            for component, samples in sorted(trace.queue_samples.items())
        ],
        "order_latencies": [int(l) for l in trace.order_latencies],
        "orders_created": trace.orders_created,
        "orders_served": trace.orders_served,
        "units_picked": trace.units_picked,
        "units_preloaded": trace.units_preloaded,
        "units_handed_off": trace.units_handed_off,
        "units_served": trace.units_served,
        "stockouts": trace.stockouts,
        "events": None if trace.events is None else [list(e) for e in trace.events],
        # Realized per-agent vertex paths (grid-routed runs); None for
        # abstract replay, where the archived plan already holds the motion.
        "agent_paths": (
            None
            if trace.agent_paths is None
            else [[int(v) for v in path] for path in trace.agent_paths]
        ),
        "metadata": {k: float(v) for k, v in trace.metadata.items()},
    }
    if trace.resilience is not None:
        document["resilience"] = resilience_to_dict(trace.resilience)
    if trace.obs is not None:
        # Observability section: present only for traced runs, so untraced
        # trace documents stay byte-identical to the pre-obs schema.
        document["obs"] = trace.obs
    return document


def trace_from_dict(document: Dict):
    """Rebuild a :class:`~repro.sim.telemetry.SimulationTrace` from a document."""
    from ..sim.telemetry import SimulationTrace  # local: io stays import-light

    _check_schema(document, "sim-trace")
    events = document.get("events")
    agent_paths = document.get("agent_paths")
    resilience = document.get("resilience")
    return SimulationTrace(
        ticks=int(document["ticks"]),
        num_agents=int(document["num_agents"]),
        cycle_time=int(document["cycle_time"]),
        seed=int(document.get("seed", 0)),
        periods=int(document["periods"]),
        visits=np.asarray(document["visits"], dtype=np.int64),
        transitions=_keyed_counts_from_list(document["transitions"], 3),
        pickups=_keyed_counts_from_list(document["pickups"], 2),
        handoffs=_keyed_counts_from_list(document["handoffs"], 2),
        served=_keyed_counts_from_list(document["served"], 2),
        queue_samples={
            int(component): np.asarray(samples, dtype=np.int64)
            for component, samples in document.get("queue_samples", [])
        },
        order_latencies=[int(l) for l in document.get("order_latencies", [])],
        orders_created=int(document["orders_created"]),
        orders_served=int(document["orders_served"]),
        units_picked=int(document["units_picked"]),
        units_preloaded=int(document.get("units_preloaded", 0)),
        units_handed_off=int(document["units_handed_off"]),
        units_served=int(document["units_served"]),
        stockouts=int(document.get("stockouts", 0)),
        events=None if events is None else [tuple(e) for e in events],
        agent_paths=(
            None
            if agent_paths is None
            else [tuple(int(v) for v in path) for path in agent_paths]
        ),
        resilience=None if resilience is None else resilience_from_dict(resilience),
        metadata={k: float(v) for k, v in document.get("metadata", {}).items()},
        obs=document.get("obs"),
    )


# -- experiment scenarios and run records ---------------------------------------------

#: Schema-envelope keys of a scenario document; everything else is a
#: ScenarioSpec field and is passed to the constructor on load.
_SCENARIO_SKIP_KEYS = ("schema", "version")


def scenario_to_dict(spec) -> Dict:
    """Serialize a :class:`~repro.experiments.scenario.ScenarioSpec`."""
    from dataclasses import asdict

    document = {"schema": "scenario", "version": SCHEMA_VERSION, **asdict(spec)}
    # JSON has no tuple: emit the permutation as a list so documents survive
    # a wire round-trip unchanged (the spec normalizes it back on load).
    document["product_order"] = list(document["product_order"])
    return document


def scenario_from_dict(document: Dict):
    """Rebuild a :class:`~repro.experiments.scenario.ScenarioSpec`."""
    from ..experiments.scenario import ScenarioSpec  # local: io stays import-light

    _check_schema(document, "scenario")
    fields = {k: v for k, v in document.items() if k not in _SCENARIO_SKIP_KEYS}
    try:
        return ScenarioSpec(**fields)
    except TypeError as error:
        raise SerializationError(f"malformed scenario document: {error}") from error


def run_record_to_dict(record) -> Dict:
    """Serialize a :class:`~repro.experiments.store.RunRecord`."""
    return {
        "schema": "experiment-run",
        "version": SCHEMA_VERSION,
        "scenario": scenario_to_dict(record.spec),
        "scenario_id": record.scenario_id,
        "status": record.status,
        "message": record.message,
        "timings": {stage: float(s) for stage, s in sorted(record.timings.items())},
        "num_agents": int(record.num_agents),
        "units_delivered": int(record.units_delivered),
        "plan_feasible": record.plan_feasible,
        "workload_serviced": record.workload_serviced,
        "sim": {key: float(v) for key, v in sorted(record.sim.items())},
    }


def run_record_from_dict(document: Dict):
    """Rebuild a :class:`~repro.experiments.store.RunRecord`."""
    from ..experiments.store import RunRecord  # local: io stays import-light

    _check_schema(document, "experiment-run")
    spec = scenario_from_dict(document["scenario"])
    # The stored "scenario_id" is informational: the id recomputed from the
    # embedded spec is canonical.  The two legitimately diverge when the
    # ScenarioSpec schema has gained fields since the file was written (new
    # defaults change the hash), and an old baseline must stay loadable — the
    # regression comparator then simply treats its runs as unmatched.
    return RunRecord(
        spec=spec,
        status=document["status"],
        message=document.get("message", ""),
        timings={k: float(v) for k, v in document.get("timings", {}).items()},
        num_agents=int(document.get("num_agents", 0)),
        units_delivered=int(document.get("units_delivered", 0)),
        plan_feasible=document.get("plan_feasible"),
        workload_serviced=document.get("workload_serviced"),
        sim={k: float(v) for k, v in document.get("sim", {}).items()},
    )


# -- service requests and responses ---------------------------------------------------

def service_request_to_dict(request) -> Dict:
    """Serialize a :class:`~repro.service.api.ServiceRequest`."""
    return {
        "schema": "service-request",
        "version": SCHEMA_VERSION,
        "scenario": scenario_to_dict(request.scenario),
        "timeout_seconds": (
            None if request.timeout_seconds is None else float(request.timeout_seconds)
        ),
        "fresh": bool(request.fresh),
        "tag": str(request.tag),
    }


def service_request_from_dict(document: Dict):
    """Rebuild a :class:`~repro.service.api.ServiceRequest`."""
    from ..service.api import ServiceRequest, ServiceRequestError  # io stays import-light

    _check_schema(document, "service-request")
    timeout = document.get("timeout_seconds")
    try:
        return ServiceRequest(
            scenario=scenario_from_dict(document["scenario"]),
            timeout_seconds=None if timeout is None else float(timeout),
            fresh=bool(document.get("fresh", False)),
            tag=str(document.get("tag", "")),
        )
    except (KeyError, TypeError, ValueError, ServiceRequestError) as error:
        raise SerializationError(f"malformed service request: {error}") from error


def service_response_to_dict(response) -> Dict:
    """Serialize a :class:`~repro.service.api.ServiceResponse`.

    The embedded run record is already a document (the response carries it
    verbatim), so serialization nests it untouched.
    """
    return {
        "schema": "service-response",
        "version": SCHEMA_VERSION,
        "state": response.state,
        "scenario_id": response.scenario_id,
        "request_id": response.request_id,
        "cache": response.cache,
        "record": response.record,
        "message": response.message,
        "tag": response.tag,
        "queue_seconds": float(response.queue_seconds),
        "compute_seconds": float(response.compute_seconds),
        "retry_after_seconds": (
            None
            if response.retry_after_seconds is None
            else float(response.retry_after_seconds)
        ),
        "info": {k: float(v) for k, v in sorted(response.info.items())},
    }


def service_response_from_dict(document: Dict):
    """Rebuild a :class:`~repro.service.api.ServiceResponse`."""
    from ..service.api import ServiceRequestError, ServiceResponse  # io stays import-light

    _check_schema(document, "service-response")
    retry_after = document.get("retry_after_seconds")
    try:
        return ServiceResponse(
            state=document["state"],
            scenario_id=str(document.get("scenario_id", "")),
            request_id=str(document.get("request_id", "")),
            cache=str(document.get("cache", "")),
            record=document.get("record"),
            message=str(document.get("message", "")),
            tag=str(document.get("tag", "")),
            queue_seconds=float(document.get("queue_seconds", 0.0)),
            compute_seconds=float(document.get("compute_seconds", 0.0)),
            retry_after_seconds=None if retry_after is None else float(retry_after),
            info={k: float(v) for k, v in document.get("info", {}).items()},
        )
    except (KeyError, TypeError, ValueError, ServiceRequestError) as error:
        raise SerializationError(f"malformed service response: {error}") from error


# -- file helpers ---------------------------------------------------------------------

def save_json(document: Dict, path: PathLike) -> None:
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict:
    return json.loads(Path(path).read_text())
