"""File I/O: MovingAI-style grid maps and JSON documents for every artifact."""

from .map_format import MapFormatError, dumps_map, load_map, loads_map, save_map
from .serialization import (
    SerializationError,
    load_json,
    plan_from_dict,
    plan_to_dict,
    save_json,
    trace_from_dict,
    trace_to_dict,
    traffic_system_from_dict,
    traffic_system_to_dict,
    warehouse_from_dict,
    warehouse_to_dict,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "MapFormatError",
    "SerializationError",
    "dumps_map",
    "load_json",
    "load_map",
    "loads_map",
    "plan_from_dict",
    "plan_to_dict",
    "save_json",
    "save_map",
    "trace_from_dict",
    "trace_to_dict",
    "traffic_system_from_dict",
    "traffic_system_to_dict",
    "warehouse_from_dict",
    "warehouse_to_dict",
    "workload_from_dict",
    "workload_to_dict",
]
