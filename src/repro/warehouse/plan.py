"""Plans ``(π, φ)`` and the plan feasibility validator (Sec. III of the paper).

A :class:`Plan` stores, for every agent and every timestep, the vertex the
agent occupies and the product it carries (0 = ρ0, empty-handed).  The
:class:`PlanValidator` checks the three feasibility conditions of the paper —
unit moves, collision freedom, and the pickup/drop-off rules — and counts the
units actually delivered to stations so a plan can be checked against a
workload ("the plan *services* w").

The validator is deliberately independent of the planner: it re-derives
everything from the raw (π, φ) matrices and the warehouse, so it can catch
bugs in the realization algorithm as well as in the MAPF baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .products import EMPTY_HANDED, ProductId
from .warehouse import Warehouse
from .workload import Workload

VertexId = int


class PlanError(ValueError):
    """Raised for structurally malformed plans."""


@dataclass
class Plan:
    """A T-timestep plan for a team of agents.

    Attributes
    ----------
    positions:
        ``(num_agents, T)`` integer array; ``positions[i, t]`` is the vertex
        agent ``i`` occupies at timestep ``t`` (0-based timesteps).
    carrying:
        ``(num_agents, T)`` integer array; ``carrying[i, t]`` is the product
        agent ``i`` holds at timestep ``t`` (0 when empty-handed).
    warehouse:
        The warehouse the plan refers to (vertex ids index its floorplan).
    """

    positions: np.ndarray
    carrying: np.ndarray
    warehouse: Warehouse
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.int64)
        self.carrying = np.asarray(self.carrying, dtype=np.int64)
        if self.positions.ndim != 2 or self.carrying.ndim != 2:
            raise PlanError("positions and carrying must be 2-D (agents x timesteps)")
        if self.positions.shape != self.carrying.shape:
            raise PlanError(
                f"positions shape {self.positions.shape} != carrying shape {self.carrying.shape}"
            )

    # -- shape ----------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return int(self.positions.shape[0])

    @property
    def horizon(self) -> int:
        """Number of timesteps covered by the plan (the paper's T)."""
        return int(self.positions.shape[1])

    # -- per-agent views --------------------------------------------------------
    def agent_positions(self, agent: int) -> np.ndarray:
        return self.positions[agent]

    def agent_carrying(self, agent: int) -> np.ndarray:
        return self.carrying[agent]

    def state(self, agent: int, t: int) -> Tuple[VertexId, ProductId]:
        """The state ``(π_{i,t}, φ_{i,t})`` of an agent at a timestep."""
        return int(self.positions[agent, t]), int(self.carrying[agent, t])

    # -- deliveries ---------------------------------------------------------------
    def deliveries(self) -> List[Tuple[int, int, ProductId]]:
        """All drop-off events as ``(agent, timestep, product)`` triples.

        A delivery happens at step ``t+1`` when an agent that carried product
        ``k`` at ``t`` while standing on a station vertex is empty-handed at
        ``t+1``.
        """
        events: List[Tuple[int, int, ProductId]] = []
        stations = self.warehouse.station_vertices
        for agent in range(self.num_agents):
            carrying = self.carrying[agent]
            positions = self.positions[agent]
            for t in range(self.horizon - 1):
                if (
                    carrying[t] != EMPTY_HANDED
                    and carrying[t + 1] == EMPTY_HANDED
                    and int(positions[t]) in stations
                ):
                    events.append((agent, t + 1, int(carrying[t])))
        return events

    def delivered_units(self) -> Dict[ProductId, int]:
        """Units of each product delivered to stations over the whole plan."""
        totals: Dict[ProductId, int] = {}
        for _, _, product in self.deliveries():
            totals[product] = totals.get(product, 0) + 1
        return totals

    def total_delivered(self) -> int:
        return sum(self.delivered_units().values())

    def services(self, workload: Workload) -> bool:
        """True when the plan delivers at least the demanded units of every product."""
        return workload.is_satisfied_by(self.delivered_units())

    # -- misc ---------------------------------------------------------------------
    def truncated(self, horizon: int) -> "Plan":
        """The plan restricted to its first ``horizon`` timesteps."""
        if horizon <= 0 or horizon > self.horizon:
            raise PlanError(f"cannot truncate a {self.horizon}-step plan to {horizon} steps")
        return Plan(
            positions=self.positions[:, :horizon].copy(),
            carrying=self.carrying[:, :horizon].copy(),
            warehouse=self.warehouse,
            metadata=dict(self.metadata),
        )

    def summary(self) -> str:
        return (
            f"plan: {self.num_agents} agents, {self.horizon} timesteps, "
            f"{self.total_delivered()} units delivered"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Plan({self.summary()})"


@dataclass
class PlanViolation:
    """One violated feasibility condition, with enough context to debug it."""

    condition: str
    agent: int
    timestep: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.condition}] agent {self.agent} @ t={self.timestep}: {self.detail}"


@dataclass
class PlanValidationReport:
    """Outcome of :meth:`PlanValidator.validate`."""

    violations: List[PlanViolation]
    delivered: Dict[ProductId, int]
    pickups: Dict[ProductId, int]

    @property
    def is_feasible(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "feasible" if self.is_feasible else f"{len(self.violations)} violations"
        return (
            f"plan validation: {status}; "
            f"{sum(self.delivered.values())} delivered, {sum(self.pickups.values())} picked up"
        )


class PlanValidator:
    """Checks the three feasibility conditions of Sec. III against a warehouse.

    Parameters
    ----------
    warehouse:
        The warehouse whose floorplan, stations and stock the plan must respect.
    track_inventory:
        When True (default), pickups consume stock from a working copy of the
        location matrix and picking from an empty shelf is a violation.  The
        paper's condition (3) is stated against the static PRODUCTSAT set; the
        tracked variant is strictly stronger and is what a physical warehouse
        requires.
    max_violations:
        Stop collecting violations after this many (keeps pathological plans
        from producing megabyte-sized reports).
    """

    def __init__(
        self,
        warehouse: Warehouse,
        track_inventory: bool = True,
        max_violations: int = 100,
    ) -> None:
        self.warehouse = warehouse
        self.track_inventory = track_inventory
        self.max_violations = max_violations

    # -- public API ---------------------------------------------------------------
    def validate(self, plan: Plan) -> PlanValidationReport:
        """Run all feasibility checks and count pickups / deliveries."""
        violations: List[PlanViolation] = []
        delivered: Dict[ProductId, int] = {}
        pickups: Dict[ProductId, int] = {}

        def add(violation: PlanViolation) -> bool:
            if len(violations) < self.max_violations:
                violations.append(violation)
            return len(violations) < self.max_violations

        self._check_vertices_exist(plan, add)
        self._check_moves(plan, add)
        self._check_collisions(plan, add)
        self._check_products(plan, add, delivered, pickups)
        return PlanValidationReport(violations=violations, delivered=delivered, pickups=pickups)

    def is_feasible(self, plan: Plan) -> bool:
        return self.validate(plan).is_feasible

    # -- condition checks -----------------------------------------------------------
    def _check_vertices_exist(self, plan: Plan, add) -> None:
        num_vertices = self.warehouse.floorplan.num_vertices
        bad = np.argwhere((plan.positions < 0) | (plan.positions >= num_vertices))
        for agent, t in bad:
            if not add(
                PlanViolation(
                    "vertex-range",
                    int(agent),
                    int(t),
                    f"vertex {int(plan.positions[agent, t])} outside floorplan",
                )
            ):
                return

    def _check_moves(self, plan: Plan, add) -> None:
        """Condition (1): an agent moves by zero or one edge per timestep."""
        floorplan = self.warehouse.floorplan
        num_vertices = floorplan.num_vertices
        for agent in range(plan.num_agents):
            path = plan.positions[agent]
            for t in range(plan.horizon - 1):
                u, v = int(path[t]), int(path[t + 1])
                if u == v:
                    continue
                if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                    continue  # already reported by the vertex-range check
                if not floorplan.are_adjacent(u, v):
                    if not add(
                        PlanViolation(
                            "movement",
                            agent,
                            t + 1,
                            f"jump from {floorplan.cell_of(u)} to {floorplan.cell_of(v)}",
                        )
                    ):
                        return

    def _check_collisions(self, plan: Plan, add) -> None:
        """Condition (2): no vertex collisions, no edge (swap) collisions."""
        positions = plan.positions
        for t in range(plan.horizon):
            column = positions[:, t]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            duplicates = np.nonzero(sorted_vals[1:] == sorted_vals[:-1])[0]
            for d in duplicates:
                agent_a, agent_b = int(order[d]), int(order[d + 1])
                if not add(
                    PlanViolation(
                        "vertex-collision",
                        agent_b,
                        t,
                        f"agents {agent_a} and {agent_b} both at vertex {int(sorted_vals[d])}",
                    )
                ):
                    return
        for t in range(plan.horizon - 1):
            now = positions[:, t]
            nxt = positions[:, t + 1]
            moves = {}
            for agent in range(plan.num_agents):
                u, v = int(now[agent]), int(nxt[agent])
                if u != v:
                    moves[(u, v)] = agent
            for (u, v), agent in moves.items():
                other = moves.get((v, u))
                if other is not None and other != agent and agent < other:
                    if not add(
                        PlanViolation(
                            "edge-collision",
                            agent,
                            t + 1,
                            f"agents {agent} and {other} swap across edge ({u}, {v})",
                        )
                    ):
                        return

    def _check_products(
        self,
        plan: Plan,
        add,
        delivered: Dict[ProductId, int],
        pickups: Dict[ProductId, int],
    ) -> None:
        """Condition (3): pickups only at stocked shelf-access vertices, drop-offs at stations."""
        warehouse = self.warehouse
        stations = warehouse.station_vertices
        stock = warehouse.stock.copy() if self.track_inventory else None
        num_products = warehouse.num_products
        num_vertices = warehouse.floorplan.num_vertices

        for agent in range(plan.num_agents):
            carrying = plan.carrying[agent]
            positions = plan.positions[agent]
            initial = int(carrying[0])
            if initial != EMPTY_HANDED and not 1 <= initial <= num_products:
                add(PlanViolation("product-range", agent, 0, f"unknown product {initial}"))
            for t in range(plan.horizon - 1):
                before, after = int(carrying[t]), int(carrying[t + 1])
                vertex = int(positions[t])
                if after != EMPTY_HANDED and not 1 <= after <= num_products:
                    if not add(
                        PlanViolation("product-range", agent, t + 1, f"unknown product {after}")
                    ):
                        return
                    continue
                if before == after:
                    continue
                if not 0 <= vertex < num_vertices:
                    continue  # already reported by the vertex-range check
                if before == EMPTY_HANDED:
                    # Pickup: the vertex must be a stocked shelf-access vertex.
                    available = warehouse.products_at(vertex)
                    if after not in available:
                        if not add(
                            PlanViolation(
                                "pickup",
                                agent,
                                t + 1,
                                f"picked product {after} at vertex {vertex} "
                                f"which offers {sorted(available)}",
                            )
                        ):
                            return
                        continue
                    if stock is not None:
                        if stock.units_at(after, vertex) <= 0:
                            if not add(
                                PlanViolation(
                                    "inventory",
                                    agent,
                                    t + 1,
                                    f"picked product {after} at vertex {vertex} but stock is exhausted",
                                )
                            ):
                                return
                            continue
                        stock.remove(after, vertex, 1)
                    pickups[after] = pickups.get(after, 0) + 1
                elif after == EMPTY_HANDED:
                    # Drop-off: only allowed at a station vertex.
                    if vertex not in stations:
                        if not add(
                            PlanViolation(
                                "dropoff",
                                agent,
                                t + 1,
                                f"dropped product {before} at non-station vertex {vertex}",
                            )
                        ):
                            return
                        continue
                    delivered[before] = delivered.get(before, 0) + 1
                else:
                    # Swapping one product for another in a single step is never allowed.
                    if not add(
                        PlanViolation(
                            "swap",
                            agent,
                            t + 1,
                            f"carried product changed {before} -> {after} without dropping off",
                        )
                    ):
                        return


def empty_plan(warehouse: Warehouse, num_agents: int, horizon: int) -> Plan:
    """A plan of stationary, empty-handed agents parked on distinct vertices.

    Useful as a neutral starting point in tests; the agents are placed on the
    lowest-numbered traversable vertices.
    """
    if num_agents > warehouse.floorplan.num_vertices:
        raise PlanError("more agents than vertices")
    positions = np.tile(
        np.arange(num_agents, dtype=np.int64).reshape(-1, 1), (1, horizon)
    )
    carrying = np.zeros((num_agents, horizon), dtype=np.int64)
    return Plan(positions=positions, carrying=carrying, warehouse=warehouse)
