"""Warehouse model substrate: grids, floorplan graphs, products, workloads, plans.

This package implements the formal objects of Sec. III of the paper:

* :class:`GridMap` / :class:`FloorplanGraph` — the warehouse geometry and the
  floorplan graph ``G = (V, E)``;
* :class:`ProductCatalog` / :class:`LocationMatrix` — the product vector ``ρ``
  and location matrix ``Λ``;
* :class:`Workload` — the demand vector ``w``;
* :class:`Warehouse` / :class:`WSPInstance` — the 5-tuple ``W`` and Problem 3.1;
* :class:`Plan` / :class:`PlanValidator` — plans ``(π, φ)``, the three
  feasibility conditions, and workload-service checking.
"""

from .floorplan import FloorplanError, FloorplanGraph, VertexId
from .grid import (
    EMPTY,
    NEIGHBOR_OFFSETS,
    OBSTACLE,
    SHELF,
    STATION,
    Cell,
    GridError,
    GridMap,
    build_grid,
)
from .plan import (
    Plan,
    PlanError,
    PlanValidationReport,
    PlanValidator,
    PlanViolation,
    empty_plan,
)
from .products import (
    EMPTY_HANDED,
    LocationMatrix,
    ProductCatalog,
    ProductError,
    ProductId,
    products_at,
    stock_summary,
)
from .warehouse import Warehouse, WarehouseError, WSPInstance, build_warehouse
from .workload import Workload, WorkloadError, check_workload_stock

__all__ = [
    "Cell",
    "EMPTY",
    "EMPTY_HANDED",
    "FloorplanError",
    "FloorplanGraph",
    "GridError",
    "GridMap",
    "LocationMatrix",
    "NEIGHBOR_OFFSETS",
    "OBSTACLE",
    "Plan",
    "PlanError",
    "PlanValidationReport",
    "PlanValidator",
    "PlanViolation",
    "ProductCatalog",
    "ProductError",
    "ProductId",
    "SHELF",
    "STATION",
    "VertexId",
    "WSPInstance",
    "Warehouse",
    "WarehouseError",
    "Workload",
    "WorkloadError",
    "build_grid",
    "build_warehouse",
    "check_workload_stock",
    "empty_plan",
    "products_at",
    "stock_summary",
]
