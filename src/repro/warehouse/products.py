"""Products and the location matrix Λ (Sec. III of the paper).

Products are identified by integer ids ``1..n``; id ``0`` is reserved for
``ρ0`` — "not carrying anything".  The :class:`LocationMatrix` records how many
units of each product are accessible from each shelf-access vertex
(``Λ[k, l]`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .floorplan import FloorplanGraph, VertexId

#: Reserved product id meaning "the agent carries nothing" (ρ0).
EMPTY_HANDED = 0

ProductId = int


class ProductError(ValueError):
    """Raised for invalid product ids or inconsistent inventory data."""


@dataclass(frozen=True)
class ProductCatalog:
    """The product vector ρ: names for products ``1..n``.

    ``names[k - 1]`` is the display name of product ``k``.
    """

    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.names)) != len(self.names):
            raise ProductError("product names must be unique")

    @staticmethod
    def numbered(count: int, prefix: str = "product") -> "ProductCatalog":
        """A catalog of ``count`` generically named products."""
        if count < 1:
            raise ProductError("a catalog needs at least one product")
        return ProductCatalog(tuple(f"{prefix}-{k}" for k in range(1, count + 1)))

    @property
    def num_products(self) -> int:
        return len(self.names)

    @property
    def product_ids(self) -> range:
        """Valid product ids (1-based; excludes ρ0)."""
        return range(1, self.num_products + 1)

    def name_of(self, product: ProductId) -> str:
        if product == EMPTY_HANDED:
            return "(empty handed)"
        if not 1 <= product <= self.num_products:
            raise ProductError(f"unknown product id {product}")
        return self.names[product - 1]

    def id_of(self, name: str) -> ProductId:
        try:
            return self.names.index(name) + 1
        except ValueError as exc:
            raise ProductError(f"unknown product name {name!r}") from exc


@dataclass
class LocationMatrix:
    """Units of each product accessible from each shelf-access vertex.

    Internally a dense ``(num_products + 1, num_vertices)`` int array indexed
    by ``[product_id, vertex_id]``; row 0 (ρ0) is always zero.  Only
    shelf-access vertices may hold stock.
    """

    catalog: ProductCatalog
    floorplan: FloorplanGraph
    _units: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._units is None:
            self._units = np.zeros(
                (self.catalog.num_products + 1, self.floorplan.num_vertices), dtype=np.int64
            )
        expected = (self.catalog.num_products + 1, self.floorplan.num_vertices)
        if self._units.shape != expected:
            raise ProductError(
                f"location matrix shape {self._units.shape} does not match {expected}"
            )

    # -- mutation ---------------------------------------------------------------
    def place(self, product: ProductId, vertex: VertexId, units: int) -> None:
        """Add ``units`` of ``product`` accessible from shelf-access vertex ``vertex``."""
        self._check_product(product)
        if units < 0:
            raise ProductError("cannot place a negative number of units")
        if not self.floorplan.is_shelf_access(vertex):
            raise ProductError(
                f"vertex {vertex} ({self.floorplan.cell_of(vertex)}) is not a shelf-access vertex"
            )
        self._units[product, vertex] += units

    def remove(self, product: ProductId, vertex: VertexId, units: int = 1) -> None:
        """Remove units (e.g. when an agent picks a product up)."""
        self._check_product(product)
        if self._units[product, vertex] < units:
            raise ProductError(
                f"cannot remove {units} units of product {product} from vertex {vertex}: "
                f"only {self._units[product, vertex]} present"
            )
        self._units[product, vertex] -= units

    # -- queries ------------------------------------------------------------------
    def units_at(self, product: ProductId, vertex: VertexId) -> int:
        self._check_product(product)
        return int(self._units[product, vertex])

    def products_at(self, vertex: VertexId) -> List[ProductId]:
        """Products with at least one unit accessible from ``vertex`` (PRODUCTSAT)."""
        return [int(k) for k in np.nonzero(self._units[:, vertex])[0] if k != EMPTY_HANDED]

    def total_units(self, product: ProductId) -> int:
        self._check_product(product)
        return int(self._units[product].sum())

    def total_units_all(self) -> int:
        return int(self._units[1:].sum())

    def vertices_with(self, product: ProductId) -> List[VertexId]:
        self._check_product(product)
        return [int(v) for v in np.nonzero(self._units[product])[0]]

    def stocked_vertices(self) -> List[VertexId]:
        """Shelf-access vertices holding at least one unit of anything."""
        return [int(v) for v in np.nonzero(self._units[1:].sum(axis=0))[0]]

    def as_array(self) -> np.ndarray:
        """Copy of the underlying ``(num_products + 1, num_vertices)`` array."""
        return self._units.copy()

    def copy(self) -> "LocationMatrix":
        return LocationMatrix(self.catalog, self.floorplan, self._units.copy())

    def _check_product(self, product: ProductId) -> None:
        if not 1 <= product <= self.catalog.num_products:
            raise ProductError(f"invalid product id {product}")

    # -- constructors ----------------------------------------------------------------
    @staticmethod
    def from_placements(
        catalog: ProductCatalog,
        floorplan: FloorplanGraph,
        placements: Iterable[Tuple[ProductId, VertexId, int]],
    ) -> "LocationMatrix":
        matrix = LocationMatrix(catalog, floorplan)
        for product, vertex, units in placements:
            matrix.place(product, vertex, units)
        return matrix

    @staticmethod
    def spread_evenly(
        catalog: ProductCatalog,
        floorplan: FloorplanGraph,
        units_per_product: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "LocationMatrix":
        """Distribute each product's stock over randomly chosen shelf-access vertices.

        Mirrors how the paper's evaluation maps are stocked: every product has
        ample supply spread over a handful of shelving locations.
        """
        rng = rng or np.random.default_rng(0)
        access = sorted(floorplan.shelf_access)
        if not access:
            raise ProductError("floorplan has no shelf-access vertices to stock")
        matrix = LocationMatrix(catalog, floorplan)
        for product in catalog.product_ids:
            locations = max(1, min(len(access), units_per_product // 4 or 1))
            chosen = rng.choice(len(access), size=locations, replace=False)
            base, remainder = divmod(units_per_product, locations)
            for i, idx in enumerate(sorted(chosen)):
                units = base + (1 if i < remainder else 0)
                if units:
                    matrix.place(product, access[idx], units)
        return matrix


def products_at(
    location_matrix: LocationMatrix, vertex: VertexId
) -> List[ProductId]:
    """Module-level alias of PRODUCTSAT(v) used by the plan validator."""
    return location_matrix.products_at(vertex)


def stock_summary(matrix: LocationMatrix) -> Dict[str, int]:
    """Aggregate statistics used by reports and examples."""
    return {
        "products": matrix.catalog.num_products,
        "stocked_vertices": len(matrix.stocked_vertices()),
        "total_units": matrix.total_units_all(),
    }
