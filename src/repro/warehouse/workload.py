"""Workloads: the demand vector ``w`` of a WSP instance.

A workload assigns to each product the number of units that must reach a
station within the time limit.  The module also provides the workload
generators used by the benchmark harness to regenerate the nine Table-I
instances (uniform and Zipf-skewed demand at a target total number of units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from .products import ProductCatalog, ProductError, ProductId


class WorkloadError(ValueError):
    """Raised for invalid workload specifications."""


@dataclass(frozen=True)
class Workload:
    """Demand vector ``w``: ``demands[k]`` units of product ``k`` must be delivered."""

    demands: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.demands):
            raise WorkloadError("demands must be non-negative")

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def from_mapping(catalog: ProductCatalog, demand: Mapping[ProductId, int]) -> "Workload":
        """Build a workload from a sparse ``{product_id: units}`` mapping."""
        demands = [0] * catalog.num_products
        for product, units in demand.items():
            if not 1 <= product <= catalog.num_products:
                raise WorkloadError(f"unknown product id {product}")
            if units < 0:
                raise WorkloadError("demands must be non-negative")
            demands[product - 1] = int(units)
        return Workload(tuple(demands))

    @staticmethod
    def uniform(catalog: ProductCatalog, total_units: int) -> "Workload":
        """Spread ``total_units`` as evenly as possible over all products.

        This is the shape of the paper's Table-I instances: e.g. 55 products /
        550 units is exactly 10 units per product.
        """
        n = catalog.num_products
        base, remainder = divmod(int(total_units), n)
        demands = [base + (1 if k < remainder else 0) for k in range(n)]
        return Workload(tuple(demands))

    @staticmethod
    def zipf(
        catalog: ProductCatalog,
        total_units: int,
        exponent: float = 1.1,
        rng: Optional[np.random.Generator] = None,
    ) -> "Workload":
        """A skewed workload where a few products dominate the demand.

        Real order streams are heavy-tailed; this generator is used by the
        extension benchmarks to probe sensitivity to demand skew.
        """
        if total_units < 0:
            raise WorkloadError("total_units must be non-negative")
        rng = rng or np.random.default_rng(0)
        n = catalog.num_products
        weights = 1.0 / np.arange(1, n + 1, dtype=float) ** exponent
        rng.shuffle(weights)
        weights /= weights.sum()
        demands = np.floor(weights * total_units).astype(int)
        shortfall = int(total_units - demands.sum())
        if shortfall > 0:
            extra = rng.choice(n, size=shortfall, replace=True, p=weights)
            for idx in extra:
                demands[idx] += 1
        return Workload(tuple(int(d) for d in demands))

    # -- queries -----------------------------------------------------------------
    @property
    def num_products(self) -> int:
        return len(self.demands)

    @property
    def total_units(self) -> int:
        return int(sum(self.demands))

    @property
    def num_requested_products(self) -> int:
        """Number of distinct products with non-zero demand."""
        return sum(1 for d in self.demands if d > 0)

    def demand(self, product: ProductId) -> int:
        if not 1 <= product <= len(self.demands):
            raise WorkloadError(f"unknown product id {product}")
        return self.demands[product - 1]

    def requested_products(self) -> Tuple[ProductId, ...]:
        return tuple(k + 1 for k, d in enumerate(self.demands) if d > 0)

    def as_dict(self) -> Dict[ProductId, int]:
        return {k + 1: d for k, d in enumerate(self.demands) if d > 0}

    def scaled(self, factor: float) -> "Workload":
        """A workload with every demand scaled and rounded (at least 1 where demand existed)."""
        if factor < 0:
            raise WorkloadError("scale factor must be non-negative")
        return Workload(
            tuple(
                int(round(d * factor)) if d * factor >= 1 or d == 0 else 1
                for d in self.demands
            )
        )

    def is_satisfied_by(self, delivered: Mapping[ProductId, int]) -> bool:
        """True when ``delivered`` covers every product's demand."""
        return all(delivered.get(k + 1, 0) >= d for k, d in enumerate(self.demands))

    def shortfall(self, delivered: Mapping[ProductId, int]) -> Dict[ProductId, int]:
        """Per-product units still missing under ``delivered`` (empty when satisfied)."""
        missing = {}
        for k, d in enumerate(self.demands):
            got = delivered.get(k + 1, 0)
            if got < d:
                missing[k + 1] = d - got
        return missing

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload({self.total_units} units over "
            f"{self.num_requested_products}/{self.num_products} products)"
        )


def check_workload_stock(workload: Workload, total_stock: Mapping[ProductId, int]) -> None:
    """Raise when a workload demands more units than the warehouse holds.

    The flow-synthesis stage would discover this as an infeasibility, but the
    error message here is far more actionable for a user.
    """
    for product, demand in workload.as_dict().items():
        stock = total_stock.get(product, 0)
        if demand > stock:
            raise WorkloadError(
                f"workload requests {demand} units of product {product} "
                f"but only {stock} are stocked"
            )
