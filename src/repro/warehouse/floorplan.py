"""The floorplan graph ``G = (V, E)`` of a warehouse (Sec. III of the paper).

Each vertex is a one-agent-wide cell an agent may occupy; there is an edge
between two vertices iff an agent can move between them in one timestep.  The
graph is derived from a :class:`~repro.warehouse.grid.GridMap` and annotated
with the shelf-access vertex set ``S`` and the station vertex set ``R``.

Vertices are integer ids (dense, 0..|V|-1) with a bidirectional mapping to
``(x, y)`` cells; the dense ids keep plans and reservation tables compact
(plain numpy int arrays) for team sizes in the hundreds.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from .grid import Cell, GridMap

VertexId = int


class FloorplanError(ValueError):
    """Raised for inconsistent floorplan graphs."""


#: Bounded LRU of built floorplan graphs keyed by the grid's full identity
#: (ASCII rendering + name).  Repeated :class:`ScenarioSpec` builds of the
#: same map — the common case in the serving layer, where every request for a
#: scenario re-materializes its warehouse — then share one graph instead of
#: re-deriving adjacency for every request.  Graphs are treated as immutable
#: after construction (nothing in the code base mutates one), which is what
#: makes sharing sound.
_FROM_GRID_CACHE: "OrderedDict[Tuple[str, str], FloorplanGraph]" = OrderedDict()
_FROM_GRID_CAPACITY = 64
_from_grid_stats = {"hits": 0, "misses": 0}


def from_grid_cache_info() -> Dict[str, int]:
    """Hit/miss counters of the ``from_grid`` memo (for the micro-benchmark)."""
    return dict(_from_grid_stats, size=len(_FROM_GRID_CACHE))


def from_grid_cache_clear() -> None:
    """Drop every memoized floorplan graph and reset the counters."""
    _FROM_GRID_CACHE.clear()
    _from_grid_stats["hits"] = 0
    _from_grid_stats["misses"] = 0


@dataclass
class FloorplanGraph:
    """Undirected floorplan graph with shelf-access and station annotations.

    Use :meth:`from_grid` to build one; direct construction is exposed for
    tests and for hand-crafted graphs.
    """

    cells: List[Cell]
    adjacency: List[Tuple[VertexId, ...]]
    shelf_access: FrozenSet[VertexId]
    stations: FrozenSet[VertexId]
    grid: Optional[GridMap] = None
    _cell_index: Dict[Cell, VertexId] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.adjacency) != len(self.cells):
            raise FloorplanError("adjacency list length must match vertex count")
        if not self._cell_index:
            self._cell_index = {cell: i for i, cell in enumerate(self.cells)}
        for vertex_set, label in ((self.shelf_access, "shelf access"), (self.stations, "station")):
            for v in vertex_set:
                if not 0 <= v < len(self.cells):
                    raise FloorplanError(f"{label} vertex {v} out of range")

    # -- construction ---------------------------------------------------------
    @staticmethod
    def from_grid(grid: GridMap) -> "FloorplanGraph":
        """Build the floorplan graph of a grid map.

        * vertices  — traversable cells (open floor and stations);
        * edges     — 4-adjacency between traversable cells;
        * ``S``     — traversable cells adjacent to at least one shelf;
        * ``R``     — station cells.

        Results are memoized per grid identity (ASCII + name): building the
        same map twice returns the same (immutable-by-convention) graph.
        """
        key = (grid.to_ascii(), grid.name)
        cached = _FROM_GRID_CACHE.get(key)
        if cached is not None:
            _FROM_GRID_CACHE.move_to_end(key)
            _from_grid_stats["hits"] += 1
            return cached
        _from_grid_stats["misses"] += 1
        cells = grid.traversable_cells()
        index = {cell: i for i, cell in enumerate(cells)}
        adjacency: List[Tuple[VertexId, ...]] = []
        for cell in cells:
            adjacency.append(tuple(index[n] for n in grid.neighbors(cell)))
        shelf_access = frozenset(index[c] for c in grid.shelf_access_cells())
        stations = frozenset(index[c] for c in grid.station_cells())
        graph = FloorplanGraph(
            cells=cells,
            adjacency=adjacency,
            shelf_access=shelf_access,
            stations=stations,
            grid=grid,
            _cell_index=index,
        )
        _FROM_GRID_CACHE[key] = graph
        while len(_FROM_GRID_CACHE) > _FROM_GRID_CAPACITY:
            _FROM_GRID_CACHE.popitem(last=False)
        return graph

    # -- vertex/cell mapping ---------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.cells)

    def vertex_at(self, cell: Cell) -> VertexId:
        try:
            return self._cell_index[cell]
        except KeyError as exc:
            raise FloorplanError(f"no vertex at cell {cell}") from exc

    def has_vertex_at(self, cell: Cell) -> bool:
        return cell in self._cell_index

    def cell_of(self, vertex: VertexId) -> Cell:
        try:
            return self.cells[vertex]
        except IndexError as exc:
            raise FloorplanError(f"vertex {vertex} out of range") from exc

    def neighbors(self, vertex: VertexId) -> Tuple[VertexId, ...]:
        return self.adjacency[vertex]

    def are_adjacent(self, u: VertexId, v: VertexId) -> bool:
        return v in self.adjacency[u]

    def degree(self, vertex: VertexId) -> int:
        return len(self.adjacency[vertex])

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adjacency) // 2

    # -- annotations ------------------------------------------------------------
    def is_shelf_access(self, vertex: VertexId) -> bool:
        return vertex in self.shelf_access

    def is_station(self, vertex: VertexId) -> bool:
        return vertex in self.stations

    def shelves_adjacent_to(self, vertex: VertexId) -> List[Cell]:
        """Shelf cells reachable from a vertex (empty when not a shelf-access vertex)."""
        if self.grid is None:
            return []
        return self.grid.adjacent_shelves(self.cell_of(vertex))

    # -- graph algorithms --------------------------------------------------------
    def bfs_distances(self, source: VertexId) -> Dict[VertexId, int]:
        """Unweighted shortest-path distances from ``source`` to every reachable vertex."""
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.adjacency[current]:
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    queue.append(neighbor)
        return distances

    def shortest_path(self, source: VertexId, target: VertexId) -> Optional[List[VertexId]]:
        """One unweighted shortest path, or ``None`` when unreachable."""
        if source == target:
            return [source]
        parents: Dict[VertexId, VertexId] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.adjacency[current]:
                if neighbor not in parents:
                    parents[neighbor] = current
                    if neighbor == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    queue.append(neighbor)
        return None

    def is_connected(self, vertices: Optional[Iterable[VertexId]] = None) -> bool:
        """Whether the graph (or an induced subset of it) is connected."""
        if vertices is None:
            targets = set(range(self.num_vertices))
        else:
            targets = set(vertices)
        if not targets:
            return True
        start = next(iter(targets))
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self.adjacency[current]:
                if neighbor in targets and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen == targets

    def to_networkx(self) -> nx.Graph:
        """Export to a networkx graph (vertex attribute ``cell``; flags for S and R)."""
        graph = nx.Graph()
        for vertex, cell in enumerate(self.cells):
            graph.add_node(
                vertex,
                cell=cell,
                shelf_access=vertex in self.shelf_access,
                station=vertex in self.stations,
            )
        for vertex, neighbors in enumerate(self.adjacency):
            for neighbor in neighbors:
                if vertex < neighbor:
                    graph.add_edge(vertex, neighbor)
        return graph

    def induced_path_is_simple(self, vertices: Sequence[VertexId]) -> bool:
        """True when ``vertices`` form a simple path in the graph (in order).

        Used by the traffic-system validator: every component must be a
        disjoint simple path of floorplan vertices.
        """
        if len(vertices) != len(set(vertices)):
            return False
        return all(
            self.are_adjacent(u, v) for u, v in zip(vertices, vertices[1:])
        )

    def summary(self) -> str:
        return (
            f"floorplan: {self.num_vertices} vertices, {self.num_edges} edges, "
            f"{len(self.shelf_access)} shelf-access, {len(self.stations)} stations"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FloorplanGraph({self.summary()})"
