"""The automated warehouse 5-tuple ``W = (G, S, R, ρ, Λ)`` and WSP instances.

:class:`Warehouse` bundles the floorplan graph, its shelf-access and station
annotations, the product catalog and the location matrix.  A
:class:`WSPInstance` adds the workload and the timestep limit, i.e. everything
Problem 3.1 of the paper takes as input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .floorplan import FloorplanGraph, VertexId
from .grid import GridMap
from .products import LocationMatrix, ProductCatalog, ProductId
from .workload import Workload, WorkloadError, check_workload_stock


class WarehouseError(ValueError):
    """Raised for structurally invalid warehouses or WSP instances."""


@dataclass
class Warehouse:
    """An automated warehouse ``W = (G, S, R, ρ, Λ)``.

    Attributes
    ----------
    floorplan:
        The floorplan graph ``G`` with shelf-access vertices ``S`` and station
        vertices ``R``.
    catalog:
        The product vector ``ρ``.
    stock:
        The location matrix ``Λ``.
    name:
        Human-readable name used in reports (defaults to the grid name).
    """

    floorplan: FloorplanGraph
    catalog: ProductCatalog
    stock: LocationMatrix
    name: str = ""

    def __post_init__(self) -> None:
        if self.stock.floorplan is not self.floorplan:
            raise WarehouseError("location matrix was built for a different floorplan")
        if self.stock.catalog is not self.catalog:
            raise WarehouseError("location matrix was built for a different catalog")
        if not self.name:
            grid = self.floorplan.grid
            self.name = grid.name if grid is not None else "warehouse"

    # -- convenience accessors ---------------------------------------------------
    @property
    def grid(self) -> Optional[GridMap]:
        return self.floorplan.grid

    @property
    def shelf_access_vertices(self) -> frozenset:
        return self.floorplan.shelf_access

    @property
    def station_vertices(self) -> frozenset:
        return self.floorplan.stations

    @property
    def num_products(self) -> int:
        return self.catalog.num_products

    def products_at(self, vertex: VertexId) -> Tuple[ProductId, ...]:
        """PRODUCTSAT(v): products accessible from ``vertex`` (empty off shelf-access)."""
        if not self.floorplan.is_shelf_access(vertex):
            return ()
        return tuple(self.stock.products_at(vertex))

    def total_stock(self) -> Dict[ProductId, int]:
        return {k: self.stock.total_units(k) for k in self.catalog.product_ids}

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of Sec. III.

        * there is at least one station and one shelf-access vertex;
        * every stocked vertex is a shelf-access vertex (enforced by
          :class:`LocationMatrix`, re-checked here for safety);
        * the floorplan is connected over the vertices that matter (every
          shelf-access vertex can reach every station).
        """
        if not self.floorplan.stations:
            raise WarehouseError(f"warehouse {self.name!r} has no stations")
        if not self.floorplan.shelf_access:
            raise WarehouseError(f"warehouse {self.name!r} has no shelf-access vertices")
        for vertex in self.stock.stocked_vertices():
            if not self.floorplan.is_shelf_access(vertex):
                raise WarehouseError(
                    f"stock present at non-shelf-access vertex {vertex}"
                )
        some_station = next(iter(self.floorplan.stations))
        reachable = self.floorplan.bfs_distances(some_station)
        for vertex in self.floorplan.shelf_access:
            if vertex not in reachable:
                raise WarehouseError(
                    f"shelf-access vertex {vertex} cannot reach station {some_station}"
                )

    def summary(self) -> str:
        return (
            f"warehouse {self.name!r}: {self.floorplan.num_vertices} cells, "
            f"{len(self.floorplan.shelf_access)} shelf-access vertices, "
            f"{len(self.floorplan.stations)} stations, "
            f"{self.catalog.num_products} products, "
            f"{self.stock.total_units_all()} stocked units"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Warehouse({self.summary()})"


@dataclass
class WSPInstance:
    """A Warehouse Servicing Problem instance (Problem 3.1).

    ``warehouse`` + ``workload`` + timestep limit ``horizon`` (the paper's T).
    """

    warehouse: Warehouse
    workload: Workload
    horizon: int

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise WarehouseError("the timestep limit T must be positive")
        if self.workload.num_products != self.warehouse.num_products:
            raise WarehouseError(
                f"workload covers {self.workload.num_products} products but the warehouse "
                f"has {self.warehouse.num_products}"
            )

    def validate(self) -> None:
        """Structural validation plus a stock-sufficiency check."""
        self.warehouse.validate()
        try:
            check_workload_stock(self.workload, self.warehouse.total_stock())
        except WorkloadError as exc:
            raise WarehouseError(str(exc)) from exc

    @property
    def name(self) -> str:
        return (
            f"{self.warehouse.name}"
            f"[{self.workload.total_units}u/{self.workload.num_requested_products}p"
            f"/T={self.horizon}]"
        )

    def summary(self) -> str:
        return (
            f"WSP instance {self.name}: "
            f"{self.workload.total_units} units of "
            f"{self.workload.num_requested_products} products within {self.horizon} steps"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WSPInstance({self.summary()})"


def build_warehouse(
    grid: GridMap,
    num_products: int,
    units_per_product: int = 50,
    seed: int = 0,
    name: str = "",
) -> Warehouse:
    """Convenience constructor: floorplan + generically named, randomly stocked products.

    The map generators in :mod:`repro.maps` use more structured stocking; this
    helper is for quick experiments and tests.
    """
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog.numbered(num_products)
    stock = LocationMatrix.spread_evenly(
        catalog, floorplan, units_per_product, rng=np.random.default_rng(seed)
    )
    return Warehouse(floorplan=floorplan, catalog=catalog, stock=stock, name=name or grid.name)
