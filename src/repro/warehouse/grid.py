"""Grid maps: the cell-level description of a warehouse floorplan.

A :class:`GridMap` is a rectangular grid of cells, each of which is one of:

* ``EMPTY``    (``.``) — open floor an agent can occupy;
* ``OBSTACLE`` (``@``) — a wall or unusable area;
* ``SHELF``    (``S``) — a storage shelf (agents cannot occupy it; products are
  picked from the *adjacent* open cells, the shelf-access cells);
* ``STATION``  (``T``) — a packing / picking station cell (agents can occupy it
  and hand a product to a worker there).

The grid is the concrete artifact of Fig. 1 (left), Fig. 4 and Fig. 5 of the
paper; the *floorplan graph* of Fig. 1 (right) is derived from it by
:class:`repro.warehouse.floorplan.FloorplanGraph`.

Coordinates are ``(x, y)`` with ``x`` the column (0 at the left) and ``y`` the
row (0 at the *bottom*), matching the paper's ``v_{x,y}`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

Cell = Tuple[int, int]

#: Cell type characters (also the ASCII map format).
EMPTY = "."
OBSTACLE = "@"
SHELF = "S"
STATION = "T"

_VALID_CELLS = {EMPTY, OBSTACLE, SHELF, STATION}

#: Cells an agent may occupy.
TRAVERSABLE = {EMPTY, STATION}

#: 4-connected neighborhood offsets (E, W, N, S).
NEIGHBOR_OFFSETS: Tuple[Cell, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


class GridError(ValueError):
    """Raised for malformed grids or out-of-range cell queries."""


@dataclass(frozen=True)
class GridMap:
    """An immutable rectangular warehouse grid.

    Parameters
    ----------
    width, height:
        Grid dimensions in cells.
    cells:
        Mapping from ``(x, y)`` to a cell-type character.  Cells not present
        default to ``OBSTACLE`` (this keeps sparse construction convenient).
    name:
        Optional human-readable map name (used in reports).
    """

    width: int
    height: int
    cells: Dict[Cell, str]
    name: str = "grid"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise GridError(f"grid dimensions must be positive, got {self.width}x{self.height}")
        for cell, kind in self.cells.items():
            if kind not in _VALID_CELLS:
                raise GridError(f"unknown cell type {kind!r} at {cell}")
            if not self.in_bounds(cell):
                raise GridError(f"cell {cell} outside {self.width}x{self.height} grid")

    # -- construction ---------------------------------------------------------
    @staticmethod
    def from_ascii(text: str, name: str = "grid") -> "GridMap":
        """Parse an ASCII drawing into a grid.

        The *last* text line is row ``y = 0`` (so the drawing looks like the
        warehouse seen from above, with the origin at the bottom-left).  Blank
        lines and surrounding whitespace-only lines are ignored.  Spaces are
        treated as obstacles.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise GridError("empty ASCII map")
        height = len(lines)
        width = max(len(line) for line in lines)
        cells: Dict[Cell, str] = {}
        for row_index, line in enumerate(lines):
            y = height - 1 - row_index
            for x in range(width):
                char = line[x] if x < len(line) else " "
                if char == " ":
                    char = OBSTACLE
                if char not in _VALID_CELLS:
                    raise GridError(f"unknown map character {char!r} at ({x}, {y})")
                cells[(x, y)] = char
        return GridMap(width=width, height=height, cells=cells, name=name)

    def to_ascii(self) -> str:
        """Render the grid back to the ASCII format accepted by :meth:`from_ascii`."""
        rows: List[str] = []
        for y in range(self.height - 1, -1, -1):
            rows.append("".join(self.cell_type((x, y)) for x in range(self.width)))
        return "\n".join(rows)

    def with_name(self, name: str) -> "GridMap":
        return GridMap(width=self.width, height=self.height, cells=dict(self.cells), name=name)

    # -- basic queries --------------------------------------------------------
    def in_bounds(self, cell: Cell) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def cell_type(self, cell: Cell) -> str:
        """Cell type at ``cell`` (``OBSTACLE`` for unknown in-bounds cells)."""
        if not self.in_bounds(cell):
            raise GridError(f"cell {cell} outside {self.width}x{self.height} grid")
        return self.cells.get(cell, OBSTACLE)

    def is_traversable(self, cell: Cell) -> bool:
        return self.in_bounds(cell) and self.cell_type(cell) in TRAVERSABLE

    def is_shelf(self, cell: Cell) -> bool:
        return self.in_bounds(cell) and self.cell_type(cell) == SHELF

    def is_station(self, cell: Cell) -> bool:
        return self.in_bounds(cell) and self.cell_type(cell) == STATION

    # -- enumeration ----------------------------------------------------------
    def all_cells(self) -> Iterator[Cell]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def traversable_cells(self) -> List[Cell]:
        """Open cells an agent may occupy, in row-major order."""
        return [cell for cell in self.all_cells() if self.is_traversable(cell)]

    def shelf_cells(self) -> List[Cell]:
        return [cell for cell in self.all_cells() if self.is_shelf(cell)]

    def station_cells(self) -> List[Cell]:
        return [cell for cell in self.all_cells() if self.is_station(cell)]

    def neighbors(self, cell: Cell) -> List[Cell]:
        """Traversable 4-neighbors of a traversable cell."""
        result = []
        for dx, dy in NEIGHBOR_OFFSETS:
            candidate = (cell[0] + dx, cell[1] + dy)
            if self.in_bounds(candidate) and self.is_traversable(candidate):
                result.append(candidate)
        return result

    def adjacent_shelves(self, cell: Cell) -> List[Cell]:
        """Shelf cells 4-adjacent to ``cell`` (non-empty iff it is a shelf-access cell)."""
        result = []
        for dx, dy in NEIGHBOR_OFFSETS:
            candidate = (cell[0] + dx, cell[1] + dy)
            if self.in_bounds(candidate) and self.is_shelf(candidate):
                result.append(candidate)
        return result

    def shelf_access_cells(self) -> List[Cell]:
        """Traversable cells adjacent to at least one shelf (the set ``S`` of the paper)."""
        return [
            cell
            for cell in self.traversable_cells()
            if self.adjacent_shelves(cell)
        ]

    # -- statistics -----------------------------------------------------------
    @property
    def num_traversable(self) -> int:
        return len(self.traversable_cells())

    @property
    def num_shelves(self) -> int:
        return len(self.shelf_cells())

    @property
    def num_stations(self) -> int:
        return len(self.station_cells())

    def summary(self) -> str:
        return (
            f"{self.name}: {self.width}x{self.height}, "
            f"{self.num_traversable} open cells, {self.num_shelves} shelves, "
            f"{self.num_stations} stations"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridMap({self.summary()})"


def build_grid(
    width: int,
    height: int,
    shelves: Sequence[Cell] = (),
    stations: Sequence[Cell] = (),
    obstacles: Sequence[Cell] = (),
    name: str = "grid",
) -> GridMap:
    """Construct a grid from explicit shelf / station / obstacle cell lists.

    Every other in-bounds cell is open floor.  Overlaps are rejected so map
    generators cannot silently place a station on top of a shelf.
    """
    cells: Dict[Cell, str] = {(x, y): EMPTY for x in range(width) for y in range(height)}

    def place(cell_list: Sequence[Cell], kind: str) -> None:
        for cell in cell_list:
            x, y = cell
            if not (0 <= x < width and 0 <= y < height):
                raise GridError(f"{kind} cell {cell} outside {width}x{height} grid")
            if cells[cell] != EMPTY:
                raise GridError(
                    f"cell {cell} assigned twice ({cells[cell]!r} then {kind!r})"
                )
            cells[cell] = kind

    place(tuple(obstacles), OBSTACLE)
    place(tuple(shelves), SHELF)
    place(tuple(stations), STATION)
    return GridMap(width=width, height=height, cells=cells, name=name)
