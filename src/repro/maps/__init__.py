"""Evaluation maps: the Fig. 1 example, fulfillment centers, and the sorting center.

Every generator returns both the warehouse *and* a traffic system satisfying
the Sec. IV-A design rules, because the methodology co-designs the two.
"""

from .catalog import (
    FULFILLMENT_1_LAYOUT,
    FULFILLMENT_1_SMALL,
    FULFILLMENT_2_LAYOUT,
    FULFILLMENT_2_SMALL,
    MAP_REGISTRY,
    PAPER_MAP_STATS,
    SORTING_CENTER_LAYOUT,
    SORTING_CENTER_SMALL,
    fulfillment_center_1,
    fulfillment_center_1_small,
    fulfillment_center_2,
    fulfillment_center_2_small,
    sorting_center,
    sorting_center_small,
)
from .example import (
    FIGURE1_ASCII,
    TOY_LAYOUT,
    figure1_grid,
    figure1_warehouse,
    toy_instance,
    toy_warehouse,
)
from .fulfillment import (
    DesignedWarehouse,
    FulfillmentLayout,
    generate_fulfillment_center,
    scaled_down,
)
from .sorting import SortingCenter, SortingLayout, generate_sorting_center

__all__ = [
    "DesignedWarehouse",
    "FIGURE1_ASCII",
    "FULFILLMENT_1_LAYOUT",
    "FULFILLMENT_1_SMALL",
    "FULFILLMENT_2_LAYOUT",
    "FULFILLMENT_2_SMALL",
    "FulfillmentLayout",
    "MAP_REGISTRY",
    "PAPER_MAP_STATS",
    "SORTING_CENTER_LAYOUT",
    "SORTING_CENTER_SMALL",
    "SortingCenter",
    "SortingLayout",
    "TOY_LAYOUT",
    "figure1_grid",
    "figure1_warehouse",
    "fulfillment_center_1",
    "fulfillment_center_1_small",
    "fulfillment_center_2",
    "fulfillment_center_2_small",
    "generate_fulfillment_center",
    "generate_sorting_center",
    "scaled_down",
    "sorting_center",
    "sorting_center_small",
    "toy_instance",
    "toy_warehouse",
]
