"""Sorting-center maps and the sorting-center → WSP reduction (paper Sec. V, Fig. 5).

A sorting center sorts packages by destination: agents ferry packages from
perimeter *bins* of unsorted packages to *chutes*, each of which feeds a
shipping container bound for one destination.  The paper reduces this problem
to a WSP instance by modelling

* chute ``i``  → a shelf stocked with an arbitrary amount of product ``ρ_i``;
* each bin     → a station;
* "bring ``n_i`` packages to chute ``i``" → a demand of ``n_i`` units of ``ρ_i``.

Solving the WSP instance produces an agent-cycle set moving ``n_i`` units of
``ρ_i`` from chute ``i`` to the bins; swapping the pickup and drop-off
locations of every cycle yields the desired sorting plan.  This module
implements the map generator (reusing the fulfillment layout machinery with
isolated, spaced-out "shelves" as chutes) and the reduction bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..warehouse import Workload, WSPInstance
from .fulfillment import DesignedWarehouse, FulfillmentLayout, generate_fulfillment_center


@dataclass(frozen=True)
class SortingLayout:
    """Parameters of a sorting-center map.

    ``num_chutes`` is the number of destinations (products in the reduction);
    ``num_bins`` is the number of unsorted-package bins (stations).
    """

    num_slices: int = 4
    chute_columns: int = 17
    chute_bands: int = 1
    chute_spacing: int = 2
    num_bins: int = 4
    bin_cells: int = 1
    extra_bottom_rows: int = 0
    name: str = "sorting-center"
    seed: int = 0

    def to_fulfillment_layout(self) -> FulfillmentLayout:
        """The equivalent fulfillment layout under the WSP reduction."""
        layout = FulfillmentLayout(
            num_slices=self.num_slices,
            shelf_columns=self.chute_columns,
            shelf_bands=self.chute_bands,
            shelf_depth=1,
            shelf_spacing=self.chute_spacing,
            num_stations=self.num_bins,
            station_cells=self.bin_cells,
            num_products=1,  # placeholder, fixed up below
            extra_bottom_rows=self.extra_bottom_rows,
            name=self.name,
            seed=self.seed,
        )
        # One product per chute: the number of chutes is a derived quantity.
        return replace(layout, num_products=layout.num_shelves)

    @property
    def num_chutes(self) -> int:
        return self.to_fulfillment_layout().num_shelves


@dataclass
class SortingCenter:
    """A generated sorting center: the designed warehouse plus reduction metadata."""

    designed: DesignedWarehouse
    layout: SortingLayout

    @property
    def warehouse(self):
        return self.designed.warehouse

    @property
    def traffic_system(self):
        return self.designed.traffic_system

    @property
    def num_chutes(self) -> int:
        return self.designed.warehouse.num_products

    @property
    def num_bins(self) -> int:
        return self.layout.num_bins

    def chute_product(self, chute_index: int) -> int:
        """The product id modelling chute ``chute_index`` (0-based)."""
        if not 0 <= chute_index < self.num_chutes:
            raise ValueError(f"chute index {chute_index} out of range")
        return chute_index + 1

    def workload_for_packages(self, packages_per_chute: Mapping[int, int]) -> Workload:
        """Build the WSP workload for "bring ``n_i`` packages to chute ``i``"."""
        demand = {
            self.chute_product(chute): units
            for chute, units in packages_per_chute.items()
        }
        return Workload.from_mapping(self.warehouse.catalog, demand)

    def uniform_workload(self, total_packages: int) -> Workload:
        """Packages spread evenly over all chutes (the Table-I instances)."""
        return Workload.uniform(self.warehouse.catalog, total_packages)

    def wsp_instance(self, workload: Workload, horizon: int) -> WSPInstance:
        return WSPInstance(self.warehouse, workload, horizon)

    def summary(self) -> str:
        return (
            f"sorting center {self.layout.name!r}: "
            f"{self.warehouse.floorplan.grid.width}x{self.warehouse.floorplan.grid.height} cells, "
            f"{self.num_chutes} chutes, {self.num_bins} bins"
        )


def generate_sorting_center(layout: Optional[SortingLayout] = None) -> SortingCenter:
    """Generate a sorting-center map, its traffic system and reduction metadata."""
    layout = layout or SortingLayout()
    designed = generate_fulfillment_center(layout.to_fulfillment_layout())
    return SortingCenter(designed=designed, layout=layout)
