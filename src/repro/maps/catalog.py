"""Named map presets matching the paper's evaluation maps (Sec. V).

The original raster maps (a Kiva fulfillment center from [Wurman et al. 2007]
and a sorting center from [Wan et al. 2018]) are not published; the presets
below are generated layouts whose headline statistics track the figures the
paper reports:

===============  ==========  ========  =========  ========  ========
map              paper cells  ours      shelves    stations  products
===============  ==========  ========  =========  ========  ========
Fulfillment 1    1071         1248      560 / 560  4 / 4     55
Fulfillment 2    793          858       240 / 240  1 / 1*    120
Sorting center   406          480       32 / 36**  4 / 4     36
===============  ==========  ========  =========  ========  ========

\\*  The paper's single station is modelled as a six-cell station area spread
over three slices of the station row; with a literal one-cell station the
methodology's own throughput ceiling (one delivery per cycle period per
station-queue slot) makes the paper's 1200–1440-unit workloads impossible
within T = 3600 — see DESIGN.md ("Deliberate interpretation choices").

\\** The paper's map description says 32 chutes but Table I lists 36 unique
products for the sorting instances; we follow Table I (36 chutes) since the
benchmark harness regenerates the table.

Each preset is paper-scale; ``*_small()`` variants with identical structure
are provided for fast unit tests and CI-friendly benchmark runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict

from .fulfillment import DesignedWarehouse, FulfillmentLayout, generate_fulfillment_center
from .sorting import SortingCenter, SortingLayout, generate_sorting_center

# The preset constructors are memoized: generating a paper-scale map costs a
# noticeable fraction of a second and ``repro table1`` / the test suite ask
# for the same presets repeatedly.  The pipeline treats a DesignedWarehouse
# as immutable (the simulator copies stock into its own shelf processes), so
# sharing one instance is safe.

#: Paper-reported statistics, used by the benchmark harness for side-by-side
#: reporting (map name -> (cells, shelves, stations, products)).
PAPER_MAP_STATS: Dict[str, tuple] = {
    "fulfillment-1": (1071, 560, 4, 55),
    "fulfillment-2": (793, 240, 1, 120),
    "sorting-center": (406, 32, 4, 36),
}

#: Fulfillment 1: the "real" Kiva map — 4 stations, 55 products, 560 shelves.
FULFILLMENT_1_LAYOUT = FulfillmentLayout(
    num_slices=4,
    shelf_columns=10,
    shelf_bands=7,
    shelf_depth=2,
    num_stations=4,
    station_cells=2,
    num_products=55,
    name="fulfillment-1",
)

#: Fulfillment 2: the synthetic map — 1 station (area), 120 products, 240 shelves.
FULFILLMENT_2_LAYOUT = FulfillmentLayout(
    num_slices=6,
    shelf_columns=8,
    shelf_bands=5,
    shelf_depth=1,
    num_stations=1,
    station_cells=6,
    spread_station_cells=True,
    num_products=120,
    name="fulfillment-2",
)

#: Sorting center: 36 chutes (products), 4 bins (stations).
SORTING_CENTER_LAYOUT = SortingLayout(
    num_slices=4,
    chute_columns=17,
    chute_bands=1,
    chute_spacing=2,
    num_bins=4,
    # One extra open row below the chutes: it lengthens the down corridors so
    # the largest Table-I sorting workload (480 packages) fits the per-period
    # delivery capacity of the traffic system.
    extra_bottom_rows=1,
    name="sorting-center",
)


@lru_cache(maxsize=None)
def fulfillment_center_1() -> DesignedWarehouse:
    """The paper's Fulfillment 1 map (paper-scale preset)."""
    return generate_fulfillment_center(FULFILLMENT_1_LAYOUT)


@lru_cache(maxsize=None)
def fulfillment_center_2() -> DesignedWarehouse:
    """The paper's Fulfillment 2 map (paper-scale preset)."""
    return generate_fulfillment_center(FULFILLMENT_2_LAYOUT)


@lru_cache(maxsize=None)
def sorting_center() -> SortingCenter:
    """The paper's sorting-center map (paper-scale preset)."""
    return generate_sorting_center(SORTING_CENTER_LAYOUT)


#: Routing-scale map: a fulfillment layout about twice Fulfillment 1's free
#: area (~1.4k traversable cells), sized so a 100-agent MAPF fleet sits at the
#: ~7% grid density of the standard warehouse MAPF benchmarks.  Used by the
#: routing benchmark's scaling section; the co-design pipeline itself never
#: needs a fleet this large on one map.
ROUTING_SCALE_LARGE_LAYOUT = FulfillmentLayout(
    num_slices=8,
    shelf_columns=12,
    shelf_bands=7,
    shelf_depth=2,
    num_stations=8,
    station_cells=2,
    num_products=55,
    name="routing-scale-large",
)


@lru_cache(maxsize=None)
def routing_scale_large() -> DesignedWarehouse:
    """The 100-agent-capable large map of the routing scaling benchmark."""
    return generate_fulfillment_center(ROUTING_SCALE_LARGE_LAYOUT)


#: Small structural twins of the presets, for tests and quick benchmark runs.
FULFILLMENT_1_SMALL = FulfillmentLayout(
    num_slices=2,
    shelf_columns=5,
    shelf_bands=3,
    shelf_depth=2,
    num_stations=2,
    num_products=8,
    name="fulfillment-1-small",
)

FULFILLMENT_2_SMALL = FulfillmentLayout(
    num_slices=3,
    shelf_columns=4,
    shelf_bands=3,
    shelf_depth=1,
    num_stations=1,
    station_cells=3,
    spread_station_cells=True,
    num_products=12,
    name="fulfillment-2-small",
)

SORTING_CENTER_SMALL = SortingLayout(
    num_slices=2,
    chute_columns=7,
    chute_bands=1,
    chute_spacing=2,
    num_bins=2,
    name="sorting-center-small",
)


@lru_cache(maxsize=None)
def fulfillment_center_1_small() -> DesignedWarehouse:
    return generate_fulfillment_center(FULFILLMENT_1_SMALL)


@lru_cache(maxsize=None)
def fulfillment_center_2_small() -> DesignedWarehouse:
    return generate_fulfillment_center(FULFILLMENT_2_SMALL)


@lru_cache(maxsize=None)
def sorting_center_small() -> SortingCenter:
    return generate_sorting_center(SORTING_CENTER_SMALL)


#: Registry used by examples and the benchmark harness.
MAP_REGISTRY: Dict[str, Callable[[], object]] = {
    "fulfillment-1": fulfillment_center_1,
    "fulfillment-2": fulfillment_center_2,
    "sorting-center": sorting_center,
    "routing-scale-large": routing_scale_large,
    "fulfillment-1-small": fulfillment_center_1_small,
    "fulfillment-2-small": fulfillment_center_2_small,
    "sorting-center-small": sorting_center_small,
}
