"""The small example warehouses used in documentation, tests and the quickstart.

* :func:`figure1_warehouse` reproduces the toy warehouse of Fig. 1 of the
  paper (two shelves, two stations) exactly; it is used to illustrate the
  floorplan-graph model.  It is too small to carry a non-trivial traffic
  system under the design rules (any 2-cell component containing a station
  would also contain a shelf-access vertex), so the end-to-end examples use
  :func:`toy_warehouse` instead — the smallest generated layout on which the
  whole methodology runs.
"""

from __future__ import annotations

from typing import Optional

from ..warehouse import (
    FloorplanGraph,
    GridMap,
    LocationMatrix,
    ProductCatalog,
    Warehouse,
    Workload,
    WSPInstance,
)
from .fulfillment import DesignedWarehouse, FulfillmentLayout, generate_fulfillment_center

#: ASCII drawing of the Fig. 1 warehouse (origin at the bottom-left; the last
#: line is row y = 0).  ``S`` are shelves, ``T`` stations, ``@`` obstacles.
FIGURE1_ASCII = """
.....
.S.S.
.....
@T@T@
""".strip("\n")


def figure1_grid() -> GridMap:
    """The 5x4 grid of Fig. 1 (left)."""
    return GridMap.from_ascii(FIGURE1_ASCII, name="figure-1")


def figure1_warehouse(units_per_shelf: int = 10) -> Warehouse:
    """The Fig. 1 warehouse: product ρ1 on the west shelf, ρ2 on the east shelf.

    The paper stocks 10 units of each product; the location matrix registers
    them at the shelf-access vertices ``v_{0,2}``/``v_{2,2}`` (ρ1) and
    ``v_{2,2}``/``v_{4,2}`` (ρ2), matching the Λ matrix shown in Sec. III.
    """
    grid = figure1_grid()
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog(("rho-1", "rho-2"))
    stock = LocationMatrix(catalog, floorplan)
    half, rest = divmod(units_per_shelf, 2)
    stock.place(1, floorplan.vertex_at((0, 2)), half + rest)
    stock.place(1, floorplan.vertex_at((2, 2)), half)
    stock.place(2, floorplan.vertex_at((2, 2)), half + rest)
    stock.place(2, floorplan.vertex_at((4, 2)), half)
    return Warehouse(floorplan=floorplan, catalog=catalog, stock=stock, name="figure-1")


#: Layout of the smallest end-to-end-solvable generated warehouse.
TOY_LAYOUT = FulfillmentLayout(
    num_slices=2,
    shelf_columns=4,
    shelf_bands=1,
    shelf_depth=1,
    num_stations=2,
    station_cells=1,
    num_products=4,
    name="toy-warehouse",
)


def toy_warehouse(layout: Optional[FulfillmentLayout] = None) -> DesignedWarehouse:
    """A small generated warehouse (2 slices, 8 shelves) for quickstarts and tests."""
    return generate_fulfillment_center(layout or TOY_LAYOUT)


def toy_instance(total_units: int = 8, horizon: int = 600) -> WSPInstance:
    """A complete small WSP instance: the toy warehouse plus a uniform workload."""
    designed = toy_warehouse()
    workload = Workload.uniform(designed.warehouse.catalog, total_units)
    return WSPInstance(designed.warehouse, workload, horizon)
