"""Parametric Kiva-style fulfillment-center generator (paper Fig. 4).

The paper evaluates the methodology on two fulfillment-center maps taken from
the literature [Wurman et al. 2007]; the original raster maps are not
published, so this module generates structurally equivalent layouts whose key
statistics (cell count, shelf count, station count, product count) match the
paper's presets (see :mod:`repro.maps.catalog`), together with a traffic
system that satisfies every design rule of Sec. IV-A.

Layout
------
The warehouse is a row of ``num_slices`` vertical *slices*.  Each slice
contains (west to east): a turn column, ``shelf_columns`` columns of shelves,
a second turn column, and a "down-corridor" column.  Vertically the map is:
the station row (y = 0), then alternating aisle rows and shelf bands
(``shelf_depth`` rows of shelves per band), a top aisle row, and a top
transport row.

Traffic system per slice ``b`` (all components are simple paths):

* ``slice{b}/station``      — the slice's piece of the station row, westbound
  (a *station queue* when it holds station cells, a transport otherwise);
* ``slice{b}/serpentine/i`` — a boustrophedon path that snakes bottom-up
  through every aisle row of the slice (split into chained pieces no longer
  than ``max_component_length`` so the longest component — and hence the cycle
  time ``tc = 2m`` — stays small); these are the *shelving rows*;
* ``slice{b}/top``          — the slice's piece of the top transport row,
  eastbound;
* ``slice{b}/down``         — the down corridor on the slice's east edge.

Circulation: station row → serpentine (pickups) → top row → down corridor →
station row (drop-offs), with the station row chaining west and the top row
chaining east across slices, which makes the component graph strongly
connected.  Turn-column cells at shelf heights that the serpentine does not
use are filled with obstacles so that every shelf-access vertex is covered by
a component (design rule 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..traffic import TrafficSystem, build_traffic_system, split_path
from ..warehouse import (
    Cell,
    FloorplanGraph,
    GridMap,
    LocationMatrix,
    ProductCatalog,
    Warehouse,
    WarehouseError,
    build_grid,
)


@dataclass(frozen=True)
class FulfillmentLayout:
    """Parameters of a generated fulfillment-center map.

    Attributes
    ----------
    num_slices:
        Number of vertical slices (``B``); each slice has its own circulation
        loop, so throughput scales with this number.
    shelf_columns:
        Shelf columns per slice (``bs``).
    shelf_bands:
        Number of shelf bands per slice (must be odd so the serpentine exits on
        the correct side; the generator raises otherwise).
    shelf_depth:
        Shelf rows per band (1 or 2; 2 matches Kiva's double-deep pods).
    shelf_spacing:
        Place a shelf every ``shelf_spacing`` columns (1 = every column; the
        sorting-center preset uses 2 so chutes are isolated).
    num_stations / station_cells:
        Number of logical stations and cells per station.  Station cells are
        assigned to slices round-robin; with ``spread_station_cells`` a single
        station's cells may be spread over several slices (used to model a
        wide packing counter, see DESIGN.md).
    num_products:
        Size of the product catalog; products are assigned to shelves
        round-robin so every product is stocked.
    stock_units_per_product:
        Stock per product (spread over its shelves).  The default (0) picks an
        "ample" value so stock never limits a Table-I-scale workload.
    max_component_length:
        Upper bound on component length; 0 selects
        ``max(station-row piece, down corridor)`` automatically, which
        minimises the cycle time without creating capacity-0 components.
    """

    num_slices: int = 4
    shelf_columns: int = 10
    shelf_bands: int = 7
    shelf_depth: int = 2
    shelf_spacing: int = 1
    num_stations: int = 4
    station_cells: int = 1
    spread_station_cells: bool = False
    num_products: int = 55
    stock_units_per_product: int = 0
    #: Slotting permutation of ``1..num_products``: the i-th shuffled shelf is
    #: stocked with ``product_order[i % num_products]``.  Empty selects the
    #: identity order (plain round-robin) — the historical behaviour.
    product_order: Tuple[int, ...] = ()
    max_component_length: int = 0
    #: Extra open rows between the station row and the lowest aisle row.  They
    #: lengthen each slice's down corridor (and hence its per-period delivery
    #: capacity ⌊|C|/2⌋) without adding shelves; the sorting-center preset uses
    #: one such row so its largest Table-I workload fits the traffic system.
    extra_bottom_rows: int = 0
    name: str = "fulfillment"
    seed: int = 0

    # -- derived geometry ------------------------------------------------------
    @property
    def band_period(self) -> int:
        """Vertical period of one (aisle row + shelf band) block."""
        return self.shelf_depth + 1

    @property
    def slice_width(self) -> int:
        return self.shelf_columns + 3

    @property
    def width(self) -> int:
        return self.num_slices * self.slice_width

    @property
    def height(self) -> int:
        return 3 + self.extra_bottom_rows + self.shelf_bands * self.band_period

    @property
    def num_cells(self) -> int:
        return self.width * self.height

    @property
    def shelves_per_row(self) -> int:
        return -(-self.shelf_columns // self.shelf_spacing)  # ceil

    @property
    def num_shelves(self) -> int:
        return (
            self.num_slices * self.shelves_per_row * self.shelf_depth * self.shelf_bands
        )

    @property
    def aisle_rows(self) -> Tuple[int, ...]:
        """The y coordinates of the aisle rows, bottom to top."""
        base = 1 + self.extra_bottom_rows
        return tuple(base + i * self.band_period for i in range(self.shelf_bands + 1))

    @property
    def top_row(self) -> int:
        return self.height - 1

    def slice_x0(self, slice_index: int) -> int:
        return slice_index * self.slice_width

    def validate(self) -> None:
        if self.num_slices < 1:
            raise WarehouseError("num_slices must be at least 1")
        if self.shelf_columns < 1:
            raise WarehouseError("shelf_columns must be at least 1")
        if self.shelf_bands < 1 or self.shelf_bands % 2 == 0:
            raise WarehouseError(
                "shelf_bands must be a positive odd number (the serpentine must "
                "exit on the west side to hand over to the top transport row)"
            )
        if self.shelf_depth not in (1, 2):
            raise WarehouseError("shelf_depth must be 1 or 2")
        if self.shelf_spacing < 1:
            raise WarehouseError("shelf_spacing must be at least 1")
        if self.extra_bottom_rows < 0:
            raise WarehouseError("extra_bottom_rows must be non-negative")
        if self.num_products < 1:
            raise WarehouseError("num_products must be at least 1")
        if self.product_order and sorted(self.product_order) != list(
            range(1, self.num_products + 1)
        ):
            raise WarehouseError(
                f"product_order must be a permutation of 1..{self.num_products} "
                f"(got {len(self.product_order)} entries)"
            )
        if self.num_stations < 1 or self.station_cells < 1:
            raise WarehouseError("need at least one station with at least one cell")
        per_slice = -(-self.num_stations * self.station_cells // self.num_slices)
        if per_slice > self.slice_width - 2:
            raise WarehouseError(
                "too many station cells per slice; increase num_slices or shelf_columns"
            )

    def resolved_max_component_length(self) -> int:
        if self.max_component_length:
            return max(2, self.max_component_length)
        return max(self.slice_width, self.height - 2)

    def resolved_stock_per_product(self) -> int:
        if self.stock_units_per_product:
            return self.stock_units_per_product
        # "Ample" stock: enough that neither the UNITSAT/q contract bound nor
        # over-delivery by continuously running cycles ever binds at Table-I scale.
        return 5000


@dataclass
class DesignedWarehouse:
    """A generated warehouse together with its designed traffic system."""

    warehouse: Warehouse
    traffic_system: TrafficSystem
    layout: FulfillmentLayout
    station_cells: Tuple[Cell, ...] = ()
    shelf_cells: Tuple[Cell, ...] = ()

    @property
    def name(self) -> str:
        return self.warehouse.name

    def summary(self) -> str:
        return (
            f"{self.warehouse.summary()}\n{self.traffic_system.summary()}"
        )


# ---------------------------------------------------------------------------
# geometry helpers
# ---------------------------------------------------------------------------

def _slice_shelf_cells(layout: FulfillmentLayout, slice_index: int) -> List[Cell]:
    """Shelf cells of one slice, ordered band-major then row-major."""
    x0 = layout.slice_x0(slice_index)
    cells: List[Cell] = []
    for band in range(layout.shelf_bands):
        y_base = 2 + layout.extra_bottom_rows + band * layout.band_period
        for depth_row in range(layout.shelf_depth):
            y = y_base + depth_row
            for column in range(0, layout.shelf_columns, layout.shelf_spacing):
                cells.append((x0 + 1 + column, y))
    return cells


def _slice_obstacle_cells(layout: FulfillmentLayout, slice_index: int) -> List[Cell]:
    """Turn-column cells at shelf heights on the side the serpentine skips.

    Leaving them open would create shelf-access vertices outside every
    component (design-rule 4 violation); filling them with obstacles keeps the
    floorplan faithful to "end caps" at the end of real shelf rows.
    """
    x0 = layout.slice_x0(slice_index)
    west_turn = x0
    east_turn = x0 + layout.shelf_columns + 1
    cells: List[Cell] = []
    for band in range(layout.shelf_bands):
        y_base = 2 + layout.extra_bottom_rows + band * layout.band_period
        # The serpentine turns on the east side after even-indexed runs and on
        # the west side after odd-indexed runs; the *other* side is blocked.
        blocked_x = west_turn if band % 2 == 0 else east_turn
        for depth_row in range(layout.shelf_depth):
            cells.append((blocked_x, y_base + depth_row))
        # With spaced-out shelves (sorting-center chutes) the gaps between
        # shelves would otherwise be open shelf-access cells outside every
        # component (a rule-4 violation); model them as part of the chute
        # installation, i.e. obstacles.
        if layout.shelf_spacing > 1:
            for depth_row in range(layout.shelf_depth):
                y = y_base + depth_row
                for column in range(layout.shelf_columns):
                    if column % layout.shelf_spacing != 0:
                        cells.append((x0 + 1 + column, y))
    return cells


def _slice_serpentine_cells(layout: FulfillmentLayout, slice_index: int) -> List[Cell]:
    """The boustrophedon path snaking bottom-up through the slice's aisle rows."""
    x0 = layout.slice_x0(slice_index)
    west_turn = x0
    east_turn = x0 + layout.shelf_columns + 1
    path: List[Cell] = []
    # Climb through any extra bottom rows first so the serpentine still starts
    # right above the station-row exit at (x0, 0).
    path.extend((west_turn, 1 + extra) for extra in range(layout.extra_bottom_rows))
    aisles = layout.aisle_rows
    for run, y in enumerate(aisles):
        if run % 2 == 0:
            xs = range(west_turn, east_turn + 1)
        else:
            xs = range(east_turn, west_turn - 1, -1)
        path.extend((x, y) for x in xs)
        if run < len(aisles) - 1:
            turn_x = east_turn if run % 2 == 0 else west_turn
            for y_turn in range(y + 1, y + layout.band_period):
                path.append((turn_x, y_turn))
    return path


def _station_cells(layout: FulfillmentLayout) -> List[Cell]:
    """Assign station cells to slices on the station row."""
    cells: List[Cell] = []
    used_per_slice: Dict[int, int] = {b: 0 for b in range(layout.num_slices)}

    def next_cell(slice_index: int) -> Cell:
        x0 = layout.slice_x0(slice_index)
        offset = used_per_slice[slice_index]
        if offset >= layout.slice_width - 2:
            raise WarehouseError("station cells do not fit on the station row")
        used_per_slice[slice_index] += 1
        return (x0 + 1 + offset, 0)

    total_cells = layout.num_stations * layout.station_cells
    if layout.spread_station_cells:
        for i in range(total_cells):
            cells.append(next_cell(i % layout.num_slices))
    else:
        for station in range(layout.num_stations):
            slice_index = station % layout.num_slices
            for _ in range(layout.station_cells):
                cells.append(next_cell(slice_index))
    return cells


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------

def generate_fulfillment_center(layout: FulfillmentLayout) -> DesignedWarehouse:
    """Generate a fulfillment-center warehouse and its traffic system."""
    layout.validate()

    shelf_cells: List[Cell] = []
    obstacle_cells: List[Cell] = []
    for slice_index in range(layout.num_slices):
        shelf_cells.extend(_slice_shelf_cells(layout, slice_index))
        obstacle_cells.extend(_slice_obstacle_cells(layout, slice_index))
    station_cells = _station_cells(layout)

    grid = build_grid(
        layout.width,
        layout.height,
        shelves=shelf_cells,
        stations=station_cells,
        obstacles=obstacle_cells,
        name=layout.name,
    )
    floorplan = FloorplanGraph.from_grid(grid)
    catalog = ProductCatalog.numbered(layout.num_products)
    stock = _stock_shelves(layout, floorplan, catalog, shelf_cells, grid)
    warehouse = Warehouse(floorplan=floorplan, catalog=catalog, stock=stock, name=layout.name)
    warehouse.validate()

    cell_paths, connections = _traffic_design(layout)
    traffic_system = build_traffic_system(
        warehouse, cell_paths, connections, name=f"{layout.name}-traffic"
    )
    return DesignedWarehouse(
        warehouse=warehouse,
        traffic_system=traffic_system,
        layout=layout,
        station_cells=tuple(station_cells),
        shelf_cells=tuple(shelf_cells),
    )


def _stock_shelves(
    layout: FulfillmentLayout,
    floorplan: FloorplanGraph,
    catalog: ProductCatalog,
    shelf_cells: Sequence[Cell],
    grid: GridMap,
) -> LocationMatrix:
    """Assign products to shelves round-robin and register stock at access cells.

    Each shelf cell's stock is registered at the aisle cell from which the
    serpentine accesses it (below the lower shelf row of a band, above the
    upper one), so pickups in the realization always happen on the agent's
    path.
    """
    stock = LocationMatrix(catalog, floorplan)
    rng = np.random.default_rng(layout.seed)
    shelf_list = list(shelf_cells)
    rng.shuffle(shelf_list)
    per_product = layout.resolved_stock_per_product()

    order = layout.product_order or tuple(range(1, catalog.num_products + 1))
    assignments: Dict[int, List[Cell]] = {k: [] for k in catalog.product_ids}
    for i, cell in enumerate(shelf_list):
        product = order[i % catalog.num_products]
        assignments[product].append(cell)

    for product, cells in assignments.items():
        if not cells:
            # More products than shelves: stock the overflow products at the
            # access cell of a shared shelf so every product remains orderable.
            cells = [shelf_list[product % len(shelf_list)]]
        base, remainder = divmod(per_product, len(cells))
        for i, cell in enumerate(cells):
            units = base + (1 if i < remainder else 0)
            access = _access_cell_for_shelf(layout, cell)
            if units > 0:
                stock.place(product, floorplan.vertex_at(access), units)
    return stock


def _access_cell_for_shelf(layout: FulfillmentLayout, shelf_cell: Cell) -> Cell:
    """The aisle cell from which a shelf is picked (below or above the shelf)."""
    x, y = shelf_cell
    offset_in_band = (y - 2 - layout.extra_bottom_rows) % layout.band_period
    if layout.shelf_depth == 1 or offset_in_band == 0:
        return (x, y - 1)  # lower shelf row: picked from the aisle below
    return (x, y + 1)  # upper shelf row: picked from the aisle above


def _traffic_design(
    layout: FulfillmentLayout,
) -> Tuple[List[Tuple[str, List[Cell]]], List[Tuple[str, str]]]:
    """Component cell paths and connections for the generated layout."""
    max_length = layout.resolved_max_component_length()
    paths: List[Tuple[str, List[Cell]]] = []
    connections: List[Tuple[str, str]] = []
    top_row = layout.top_row

    for b in range(layout.num_slices):
        x0 = layout.slice_x0(b)
        x_down = x0 + layout.slice_width - 1

        station_name = f"slice{b}/station"
        station_path = [(x, 0) for x in range(x_down, x0 - 1, -1)]
        paths.append((station_name, station_path))

        serpentine = _slice_serpentine_cells(layout, b)
        pieces = split_path(serpentine, max_length)
        piece_names = [f"slice{b}/serpentine/{i}" for i in range(len(pieces))]
        paths.extend(zip(piece_names, pieces))

        top_name = f"slice{b}/top"
        top_path = [(x, top_row) for x in range(x0, x_down + 1)]
        paths.append((top_name, top_path))

        down_name = f"slice{b}/down"
        down_path = [(x_down, y) for y in range(top_row - 1, 0, -1)]
        paths.append((down_name, down_path))

        # Intra-slice wiring.
        connections.append((station_name, piece_names[0]))
        connections.extend(zip(piece_names, piece_names[1:]))
        connections.append((piece_names[-1], top_name))
        connections.append((top_name, down_name))
        connections.append((down_name, station_name))

        # Inter-slice wiring: station row chains west, top row chains east.
        if b > 0:
            connections.append((station_name, f"slice{b - 1}/station"))
            connections.append((f"slice{b - 1}/top", top_name))

    return paths, connections


def scaled_down(layout: FulfillmentLayout, name: Optional[str] = None) -> FulfillmentLayout:
    """A small variant of a layout with the same structure (for tests/benches)."""
    return replace(
        layout,
        num_slices=max(1, layout.num_slices // 2),
        shelf_columns=max(2, layout.shelf_columns // 2),
        shelf_bands=3 if layout.shelf_bands > 3 else layout.shelf_bands,
        num_products=max(2, layout.num_products // 4),
        name=name or f"{layout.name}-small",
    )
