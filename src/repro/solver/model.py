"""Constraint model: a backend-independent container for ILP/LP problems.

A :class:`ConstraintModel` collects variables, linear constraints and an
optional linear objective, and can export itself as dense/sparse numpy arrays
for the solver backends (:mod:`repro.solver.scipy_backend`,
:mod:`repro.solver.branch_and_bound`).

The model is the meeting point between the contract layer and the solvers:
:func:`repro.core.flow_synthesis.build_flow_model` compiles the conjunction of
the traffic-system contract and the workload contract into one of these models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .expressions import (
    EQ,
    GE,
    LE,
    ExpressionError,
    LinearConstraint,
    LinearExpr,
    Variable,
)

#: Objective senses accepted by :meth:`ConstraintModel.set_objective`.
MINIMIZE = "min"
MAXIMIZE = "max"


class ModelError(ValueError):
    """Raised for structural problems in a :class:`ConstraintModel`."""


@dataclass
class StandardArrays:
    """Dense array form of a model, as consumed by the backends.

    The model ``minimize c @ x`` subject to ``A_ub @ x <= b_ub``,
    ``A_eq @ x == b_eq`` and ``bounds[i][0] <= x[i] <= bounds[i][1]``.
    ``integrality[i]`` is 1 for integer variables and 0 otherwise.
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: List[Tuple[Optional[float], Optional[float]]]
    integrality: np.ndarray
    variables: List[Variable]
    objective_offset: float = 0.0
    objective_sign: float = 1.0

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def assignment_from_vector(self, x: Sequence[float]) -> Dict[Variable, float]:
        """Map a solution vector back onto the model's variables."""
        return {var: float(value) for var, value in zip(self.variables, x)}

    def objective_value(self, x: Sequence[float]) -> float:
        """Original-sense objective value of a solution vector."""
        raw = float(np.dot(self.c, np.asarray(x, dtype=float))) + self.objective_offset
        return self.objective_sign * raw


class ConstraintModel:
    """A mixed-integer linear model built from :mod:`repro.solver.expressions`.

    Variables referenced by constraints but never added explicitly are
    registered automatically the first time they are seen; this lets callers
    (notably the contract layer) create variables stand-alone and only hand
    the constraints to the model.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._var_index: Dict[Variable, int] = {}
        self._names: Dict[str, Variable] = {}
        self._constraints: List[LinearConstraint] = []
        self._objective: LinearExpr = LinearExpr()
        self._objective_sense: str = MINIMIZE

    # -- variables ----------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: Optional[float] = 0,
        ub: Optional[float] = None,
        integer: bool = False,
    ) -> Variable:
        """Create, register and return a new variable.

        Raises :class:`ModelError` if a different variable with the same name
        already exists.
        """
        existing = self._names.get(name)
        if existing is not None:
            raise ModelError(f"variable name {name!r} already used in model {self.name!r}")
        var = Variable(name=name, lb=lb, ub=ub, integer=integer)
        self._register(var)
        return var

    def register(self, var: Variable) -> Variable:
        """Register an externally created variable (idempotent)."""
        return self._register(var)

    def _register(self, var: Variable) -> Variable:
        if var in self._var_index:
            return var
        clash = self._names.get(var.name)
        if clash is not None and clash != var:
            raise ModelError(
                f"two distinct variables named {var.name!r} in model {self.name!r}"
            )
        self._var_index[var] = len(self._variables)
        self._variables.append(var)
        self._names[var.name] = var
        return var

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self._variables)

    def variable_by_name(self, name: str) -> Variable:
        try:
            return self._names[name]
        except KeyError as exc:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from exc

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    # -- constraints --------------------------------------------------------
    def add_constraint(
        self, constraint: LinearConstraint, name: str = ""
    ) -> LinearConstraint:
        """Add a constraint, auto-registering any new variables it mentions."""
        if not isinstance(constraint, LinearConstraint):
            raise ModelError(
                "add_constraint expects a LinearConstraint; "
                "did a comparison fall back to a plain bool?"
            )
        if name:
            constraint = constraint.named(name)
        for var in constraint.variables():
            self._register(var)
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[LinearConstraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def constraints(self) -> Tuple[LinearConstraint, ...]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- objective ----------------------------------------------------------
    def set_objective(self, expr: LinearExpr, sense: str = MINIMIZE) -> None:
        """Set the (linear) objective.  ``sense`` is ``'min'`` or ``'max'``."""
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        expr = LinearExpr.from_operand(expr)
        for var in expr.variables():
            self._register(var)
        self._objective = expr
        self._objective_sense = sense

    @property
    def objective(self) -> LinearExpr:
        return self._objective

    @property
    def objective_sense(self) -> str:
        return self._objective_sense

    # -- validation & evaluation ---------------------------------------------
    def check_assignment(
        self, assignment: Mapping[Variable, float], tol: float = 1e-6
    ) -> List[LinearConstraint]:
        """Return the constraints violated by ``assignment`` (bounds included).

        Bound violations are reported as synthetic constraints so callers get a
        uniform list of offending restrictions.
        """
        violated: List[LinearConstraint] = []
        for var in self._variables:
            if var not in assignment:
                raise ExpressionError(f"assignment missing variable {var.name!r}")
            value = float(assignment[var])
            if var.lb is not None and value < var.lb - tol:
                violated.append((LinearExpr({var: 1.0}) >= var.lb).named(f"lb[{var.name}]"))
            if var.ub is not None and value > var.ub + tol:
                violated.append((LinearExpr({var: 1.0}) <= var.ub).named(f"ub[{var.name}]"))
            if var.integer and abs(value - round(value)) > tol:
                violated.append(
                    (LinearExpr({var: 1.0}) == round(value)).named(f"int[{var.name}]")
                )
        for constraint in self._constraints:
            if not constraint.is_satisfied(assignment, tol=tol):
                violated.append(constraint)
        return violated

    def objective_value(self, assignment: Mapping[Variable, float]) -> float:
        return self._objective.evaluate(assignment)

    # -- export -------------------------------------------------------------
    def to_standard_arrays(self) -> StandardArrays:
        """Export the model to the dense array form used by the backends.

        The export always produces a *minimization*: for ``'max'`` objectives
        the cost vector is negated and :attr:`StandardArrays.objective_sign`
        records the flip so results can be reported in the original sense.
        """
        variables = list(self._variables)
        index = {var: i for i, var in enumerate(variables)}
        n = len(variables)

        sign = 1.0 if self._objective_sense == MINIMIZE else -1.0
        c = np.zeros(n, dtype=float)
        for var, coeff in self._objective.coeffs.items():
            c[index[var]] = sign * coeff
        offset = sign * self._objective.constant

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(n, dtype=float)
            for var, coeff in constraint.expr.coeffs.items():
                row[index[var]] = coeff
            rhs = -constraint.expr.constant
            if constraint.sense == LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif constraint.sense == GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            elif constraint.sense == EQ:
                eq_rows.append(row)
                eq_rhs.append(rhs)
            else:  # pragma: no cover - guarded by LinearConstraint
                raise ModelError(f"unknown sense {constraint.sense!r}")

        a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.asarray(ub_rhs, dtype=float)
        a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.asarray(eq_rhs, dtype=float)

        bounds = [(None if v.lb is None else float(v.lb),
                   None if v.ub is None else float(v.ub)) for v in variables]
        integrality = np.array([1 if v.integer else 0 for v in variables], dtype=int)

        return StandardArrays(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            integrality=integrality,
            variables=variables,
            objective_offset=offset,
            objective_sign=sign,
        )

    def relaxed(self) -> "ConstraintModel":
        """A copy of this model with every integrality requirement dropped."""
        relaxed = ConstraintModel(name=f"{self.name}-lp-relaxation")
        substitution: Dict[Variable, Variable] = {}
        for var in self._variables:
            substitution[var] = relaxed.add_var(var.name, lb=var.lb, ub=var.ub, integer=False)

        def substitute(expr: LinearExpr) -> LinearExpr:
            return LinearExpr(
                {substitution[v]: c for v, c in expr.coeffs.items()}, expr.constant
            )

        for constraint in self._constraints:
            relaxed.add_constraint(
                LinearConstraint(substitute(constraint.expr), constraint.sense, constraint.name)
            )
        relaxed.set_objective(substitute(self._objective), self._objective_sense)
        return relaxed

    def summary(self) -> str:
        """One-line structural summary (used by logs and examples)."""
        n_int = sum(1 for v in self._variables if v.integer)
        return (
            f"model {self.name!r}: {self.num_variables} vars "
            f"({n_int} integer), {self.num_constraints} constraints"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintModel({self.summary()})"
