"""Solve status and result types shared by every solver backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .expressions import Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``OPTIMAL``     — an optimal (or, for feasibility problems, feasible) solution
                      was found and proven.
    ``FEASIBLE``    — a feasible solution was found but optimality was not proven
                      (e.g. node/time limit hit with an incumbent).
    ``INFEASIBLE``  — the model was proven infeasible.
    ``UNBOUNDED``   — the objective is unbounded below.
    ``LIMIT``       — a node/iteration/time limit was hit with no incumbent.
    ``ERROR``       — the backend failed for another reason.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """True when :attr:`SolveResult.values` carries a usable assignment."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Result of solving a :class:`~repro.solver.model.ConstraintModel`.

    Attributes
    ----------
    status:
        Outcome classification.
    objective:
        Objective value of the returned assignment (``None`` when no solution).
    values:
        Mapping from :class:`Variable` to its value in the returned assignment.
    stats:
        Backend-specific counters (simplex iterations, branch-and-bound nodes,
        wall-clock seconds, ...).  Keys are plain strings.
    message:
        Optional human-readable diagnostic from the backend.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    message: str = ""

    @property
    def is_feasible(self) -> bool:
        return self.status.has_solution

    def value(self, var: Variable, default: Optional[float] = None) -> Optional[float]:
        """Value of ``var`` in the solution (``default`` when absent)."""
        return self.values.get(var, default)

    def int_value(self, var: Variable, default: int = 0) -> int:
        """Value of ``var`` rounded to the nearest integer."""
        raw = self.values.get(var)
        if raw is None:
            return default
        return int(round(raw))

    def as_named_dict(self) -> Dict[str, float]:
        """Solution keyed by variable name (handy for serialization/tests)."""
        return {var.name: value for var, value in self.values.items()}

    @staticmethod
    def infeasible(message: str = "") -> "SolveResult":
        return SolveResult(status=SolveStatus.INFEASIBLE, message=message)

    @staticmethod
    def error(message: str) -> "SolveResult":
        return SolveResult(status=SolveStatus.ERROR, message=message)

    @staticmethod
    def from_assignment(
        assignment: Mapping[Variable, float],
        objective: Optional[float],
        status: SolveStatus = SolveStatus.OPTIMAL,
        **stats: float,
    ) -> "SolveResult":
        return SolveResult(
            status=status,
            objective=objective,
            values=dict(assignment),
            stats=dict(stats),
        )
