"""Pure-Python branch-and-bound MILP solver.

This backend exists for two reasons:

* **Self-containment / ablation.**  The paper solves its flow-synthesis
  constraints with Z3; we reduce them to an ILP.  The primary backend is
  HiGHS (via :mod:`scipy.optimize.milp`), but a from-scratch branch-and-bound
  over an LP relaxation lets the benchmark suite quantify how much of the
  methodology's speed comes from the model formulation vs. the solver engine
  (experiment E10 in DESIGN.md).
* **Determinism in unit tests.**  The search order is fully deterministic,
  which makes small solver tests reproducible bit-for-bit.

The LP relaxations are solved either with the internal tableau simplex
(:mod:`repro.solver.simplex`) or with :func:`scipy.optimize.linprog`
(default, much faster).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .model import ConstraintModel, StandardArrays
from .result import SolveResult, SolveStatus
from . import simplex as _simplex

try:  # scipy is a hard dependency of the package, but keep the import local.
    from scipy.optimize import linprog as _scipy_linprog
except Exception:  # pragma: no cover - scipy is always present in this repo
    _scipy_linprog = None

_INT_TOL = 1e-6


@dataclass
class BnBOptions:
    """Knobs for the branch-and-bound search."""

    max_nodes: int = 20_000
    time_limit: Optional[float] = None
    lp_engine: str = "scipy"  # "scipy" or "simplex"
    absolute_gap: float = 1e-6
    #: Stop at the first integral solution; appropriate for pure feasibility
    #: problems such as the paper's flow synthesis with no objective.
    first_solution: bool = False


@dataclass
class _Node:
    """A subproblem: extra bounds layered on top of the root relaxation."""

    extra_lb: Tuple[Tuple[int, float], ...]
    extra_ub: Tuple[Tuple[int, float], ...]
    depth: int
    parent_bound: float


def _solve_relaxation(
    arrays: StandardArrays,
    node: _Node,
    engine: str,
) -> Tuple[str, Optional[np.ndarray], Optional[float]]:
    """Solve the LP relaxation of a node; returns (status, x, objective)."""
    bounds = [list(b) for b in arrays.bounds]
    for idx, lb in node.extra_lb:
        bounds[idx][0] = lb if bounds[idx][0] is None else max(bounds[idx][0], lb)
    for idx, ub in node.extra_ub:
        bounds[idx][1] = ub if bounds[idx][1] is None else min(bounds[idx][1], ub)
    for lo, hi in bounds:
        if lo is not None and hi is not None and lo > hi:
            return "infeasible", None, None
    bounds_t = [(lo, hi) for lo, hi in bounds]

    if engine == "simplex" or _scipy_linprog is None:
        sol = _simplex.solve_lp(
            arrays.c, arrays.a_ub, arrays.b_ub, arrays.a_eq, arrays.b_eq, bounds_t
        )
        return sol.status, sol.x, sol.objective

    res = _scipy_linprog(
        arrays.c,
        A_ub=arrays.a_ub if arrays.a_ub.size else None,
        b_ub=arrays.b_ub if arrays.b_ub.size else None,
        A_eq=arrays.a_eq if arrays.a_eq.size else None,
        b_eq=arrays.b_eq if arrays.b_eq.size else None,
        bounds=bounds_t,
        method="highs",
    )
    if res.status == 0:
        return "optimal", np.asarray(res.x), float(res.fun)
    if res.status == 2:
        return "infeasible", None, None
    if res.status == 3:
        return "unbounded", None, None
    return "error", None, None


def _most_fractional(x: np.ndarray, integrality: np.ndarray) -> Optional[int]:
    """Index of the integer variable whose value is farthest from integral."""
    best_idx: Optional[int] = None
    best_frac = _INT_TOL
    for idx in np.nonzero(integrality)[0]:
        value = x[idx]
        frac = abs(value - round(value))
        if frac > best_frac:
            dist_to_half = abs(frac - 0.5)
            if best_idx is None or dist_to_half < abs(
                abs(x[best_idx] - round(x[best_idx])) - 0.5
            ):
                best_idx = int(idx)
                best_frac = max(best_frac, _INT_TOL)
    return best_idx


def solve_branch_and_bound(
    model: ConstraintModel, options: Optional[BnBOptions] = None
) -> SolveResult:
    """Solve ``model`` with LP-relaxation branch-and-bound.

    Returns a :class:`~repro.solver.result.SolveResult` whose ``stats`` carry
    the number of explored nodes (``nodes``) and the wall-clock time
    (``seconds``).
    """
    options = options or BnBOptions()
    if model.num_variables == 0:
        # Degenerate constant model; delegate to the shared trivial handler.
        from .scipy_backend import _trivial_result

        trivial = _trivial_result(model)
        assert trivial is not None
        return trivial
    arrays = model.to_standard_arrays()
    start = time.perf_counter()

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    nodes_explored = 0
    status = SolveStatus.INFEASIBLE
    message = ""

    # Depth-first stack (LIFO) keeps memory small and finds feasible points
    # quickly, which suits the feasibility-flavoured flow models.
    stack: List[_Node] = [_Node(extra_lb=(), extra_ub=(), depth=0, parent_bound=-math.inf)]

    while stack:
        if nodes_explored >= options.max_nodes:
            message = f"node limit {options.max_nodes} reached"
            break
        if (
            options.time_limit is not None
            and time.perf_counter() - start > options.time_limit
        ):
            message = f"time limit {options.time_limit}s reached"
            break

        node = stack.pop()
        nodes_explored += 1

        if node.parent_bound >= incumbent_obj - options.absolute_gap:
            continue  # cannot improve on the incumbent

        lp_status, x, objective = _solve_relaxation(arrays, node, options.lp_engine)
        if lp_status == "infeasible":
            continue
        if lp_status == "unbounded":
            # An unbounded relaxation at the root means the MILP is unbounded
            # or infeasible; report unbounded and let the caller decide.
            if node.depth == 0:
                return SolveResult(
                    status=SolveStatus.UNBOUNDED,
                    stats={"nodes": nodes_explored,
                           "seconds": time.perf_counter() - start},
                )
            continue
        if lp_status == "error" or x is None or objective is None:
            return SolveResult.error("LP relaxation failed inside branch-and-bound")

        if objective >= incumbent_obj - options.absolute_gap:
            continue

        branch_idx = _most_fractional(x, arrays.integrality)
        if branch_idx is None:
            # Integral solution (within tolerance): new incumbent.
            rounded = x.copy()
            int_idx = np.nonzero(arrays.integrality)[0]
            rounded[int_idx] = np.round(rounded[int_idx])
            incumbent_x = rounded
            incumbent_obj = objective
            if options.first_solution:
                status = SolveStatus.FEASIBLE
                message = "stopped at first integral solution"
                break
            continue

        value = x[branch_idx]
        floor_val = math.floor(value + _INT_TOL)
        ceil_val = floor_val + 1
        # Explore the "floor" child last so it is popped first (DFS dives
        # toward rounding down, which respects capacity-style constraints).
        stack.append(
            _Node(
                extra_lb=node.extra_lb + ((branch_idx, float(ceil_val)),),
                extra_ub=node.extra_ub,
                depth=node.depth + 1,
                parent_bound=objective,
            )
        )
        stack.append(
            _Node(
                extra_lb=node.extra_lb,
                extra_ub=node.extra_ub + ((branch_idx, float(floor_val)),),
                depth=node.depth + 1,
                parent_bound=objective,
            )
        )

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        if message:
            return SolveResult(
                status=SolveStatus.LIMIT,
                message=message,
                stats={"nodes": nodes_explored, "seconds": elapsed},
            )
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            message="branch-and-bound exhausted the tree without a solution",
            stats={"nodes": nodes_explored, "seconds": elapsed},
        )

    if not message and not stack:
        status = SolveStatus.OPTIMAL
    elif status is not SolveStatus.FEASIBLE:
        status = SolveStatus.FEASIBLE

    assignment = arrays.assignment_from_vector(incumbent_x)
    return SolveResult(
        status=status,
        objective=arrays.objective_value(incumbent_x),
        values=assignment,
        stats={"nodes": float(nodes_explored), "seconds": elapsed},
        message=message,
    )
