"""HiGHS-backed solver (via :mod:`scipy.optimize`) — the default MILP/LP engine.

The paper solves its flow-synthesis constraints with Z3 over linear real
arithmetic; we formulate them as a mixed-integer linear program and hand them
to HiGHS, which is the fastest engine available offline.  Sparse constraint
matrices are used so the paper-scale instances (tens of thousands of flow
variables on the Fulfillment-2 map) stay well within laptop memory.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint as SciLinearConstraint
from scipy.optimize import linprog, milp

from .expressions import EQ, GE, LE
from .model import ConstraintModel
from .result import SolveResult, SolveStatus

_INF = float("inf")


def _build_sparse(model: ConstraintModel):
    """Build sparse constraint matrices directly from the model.

    Returns (c, constraint_matrix, lower, upper, bounds, integrality, variables,
    objective_sign, objective_offset).  Both inequality senses and equalities
    are encoded as two-sided row bounds, which is the native HiGHS form.
    """
    variables = list(model.variables)
    index = {var: i for i, var in enumerate(variables)}
    n = len(variables)

    sign = 1.0 if model.objective_sense == "min" else -1.0
    c = np.zeros(n)
    for var, coeff in model.objective.coeffs.items():
        c[index[var]] = sign * coeff
    offset = sign * model.objective.constant

    rows, cols, data = [], [], []
    lower, upper = [], []
    for r, constraint in enumerate(model.constraints):
        for var, coeff in constraint.expr.coeffs.items():
            rows.append(r)
            cols.append(index[var])
            data.append(coeff)
        rhs = -constraint.expr.constant
        if constraint.sense == LE:
            lower.append(-_INF)
            upper.append(rhs)
        elif constraint.sense == GE:
            lower.append(rhs)
            upper.append(_INF)
        elif constraint.sense == EQ:
            lower.append(rhs)
            upper.append(rhs)
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(model.num_constraints, n)
    )

    lb = np.array([-_INF if v.lb is None else float(v.lb) for v in variables])
    ub = np.array([_INF if v.ub is None else float(v.ub) for v in variables])
    integrality = np.array([1 if v.integer else 0 for v in variables])
    return (
        c,
        matrix,
        np.asarray(lower),
        np.asarray(upper),
        (lb, ub),
        integrality,
        variables,
        sign,
        offset,
    )


def _trivial_result(model: ConstraintModel) -> Optional[SolveResult]:
    """Handle the degenerate zero-variable model without calling HiGHS.

    Contract-algebra queries occasionally produce models with no variables at
    all (e.g. checking compatibility of a contract with no assumptions); such a
    model is satisfiable iff every (constant) constraint holds.
    """
    if model.num_variables > 0:
        return None
    for constraint in model.constraints:
        if not constraint.is_satisfied({}):
            return SolveResult(
                status=SolveStatus.INFEASIBLE,
                message=f"constant constraint violated: {constraint!r}",
            )
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=model.objective.constant
        * (1.0 if model.objective_sense == "min" else 1.0),
        values={},
    )


def solve_with_scipy(
    model: ConstraintModel,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
) -> SolveResult:
    """Solve ``model`` with HiGHS.

    Uses :func:`scipy.optimize.milp` when the model has integer variables and
    :func:`scipy.optimize.linprog` otherwise.  ``time_limit`` is in seconds.
    """
    trivial = _trivial_result(model)
    if trivial is not None:
        return trivial

    (
        c,
        matrix,
        row_lb,
        row_ub,
        (lb, ub),
        integrality,
        variables,
        sign,
        offset,
    ) = _build_sparse(model)
    start = time.perf_counter()

    has_integers = bool(integrality.any())
    if has_integers:
        constraints = (
            SciLinearConstraint(matrix, row_lb, row_ub)
            if model.num_constraints
            else ()
        )
        options = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)
        res = milp(
            c=c,
            constraints=constraints,
            bounds=Bounds(lb, ub),
            integrality=integrality,
            options=options or None,
        )
        elapsed = time.perf_counter() - start
        if res.status == 0 and res.x is not None:
            x = np.asarray(res.x)
            int_idx = np.nonzero(integrality)[0]
            x[int_idx] = np.round(x[int_idx])
            values = {var: float(v) for var, v in zip(variables, x)}
            objective = sign * (float(c @ x) + offset)
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=objective,
                values=values,
                stats={"seconds": elapsed},
                message=str(res.message),
            )
        if res.status == 2:
            return SolveResult(
                status=SolveStatus.INFEASIBLE,
                stats={"seconds": elapsed},
                message=str(res.message),
            )
        if res.status == 3:
            return SolveResult(
                status=SolveStatus.UNBOUNDED,
                stats={"seconds": elapsed},
                message=str(res.message),
            )
        if res.status == 1 and res.x is not None:
            # Iteration/time limit with an incumbent.
            values = {var: float(v) for var, v in zip(variables, np.asarray(res.x))}
            return SolveResult(
                status=SolveStatus.FEASIBLE,
                objective=sign * (float(c @ res.x) + offset),
                values=values,
                stats={"seconds": elapsed},
                message=str(res.message),
            )
        return SolveResult(
            status=SolveStatus.LIMIT if res.status == 1 else SolveStatus.ERROR,
            stats={"seconds": elapsed},
            message=str(res.message),
        )

    # Pure LP path.
    a_ub_rows = []
    b_ub_vals = []
    a_eq_rows = []
    b_eq_vals = []
    dense = matrix.toarray() if model.num_constraints else np.zeros((0, len(variables)))
    for r in range(dense.shape[0]):
        lo, hi = row_lb[r], row_ub[r]
        if lo == hi:
            a_eq_rows.append(dense[r])
            b_eq_vals.append(lo)
        else:
            if hi != _INF:
                a_ub_rows.append(dense[r])
                b_ub_vals.append(hi)
            if lo != -_INF:
                a_ub_rows.append(-dense[r])
                b_ub_vals.append(-lo)
    res = linprog(
        c,
        A_ub=np.vstack(a_ub_rows) if a_ub_rows else None,
        b_ub=np.asarray(b_ub_vals) if b_ub_vals else None,
        A_eq=np.vstack(a_eq_rows) if a_eq_rows else None,
        b_eq=np.asarray(b_eq_vals) if b_eq_vals else None,
        bounds=list(zip(lb, ub)),
        method="highs",
    )
    elapsed = time.perf_counter() - start
    if res.status == 0:
        values = {var: float(v) for var, v in zip(variables, res.x)}
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=sign * (float(res.fun) + offset),
            values=values,
            stats={"seconds": elapsed},
        )
    if res.status == 2:
        return SolveResult(status=SolveStatus.INFEASIBLE, stats={"seconds": elapsed})
    if res.status == 3:
        return SolveResult(status=SolveStatus.UNBOUNDED, stats={"seconds": elapsed})
    return SolveResult(status=SolveStatus.ERROR, stats={"seconds": elapsed},
                       message=str(res.message))
