"""A dense two-phase tableau simplex LP solver (pure numpy).

This is the self-contained fallback LP engine used by the pure-Python
branch-and-bound backend (:mod:`repro.solver.branch_and_bound`) and by the
contract algebra when scipy is not wanted (e.g. for deterministic unit tests
of the algebra itself).  It is **not** meant to compete with HiGHS — the
problems it is pointed at (contract refinement queries, small flow models,
ablation studies) have at most a few hundred variables.

The solver accepts the general form

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lb <= x <= ub   (entries may be None / infinite)

and internally converts it to standard form (equalities over non-negative
variables) before running a two-phase tableau simplex with Bland's rule,
which guarantees termination (no cycling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

_TOL = 1e-9


@dataclass
class LPSolution:
    """Raw LP outcome returned by :func:`solve_lp`.

    ``status`` is one of ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    ``x`` is the primal solution in the *original* variable space (present only
    for ``"optimal"``).
    """

    status: str
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0
    message: str = ""
    stats: dict = field(default_factory=dict)


class _StandardForm:
    """Conversion of a general LP into ``min c.x  s.t.  A x = b, x >= 0``.

    Keeps enough bookkeeping to map a standard-form solution back to the
    original variables.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        bounds: Sequence[Tuple[Optional[float], Optional[float]]],
    ) -> None:
        n_orig = len(c)
        # Each original variable maps to one of:
        #   ("shifted", col, lb)            x = lb + y            (y >= 0)
        #   ("mirrored", col, ub)           x = ub - y            (y >= 0)
        #   ("free", col_pos, col_neg)      x = y+ - y-           (y± >= 0)
        self.mapping: List[Tuple] = []
        columns = 0
        extra_ub_rows: List[Tuple[int, float]] = []  # (std column, upper bound on y)

        for j in range(n_orig):
            lb, ub = bounds[j]
            lb = None if lb is not None and np.isneginf(lb) else lb
            ub = None if ub is not None and np.isposinf(ub) else ub
            if lb is not None:
                self.mapping.append(("shifted", columns, float(lb)))
                if ub is not None:
                    extra_ub_rows.append((columns, float(ub) - float(lb)))
                columns += 1
            elif ub is not None:
                self.mapping.append(("mirrored", columns, float(ub)))
                columns += 1
            else:
                self.mapping.append(("free", columns, columns + 1))
                columns += 2

        def expand_row(row: np.ndarray) -> Tuple[np.ndarray, float]:
            """Rewrite a row over original variables into standard columns.

            Returns the expanded row and the constant shift to subtract from
            the right-hand side.
            """
            out = np.zeros(columns, dtype=float)
            shift = 0.0
            for j, coeff in enumerate(row):
                if coeff == 0.0:
                    continue
                kind = self.mapping[j]
                if kind[0] == "shifted":
                    out[kind[1]] += coeff
                    shift += coeff * kind[2]
                elif kind[0] == "mirrored":
                    out[kind[1]] -= coeff
                    shift += coeff * kind[2]
                else:
                    out[kind[1]] += coeff
                    out[kind[2]] -= coeff
            return out, shift

        # Objective.
        self.c_std = np.zeros(columns, dtype=float)
        self.obj_shift = 0.0
        obj_row, obj_shift = expand_row(np.asarray(c, dtype=float))
        self.c_std = obj_row
        self.obj_shift = obj_shift

        # Constraints: inequalities (including bound-induced ones) get slacks.
        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        for i in range(a_ub.shape[0]):
            row, shift = expand_row(a_ub[i])
            ub_rows.append(row)
            ub_rhs.append(float(b_ub[i]) - shift)
        for col, cap in extra_ub_rows:
            row = np.zeros(columns, dtype=float)
            row[col] = 1.0
            ub_rows.append(row)
            ub_rhs.append(cap)

        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for i in range(a_eq.shape[0]):
            row, shift = expand_row(a_eq[i])
            eq_rows.append(row)
            eq_rhs.append(float(b_eq[i]) - shift)

        n_slack = len(ub_rows)
        total_cols = columns + n_slack
        rows: List[np.ndarray] = []
        rhs: List[float] = []
        for k, (row, b) in enumerate(zip(ub_rows, ub_rhs)):
            full = np.zeros(total_cols, dtype=float)
            full[:columns] = row
            full[columns + k] = 1.0
            rows.append(full)
            rhs.append(b)
        for row, b in zip(eq_rows, eq_rhs):
            full = np.zeros(total_cols, dtype=float)
            full[:columns] = row
            rows.append(full)
            rhs.append(b)

        self.a = np.vstack(rows) if rows else np.zeros((0, total_cols))
        self.b = np.asarray(rhs, dtype=float)
        self.n_structural = columns
        self.n_total = total_cols
        c_full = np.zeros(total_cols, dtype=float)
        c_full[:columns] = self.c_std
        self.c = c_full

        # Normalize to b >= 0 for phase 1.
        for i in range(self.a.shape[0]):
            if self.b[i] < 0:
                self.a[i] = -self.a[i]
                self.b[i] = -self.b[i]

    def recover(self, x_std: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to the original variables."""
        out = np.zeros(len(self.mapping), dtype=float)
        for j, kind in enumerate(self.mapping):
            if kind[0] == "shifted":
                out[j] = kind[2] + x_std[kind[1]]
            elif kind[0] == "mirrored":
                out[j] = kind[2] - x_std[kind[1]]
            else:
                out[j] = x_std[kind[1]] - x_std[kind[2]]
        return out


def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col) and update the basis in place."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _simplex_core(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: List[int],
    max_iter: int,
) -> Tuple[str, np.ndarray, List[int], int]:
    """Run the simplex method from a basic feasible solution.

    Returns (status, tableau, basis, iterations) where the tableau's last
    column holds the basic variable values and its last row the reduced costs.
    """
    m, n = a.shape
    tableau = np.zeros((m + 1, n + 1), dtype=float)
    tableau[:m, :n] = a
    tableau[:m, n] = b
    tableau[m, :n] = c
    # Price out the basic columns so the bottom row holds reduced costs.
    for i, col in enumerate(basis):
        if abs(tableau[m, col]) > _TOL:
            tableau[m] -= tableau[m, col] * tableau[i]

    iterations = 0
    while iterations < max_iter:
        reduced = tableau[m, :n]
        # Bland's rule: entering variable = smallest index with negative cost.
        entering = -1
        for j in range(n):
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return "optimal", tableau, basis, iterations

        # Ratio test, Bland tie-break on the leaving basic variable index.
        leaving = -1
        best_ratio = np.inf
        for i in range(m):
            coeff = tableau[i, entering]
            if coeff > _TOL:
                ratio = tableau[i, n] / coeff
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded", tableau, basis, iterations

        _pivot(tableau, basis, leaving, entering)
        iterations += 1

    return "iteration_limit", tableau, basis, iterations


def solve_lp(
    c: Sequence[float],
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
    max_iter: int = 50_000,
) -> LPSolution:
    """Solve a general-form LP with the two-phase tableau simplex.

    Parameters mirror :func:`scipy.optimize.linprog`; ``bounds`` defaults to
    ``(0, None)`` for every variable.
    """
    c = np.asarray(c, dtype=float)
    n = len(c)
    a_ub = np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    a_eq = np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    if bounds is None:
        bounds = [(0.0, None)] * n
    if a_ub.shape[1] != n or a_eq.shape[1] != n or len(bounds) != n:
        raise ValueError("inconsistent LP dimensions")

    form = _StandardForm(c, a_ub, b_ub, a_eq, b_eq, bounds)
    a, b = form.a, form.b
    m, total = a.shape

    if m == 0:
        # Only bounds: the minimum of each cost coefficient's sign at its bound.
        x = np.zeros(total)
        if np.any(form.c < -_TOL):
            return LPSolution(status="unbounded", message="no constraints, negative cost")
        x_orig = form.recover(x)
        return LPSolution(status="optimal", x=x_orig, objective=float(c @ x_orig))

    # Phase 1: artificial variables on every row.
    a1 = np.hstack([a, np.eye(m)])
    c1 = np.concatenate([np.zeros(total), np.ones(m)])
    basis = list(range(total, total + m))
    status, tableau, basis, it1 = _simplex_core(a1, b, c1, basis, max_iter)
    if status == "iteration_limit":
        return LPSolution(status="infeasible", iterations=it1,
                          message="phase-1 iteration limit reached")
    phase1_obj = tableau[m, -1]
    if -phase1_obj > 1e-7 * max(1.0, np.abs(b).max() if m else 1.0):
        # Reduced-cost row stores -(objective); positive sum of artificials
        # means no feasible point exists.
        return LPSolution(status="infeasible", iterations=it1,
                          message="phase-1 optimum is positive")

    # Drive any artificial variables out of the basis when possible.
    a_work = tableau[:m, : total + m].copy()
    b_work = tableau[:m, -1].copy()
    for i in range(m):
        if basis[i] >= total:
            pivot_col = -1
            for j in range(total):
                if abs(a_work[i, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                temp = np.zeros((m + 1, total + m + 1))
                temp[:m, : total + m] = a_work
                temp[:m, -1] = b_work
                _pivot(temp, basis, i, pivot_col)
                a_work = temp[:m, : total + m]
                b_work = temp[:m, -1]
            # Otherwise the row is redundant (all-zero over structural
            # columns); the artificial stays basic at value ~0, harmless.

    # Phase 2 on the structural columns only (artificial columns removed by
    # forbidding them: give them a prohibitive cost of +inf is not possible in
    # a tableau, so instead keep them but with zero rows — simplest correct
    # approach is to keep the columns and assign them a huge cost).
    big = 1e9 * (np.abs(form.c).max() + 1.0)
    c2 = np.concatenate([form.c, np.full(m, big)])
    status, tableau, basis, it2 = _simplex_core(a_work, b_work, c2, basis, max_iter)
    iterations = it1 + it2
    if status == "unbounded":
        return LPSolution(status="unbounded", iterations=iterations)
    if status == "iteration_limit":
        return LPSolution(status="infeasible", iterations=iterations,
                          message="phase-2 iteration limit reached")

    x_std = np.zeros(total + m)
    for i, col in enumerate(basis):
        x_std[col] = tableau[i, -1]
    if np.any(x_std[total:] > 1e-6):
        return LPSolution(status="infeasible", iterations=iterations,
                          message="artificial variable remained positive")
    x_orig = form.recover(x_std[:total])
    objective = float(c @ x_orig)
    return LPSolution(status="optimal", x=x_orig, objective=objective,
                      iterations=iterations)
