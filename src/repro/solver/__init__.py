"""ILP / LP constraint-solving substrate.

The paper discharges its contract conjunction with the Z3 SMT solver; since
every assumption and guarantee in the methodology is a linear (in)equality
over bounded non-negative integer flows, the problem is exactly a
mixed-integer linear feasibility/optimization problem.  This package provides:

* :mod:`repro.solver.expressions` — variables, affine expressions, constraints;
* :mod:`repro.solver.model` — the backend-independent :class:`ConstraintModel`;
* :mod:`repro.solver.scipy_backend` — HiGHS (default engine);
* :mod:`repro.solver.branch_and_bound` — self-contained branch-and-bound;
* :mod:`repro.solver.simplex` — dense two-phase simplex used by the above and
  by the contract algebra's entailment checks.

The convenience entry point is :func:`solve_model`.
"""

from __future__ import annotations

from typing import Optional

from .branch_and_bound import BnBOptions, solve_branch_and_bound
from .expressions import (
    EQ,
    GE,
    LE,
    ExpressionError,
    LinearConstraint,
    LinearExpr,
    Variable,
    variables_of,
)
from .model import MAXIMIZE, MINIMIZE, ConstraintModel, ModelError, StandardArrays
from .result import SolveResult, SolveStatus
from .scipy_backend import solve_with_scipy
from .simplex import LPSolution, solve_lp

#: Recognised backend names for :func:`solve_model`.
BACKENDS = ("auto", "highs", "bnb", "simplex-bnb")


def solve_model(
    model: ConstraintModel,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    **options,
) -> SolveResult:
    """Solve a :class:`ConstraintModel` with the requested backend.

    Parameters
    ----------
    model:
        The model to solve.
    backend:
        ``"highs"`` — HiGHS via scipy (default for ``"auto"``);
        ``"bnb"`` — pure-Python branch-and-bound with scipy LP relaxations;
        ``"simplex-bnb"`` — branch-and-bound with the internal tableau simplex
        (fully self-contained, slowest; used for ablations and tiny models).
    time_limit:
        Wall-clock limit in seconds (supported by every backend).
    options:
        Backend-specific keyword options (e.g. ``max_nodes`` or
        ``first_solution`` for the branch-and-bound backends,
        ``mip_rel_gap`` for HiGHS).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend in ("auto", "highs"):
        return solve_with_scipy(model, time_limit=time_limit,
                                mip_rel_gap=options.get("mip_rel_gap"))
    engine = "scipy" if backend == "bnb" else "simplex"
    bnb_options = BnBOptions(
        max_nodes=int(options.get("max_nodes", 20_000)),
        time_limit=time_limit,
        lp_engine=engine,
        first_solution=bool(options.get("first_solution", False)),
    )
    return solve_branch_and_bound(model, bnb_options)


__all__ = [
    "BACKENDS",
    "BnBOptions",
    "ConstraintModel",
    "EQ",
    "ExpressionError",
    "GE",
    "LE",
    "LPSolution",
    "LinearConstraint",
    "LinearExpr",
    "MAXIMIZE",
    "MINIMIZE",
    "ModelError",
    "SolveResult",
    "SolveStatus",
    "StandardArrays",
    "Variable",
    "solve_branch_and_bound",
    "solve_lp",
    "solve_model",
    "solve_with_scipy",
    "variables_of",
]
