"""Linear expression layer shared by the constraint model and the contract algebra.

The co-design methodology only ever needs *linear arithmetic over bounded integer
(or real) variables*:  agent flows, pickup/drop-off rates and their conservation
relations are all linear.  This module provides a small, explicit AST for that
fragment:

* :class:`Variable` — a named decision variable with bounds and an integrality flag.
* :class:`LinearExpr` — an affine combination ``sum(coeff_i * var_i) + constant``.
* :class:`LinearConstraint` — ``expr <sense> 0`` with ``sense`` one of ``<=``,
  ``>=`` or ``==`` (the right-hand side is folded into the expression constant).

Expressions support the natural Python operators so model-building code reads
like the maths in the paper::

    f_in = model.add_var("f_in", lb=0, ub=10, integer=True)
    f_out = model.add_var("f_out", lb=0, ub=10, integer=True)
    model.add_constraint(f_in - f_out == 0, name="conservation")

The classes are deliberately simple (dict-of-coefficients) rather than clever;
problems in this repository have at most a few tens of thousands of variables
and sparse constraints, which this representation handles comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Sense tokens used by :class:`LinearConstraint`.
LE = "<="
GE = ">="
EQ = "=="

_VALID_SENSES = (LE, GE, EQ)


class ExpressionError(ValueError):
    """Raised when an expression or constraint is built from invalid operands."""


@dataclass(frozen=True)
class Variable:
    """A named decision variable.

    Parameters
    ----------
    name:
        Unique name within a model (models enforce uniqueness; stand-alone
        variables used by the contract layer only need to be distinct objects
        or distinct names).
    lb, ub:
        Lower / upper bounds.  ``None`` means unbounded in that direction.
    integer:
        Whether the variable is integer-valued.
    """

    name: str
    lb: Optional[Number] = 0
    ub: Optional[Number] = None
    integer: bool = False

    def __post_init__(self) -> None:
        if self.lb is not None and self.ub is not None and self.lb > self.ub:
            raise ExpressionError(
                f"variable {self.name!r} has empty domain [{self.lb}, {self.ub}]"
            )

    # -- arithmetic ---------------------------------------------------------
    def _as_expr(self) -> "LinearExpr":
        return LinearExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinearExpr":
        return self._as_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinearExpr":
        return self._as_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinearExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinearExpr":
        return (-1.0 * self._as_expr()) + other

    def __mul__(self, other: Number) -> "LinearExpr":
        return self._as_expr() * other

    def __rmul__(self, other: Number) -> "LinearExpr":
        return self._as_expr() * other

    def __neg__(self) -> "LinearExpr":
        return self._as_expr() * -1.0

    # -- comparisons --------------------------------------------------------
    def __le__(self, other: "ExprLike") -> "LinearConstraint":
        return self._as_expr() <= other

    def __ge__(self, other: "ExprLike") -> "LinearConstraint":
        return self._as_expr() >= other

    # NOTE: ``==`` on a Variable keeps the dataclass value-equality semantics
    # (variables are dict keys throughout the solver and contract layers).
    # To state an *equality constraint* on a single variable, lift it into an
    # expression first:  ``1 * var == rhs``.

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.integer else "real"
        return f"Variable({self.name!r}, [{self.lb}, {self.ub}], {kind})"


ExprLike = Union[Variable, "LinearExpr", Number]


class LinearExpr:
    """An affine expression ``sum(coeff * var) + constant``.

    Instances are immutable from the caller's point of view: every operator
    returns a new expression.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(
        self,
        coeffs: Optional[Mapping[Variable, Number]] = None,
        constant: Number = 0.0,
    ) -> None:
        cleaned: Dict[Variable, float] = {}
        for var, coeff in (coeffs or {}).items():
            if not isinstance(var, Variable):
                raise ExpressionError(f"expression keys must be Variables, got {var!r}")
            c = float(coeff)
            if c != 0.0:
                cleaned[var] = c
        self.coeffs: Dict[Variable, float] = cleaned
        self.constant: float = float(constant)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def from_operand(value: ExprLike) -> "LinearExpr":
        """Coerce a variable, number or expression into a :class:`LinearExpr`."""
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Variable):
            return LinearExpr({value: 1.0}, 0.0)
        if isinstance(value, (int, float)):
            return LinearExpr({}, float(value))
        raise ExpressionError(f"cannot build a linear expression from {value!r}")

    @staticmethod
    def sum(terms: Iterable[ExprLike]) -> "LinearExpr":
        """Sum an iterable of variables / expressions / numbers.

        Unlike Python's ``sum``, this avoids quadratic rebuild cost by
        accumulating into a single coefficient dictionary.
        """
        coeffs: Dict[Variable, float] = {}
        constant = 0.0
        for term in terms:
            expr = LinearExpr.from_operand(term)
            constant += expr.constant
            for var, coeff in expr.coeffs.items():
                coeffs[var] = coeffs.get(var, 0.0) + coeff
        return LinearExpr(coeffs, constant)

    # -- queries ------------------------------------------------------------
    def variables(self) -> Tuple[Variable, ...]:
        """All variables with a non-zero coefficient, in insertion order."""
        return tuple(self.coeffs)

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 if absent)."""
        return self.coeffs.get(var, 0.0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, assignment: Mapping[Variable, Number]) -> float:
        """Evaluate the expression under a (possibly partial) assignment.

        Missing variables are treated as an error so silent mistakes do not
        propagate into flow accounting.
        """
        total = self.constant
        for var, coeff in self.coeffs.items():
            if var not in assignment:
                raise ExpressionError(f"assignment missing variable {var.name!r}")
            total += coeff * float(assignment[var])
        return total

    # -- arithmetic ---------------------------------------------------------
    def _combine(self, other: ExprLike, sign: float) -> "LinearExpr":
        other_expr = LinearExpr.from_operand(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other_expr.coeffs.items():
            coeffs[var] = coeffs.get(var, 0.0) + sign * coeff
        return LinearExpr(coeffs, self.constant + sign * other_expr.constant)

    def __add__(self, other: ExprLike) -> "LinearExpr":
        return self._combine(other, +1.0)

    def __radd__(self, other: ExprLike) -> "LinearExpr":
        return self._combine(other, +1.0)

    def __sub__(self, other: ExprLike) -> "LinearExpr":
        return self._combine(other, -1.0)

    def __rsub__(self, other: ExprLike) -> "LinearExpr":
        return (self * -1.0)._combine(other, +1.0)

    def __mul__(self, factor: Number) -> "LinearExpr":
        if not isinstance(factor, (int, float)):
            raise ExpressionError("expressions can only be scaled by numbers")
        return LinearExpr(
            {var: coeff * float(factor) for var, coeff in self.coeffs.items()},
            self.constant * float(factor),
        )

    def __rmul__(self, factor: Number) -> "LinearExpr":
        return self * factor

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    # -- comparisons --------------------------------------------------------
    def __le__(self, other: ExprLike) -> "LinearConstraint":
        return LinearConstraint(self - other, LE)

    def __ge__(self, other: ExprLike) -> "LinearConstraint":
        return LinearConstraint(self - other, GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinearExpr, int, float)):
            return LinearConstraint(self - other, EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (frozenset((v.name, c) for v, c in self.coeffs.items()), self.constant)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = [f"{coeff:+g}*{var.name}" for var, coeff in self.coeffs.items()]
        if self.constant or not terms:
            terms.append(f"{self.constant:+g}")
        return " ".join(terms)


@dataclass(frozen=True)
class LinearConstraint:
    """A normalized linear constraint ``expr <sense> 0``.

    Construction folds the right-hand side into ``expr``; callers should use
    the comparison operators on :class:`LinearExpr` / :class:`Variable` rather
    than instantiating this class directly.
    """

    expr: LinearExpr
    sense: str
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.sense not in _VALID_SENSES:
            raise ExpressionError(f"invalid constraint sense {self.sense!r}")

    def named(self, name: str) -> "LinearConstraint":
        """Return a copy of this constraint carrying a diagnostic name."""
        return LinearConstraint(self.expr, self.sense, name)

    def variables(self) -> Tuple[Variable, ...]:
        return self.expr.variables()

    def is_satisfied(
        self, assignment: Mapping[Variable, Number], tol: float = 1e-6
    ) -> bool:
        """Check the constraint under an assignment, with numeric tolerance."""
        value = self.expr.evaluate(assignment)
        if self.sense == LE:
            return value <= tol
        if self.sense == GE:
            return value >= -tol
        return abs(value) <= tol

    def violation(self, assignment: Mapping[Variable, Number]) -> float:
        """Amount by which the constraint is violated (0.0 when satisfied)."""
        value = self.expr.evaluate(assignment)
        if self.sense == LE:
            return max(0.0, value)
        if self.sense == GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} 0"


def variables_of(constraints: Iterable[LinearConstraint]) -> Tuple[Variable, ...]:
    """Collect the distinct variables referenced by a constraint collection."""
    seen: Dict[Variable, None] = {}
    for constraint in constraints:
        for var in constraint.variables():
            seen.setdefault(var, None)
    return tuple(seen)
