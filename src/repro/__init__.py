"""repro — reproduction of "Co-Design of Topology, Scheduling, and Path Planning
in Automated Warehouses" (Leet, Oh, Lora, Koenig, Nuzzo — DATE 2023).

The package is organised as a set of substrates plus the co-design core:

* :mod:`repro.solver`     — ILP / LP constraint solving (replaces Z3).
* :mod:`repro.contracts`  — assume-guarantee contract algebra (replaces CHASE).
* :mod:`repro.warehouse`  — the WSP formalization: maps, products, workloads, plans.
* :mod:`repro.maps`       — evaluation maps (fulfillment centers, sorting center).
* :mod:`repro.traffic`    — the traffic-system design framework (components, rules).
* :mod:`repro.core`       — flow synthesis, cycle decomposition, realization, pipeline.
* :mod:`repro.sim`        — discrete-event execution engine (digital twin): a
  deterministic, seedable event loop that executes realized plans tick-by-tick
  with stochastic order streams, station service queues, telemetry, and a
  runtime monitor re-checking the assume-guarantee contracts against the
  observed flows; a disruption stage injects stochastic failures (agent
  breakdowns/slowdowns, station outages, blocked aisles, demand surges) with
  online recovery policies and resilience telemetry, turning the monitor into
  the paper's falsifiable instrument.
* :mod:`repro.mapf`       — MAPF / MAPD baselines (A*, CBS, ECBS/EECBS, MAPD).
* :mod:`repro.experiments`— scenario generation and parallel experiment
  orchestration: declarative scenario specs, grid/random/preset suites, a
  spawn-based batch runner with timeouts and crash isolation, and an
  append-only JSONL result store (``repro sweep`` on the command line).
* :mod:`repro.service`    — the concurrent serving layer above the whole
  pipeline: an HTTP front end (solve/batch/submit/status/result/health/
  metrics) over a content-addressed result cache (in-memory LRU +
  persistent JSONL tier, keyed on ``scenario_id``, with single-flight
  coalescing of identical in-flight requests) and a bounded worker pool
  with explicit backpressure and graceful drain (``repro serve`` /
  ``repro loadtest`` on the command line).
* :mod:`repro.obs`        — pipeline-wide observability: nestable tracing
  spans with monotonic timings and phase timers (zero-cost when disabled,
  deterministic serialization), a process-safe metrics registry (counters,
  gauges, fixed-bucket histograms; spawn-based workers serialize snapshots
  back to the parent; JSON + Prometheus text exposition), and the cProfile
  harness behind ``repro profile``.
* :mod:`repro.optimize`   — closed-loop design search above the pipeline:
  a declarative :class:`~repro.optimize.DesignSpace` of scenario knobs
  (slotting permutation, layout geometry), seeded hill-climbing /
  simulated-annealing optimizers, pluggable objectives, and cache-fronted
  evaluators (in-process pool, live service, remote replica fleet) driving
  resumable campaigns (``repro optimize`` on the command line, ``POST
  /optimize`` on the service)::

      DesignSpace --propose--> Optimizer --candidate--> Evaluator
           ^                                               |  (solve -> simulate,
           |                                               |   cache by scenario_id)
           +------ accept / reject <-- Objective <--score--+

* :mod:`repro.analysis`   — metrics (static and simulated), reporting and
  ASCII visualization, sweep aggregation, serving latency/throughput
  tables, span-tree/hotspot rendering, convergence traces, and regression
  comparison.
* :mod:`repro.io`         — map / plan / trace / scenario / run-record /
  service request-response serialization.

The main user-facing entry point is :class:`repro.core.pipeline.WSPSolver`:
``solve()`` runs stages 1-5 (design check, synthesis, decomposition,
realization, validation) and ``simulate()`` runs stage 6, executing the
realized plan in the digital twin — nominally, grid-routed, or under
failure injection (``SimulationConfig.disruptions``) — and returning a
:class:`repro.sim.runner.SimulationReport`.  Above the pipeline sits the
serving layer: ``repro serve`` answers solve/simulate traffic from a
content-addressed cache backed by a bounded worker pool.  See
``examples/quickstart.py`` for a five-minute tour,
``examples/simulate_fulfillment.py`` for the execution side,
``examples/resilient_simulation.py`` for the disruption/recovery tour,
``examples/serving.py`` for the serving layer, and
``examples/optimize_layout.py`` for closed-loop design search.
"""

__version__ = "1.10.0"

__all__ = ["__version__"]
