"""repro — reproduction of "Co-Design of Topology, Scheduling, and Path Planning
in Automated Warehouses" (Leet, Oh, Lora, Koenig, Nuzzo — DATE 2023).

The package is organised as a set of substrates plus the co-design core:

* :mod:`repro.solver`     — ILP / LP constraint solving (replaces Z3).
* :mod:`repro.contracts`  — assume-guarantee contract algebra (replaces CHASE).
* :mod:`repro.warehouse`  — the WSP formalization: maps, products, workloads, plans.
* :mod:`repro.maps`       — evaluation maps (fulfillment centers, sorting center).
* :mod:`repro.traffic`    — the traffic-system design framework (components, rules).
* :mod:`repro.core`       — flow synthesis, cycle decomposition, realization, pipeline.
* :mod:`repro.mapf`       — MAPF / MAPD baselines (A*, CBS, ECBS/EECBS, MAPD).
* :mod:`repro.analysis`   — metrics, reporting and ASCII visualization.
* :mod:`repro.io`         — map / plan serialization.

The main user-facing entry point is :class:`repro.core.pipeline.WSPSolver`;
see ``examples/quickstart.py`` for a five-minute tour.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
