"""Content-addressed result cache: sharded LRU tiers + single-flight coalescing.

Results are keyed on :attr:`~repro.experiments.scenario.ScenarioSpec.
scenario_id` — the stable content hash of the scenario — so two requests for
the same instance are the *same* cache entry regardless of who sent them, in
which order, or under which cosmetic name.  Two tiers:

* an in-memory LRU of :class:`~repro.experiments.store.RunRecord` objects
  (bounded, thread-safe), the fast path every warm request hits;
* an optional persistent tier backed by the append-only JSONL
  :class:`~repro.experiments.store.ResultStore`: records survive restarts,
  and a memory miss consults the store's id index — tailing lines appended
  by *other processes* first (:meth:`~repro.experiments.store.ResultStore.
  refresh`) — before declaring a miss (a store hit is promoted back into
  memory).  One JSONL file shared by a pre-fork worker fleet is therefore a
  common warm layer: any worker's computation warms every other worker.

The memory tier is **sharded**: the id space is split over N independently
locked shards (routed by a stable hash of the ``scenario_id`` prefix), so a
hot key in one shard never serializes lookups of unrelated keys behind one
global lock.  Eviction is LRU *per shard* (each shard owns an equal slice of
the total capacity); aggregate stats are the sum over shards, and
:meth:`snapshot` reports both.

Only *deterministic* outcomes are cached (``ok`` and ``infeasible`` — both
are pure functions of the spec).  Timeouts and crashes are never cached: a
retry deserves a fresh attempt.

Single-flight: when several concurrent requests miss on the same id, exactly
one (the *leader*) computes while the rest wait on the flight's event and
share the leader's record — N identical requests cost one worker-pool slot,
which is what keeps a thundering herd of popular scenarios from saturating
the pool.  A leader that *abandons* (pool rejection, crash before handing a
record back) marks the flight so a woken follower can re-lease the id and
become the new leader instead of failing outright.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..experiments.store import STATUS_INFEASIBLE, STATUS_OK, ResultStore, RunRecord

#: Run statuses worth caching (deterministic functions of the scenario).
CACHEABLE_STATUSES = (STATUS_OK, STATUS_INFEASIBLE)

#: How many leading ``scenario_id`` characters route a key to its shard.
SHARD_PREFIX = 8

_STAT_KEYS = ("hits_memory", "hits_store", "misses", "coalesced", "puts")


class Flight:
    """One in-flight computation other requests may coalesce onto."""

    __slots__ = ("event", "record", "abandoned")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: Optional[RunRecord] = None
        #: Set when the leader gave up without a record; a follower that
        #: wakes to an abandoned flight may re-lease and lead the retry.
        self.abandoned = False


class _Shard:
    """One independently locked LRU slice of the id space."""

    __slots__ = ("lock", "memory", "flights", "stats", "capacity")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.memory: "OrderedDict[str, RunRecord]" = OrderedDict()
        self.flights: Dict[str, Flight] = {}
        self.stats = {key: 0 for key in _STAT_KEYS}
        self.capacity = capacity

    def remember(self, scenario_id: str, record: RunRecord) -> None:
        """Insert/touch under the shard lock (caller holds it)."""
        self.memory[scenario_id] = record
        self.memory.move_to_end(scenario_id)
        while len(self.memory) > self.capacity:
            self.memory.popitem(last=False)


class ResultCache:
    """Sharded two-tier LRU + single-flight registry, keyed by ``scenario_id``."""

    def __init__(
        self,
        capacity: int = 1024,
        store: Optional[ResultStore] = None,
        shards: int = 8,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be at least 1 (got {capacity})")
        if shards < 1:
            raise ValueError(f"cache shards must be at least 1 (got {shards})")
        self.capacity = capacity
        self.store = store
        # Never mint more shards than capacity: every shard must be able to
        # hold at least one entry without inflating the aggregate bound.
        self.num_shards = min(shards, capacity)
        base, extra = divmod(capacity, self.num_shards)
        self._shards = [
            _Shard(base + (1 if index < extra else 0))
            for index in range(self.num_shards)
        ]
        if store is not None:
            # Warm the memory tier from the newest cacheable record of every
            # id already in the file (newest wins: a re-run supersedes).
            for scenario_id in store.scenario_ids():
                record = self._latest_cacheable(store.by_id(scenario_id))
                if record is not None:
                    shard = self._shard(scenario_id)
                    with shard.lock:
                        shard.remember(scenario_id, record)

    # -- routing ----------------------------------------------------------------
    def _shard(self, scenario_id: str) -> _Shard:
        # crc32 of the id prefix: stable across processes and runs (unlike
        # hash()), cheap, and uniform enough for content-hash keys.
        digest = zlib.crc32(scenario_id[:SHARD_PREFIX].encode("utf-8", "replace"))
        return self._shards[digest % self.num_shards]

    def shard_index(self, scenario_id: str) -> int:
        """Which shard an id routes to (exposed for tests and diagnostics)."""
        return self._shards.index(self._shard(scenario_id))

    @staticmethod
    def _latest_cacheable(records) -> Optional[RunRecord]:
        for record in reversed(records):
            if record.status in CACHEABLE_STATUSES:
                return record
        return None

    # -- lookups ----------------------------------------------------------------
    def get(self, scenario_id: str) -> Tuple[Optional[RunRecord], str]:
        """Look up an id; returns ``(record, tier)`` with tier in hit/store/miss."""
        shard = self._shard(scenario_id)
        with shard.lock:
            record = shard.memory.get(scenario_id)
            if record is not None:
                shard.memory.move_to_end(scenario_id)
                shard.stats["hits_memory"] += 1
                return record, "hit"
        if self.store is not None:
            # Store lookups happen outside the shard lock: the persistent
            # tier may touch the filesystem (refresh tails new lines other
            # worker processes appended) and must not stall sibling keys.
            record = self._latest_cacheable(self.store.by_id(scenario_id))
            if record is None and self.store.refresh() > 0:
                record = self._latest_cacheable(self.store.by_id(scenario_id))
            if record is not None:
                with shard.lock:
                    shard.remember(scenario_id, record)
                    shard.stats["hits_store"] += 1
                return record, "store"
        with shard.lock:
            shard.stats["misses"] += 1
        return None, "miss"

    def get_memory(self, scenario_id: str) -> Optional[RunRecord]:
        """Memory-tier-only lookup: one shard-dict probe, nothing else.

        The serving fast path calls this before committing to the full
        resolution machinery.  A hit counts as ``hits_memory``; a miss is
        *not* counted here — the caller falls through to :meth:`get`, which
        owns the store tier and the miss accounting.
        """
        shard = self._shard(scenario_id)
        with shard.lock:
            record = shard.memory.get(scenario_id)
            if record is None:
                return None
            shard.memory.move_to_end(scenario_id)
            shard.stats["hits_memory"] += 1
            return record

    # -- single-flight ----------------------------------------------------------
    def lease(self, scenario_id: str) -> Tuple[Flight, bool]:
        """Join or open the flight for an id; returns ``(flight, is_leader)``."""
        shard = self._shard(scenario_id)
        with shard.lock:
            flight = shard.flights.get(scenario_id)
            if flight is not None:
                shard.stats["coalesced"] += 1
                return flight, False
            flight = Flight()
            shard.flights[scenario_id] = flight
            return flight, True

    def complete(self, scenario_id: str, flight: Flight, record: RunRecord) -> None:
        """Leader hand-off: publish the record, cache it, release followers."""
        cacheable = record.status in CACHEABLE_STATUSES
        shard = self._shard(scenario_id)
        with shard.lock:
            if cacheable:
                shard.remember(scenario_id, record)
                shard.stats["puts"] += 1
            shard.flights.pop(scenario_id, None)
        if cacheable and self.store is not None:
            # Persist outside the shard lock: the append takes a blocking
            # flock on the JSONL file, and a slow (or contended) write must
            # not stall every concurrent warm lookup behind it.
            self.store.append(record)
        flight.record = record
        flight.event.set()

    def abandon(self, scenario_id: str, flight: Flight) -> None:
        """Leader failed before producing a record; wake followers to retry.

        Followers observe ``flight.abandoned`` and may :meth:`lease` again —
        one of them wins the new flight and leads the retry, the rest coalesce
        onto it.  The abandonment is marked *before* the flight is unpublished
        so a follower can never see a closed flight without the flag.
        """
        flight.abandoned = True
        shard = self._shard(scenario_id)
        with shard.lock:
            shard.flights.pop(scenario_id, None)
        flight.event.set()

    # -- accounting -------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Aggregate counters over every shard (a consistent locked sum)."""
        totals = {key: 0 for key in _STAT_KEYS}
        for shard in self._shards:
            with shard.lock:
                for key in _STAT_KEYS:
                    totals[key] += shard.stats[key]
        return totals

    @property
    def hit_rate(self) -> float:
        snapshot = self.stats  # one locked pass; never a torn read
        hits = snapshot["hits_memory"] + snapshot["hits_store"] + snapshot["coalesced"]
        lookups = hits + snapshot["misses"]
        return hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Aggregate stats plus one entry per shard, all read under the locks."""
        totals = {key: 0 for key in _STAT_KEYS}
        size = 0
        in_flight = 0
        shards: List[Dict[str, float]] = []
        for shard in self._shards:
            with shard.lock:
                entry = dict(shard.stats)
                entry["size"] = len(shard.memory)
                entry["in_flight"] = len(shard.flights)
                entry["capacity"] = shard.capacity
            for key in _STAT_KEYS:
                totals[key] += entry[key]
            size += entry["size"]
            in_flight += entry["in_flight"]
            shards.append(entry)
        document: Dict[str, float] = dict(totals)
        document["size"] = size
        document["in_flight"] = in_flight
        # hit_rate derives from the snapshot itself, not a second racy read.
        hits = totals["hits_memory"] + totals["hits_store"] + totals["coalesced"]
        lookups = hits + totals["misses"]
        document["hit_rate"] = hits / lookups if lookups else 0.0
        document["num_shards"] = self.num_shards
        document["shards"] = shards
        return document

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.memory)
        return total
