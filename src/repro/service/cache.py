"""Content-addressed result cache with single-flight coalescing.

Results are keyed on :attr:`~repro.experiments.scenario.ScenarioSpec.
scenario_id` — the stable content hash of the scenario — so two requests for
the same instance are the *same* cache entry regardless of who sent them, in
which order, or under which cosmetic name.  Two tiers:

* an in-memory LRU of :class:`~repro.experiments.store.RunRecord` objects
  (bounded, thread-safe), the fast path every warm request hits;
* an optional persistent tier backed by the append-only JSONL
  :class:`~repro.experiments.store.ResultStore`: records survive restarts,
  and a memory miss consults the store's id index before declaring a miss
  (a store hit is promoted back into memory).

Only *deterministic* outcomes are cached (``ok`` and ``infeasible`` — both
are pure functions of the spec).  Timeouts and crashes are never cached: a
retry deserves a fresh attempt.

Single-flight: when several concurrent requests miss on the same id, exactly
one (the *leader*) computes while the rest wait on the flight's event and
share the leader's record — N identical requests cost one worker-pool slot,
which is what keeps a thundering herd of popular scenarios from saturating
the pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..experiments.store import STATUS_INFEASIBLE, STATUS_OK, ResultStore, RunRecord

#: Run statuses worth caching (deterministic functions of the scenario).
CACHEABLE_STATUSES = (STATUS_OK, STATUS_INFEASIBLE)


class Flight:
    """One in-flight computation other requests may coalesce onto."""

    __slots__ = ("event", "record")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: Optional[RunRecord] = None


class ResultCache:
    """Two-tier LRU + single-flight registry, keyed by ``scenario_id``."""

    def __init__(self, capacity: int = 1024, store: Optional[ResultStore] = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be at least 1 (got {capacity})")
        self.capacity = capacity
        self.store = store
        self._memory: "OrderedDict[str, RunRecord]" = OrderedDict()
        self._flights: Dict[str, Flight] = {}
        self._lock = threading.Lock()
        self.stats = {
            "hits_memory": 0,
            "hits_store": 0,
            "misses": 0,
            "coalesced": 0,
            "puts": 0,
        }
        if store is not None:
            # Warm the memory tier from the newest cacheable record of every
            # id already in the file (newest wins: a re-run supersedes).
            for scenario_id in store.scenario_ids():
                record = self._latest_cacheable(store.by_id(scenario_id))
                if record is not None:
                    self._remember(scenario_id, record)

    @staticmethod
    def _latest_cacheable(records) -> Optional[RunRecord]:
        for record in reversed(records):
            if record.status in CACHEABLE_STATUSES:
                return record
        return None

    def _remember(self, scenario_id: str, record: RunRecord) -> None:
        self._memory[scenario_id] = record
        self._memory.move_to_end(scenario_id)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # -- lookups ----------------------------------------------------------------
    def get(self, scenario_id: str) -> Tuple[Optional[RunRecord], str]:
        """Look up an id; returns ``(record, tier)`` with tier in hit/store/miss."""
        with self._lock:
            record = self._memory.get(scenario_id)
            if record is not None:
                self._memory.move_to_end(scenario_id)
                self.stats["hits_memory"] += 1
                return record, "hit"
            if self.store is not None:
                record = self._latest_cacheable(self.store.by_id(scenario_id))
                if record is not None:
                    self._remember(scenario_id, record)
                    self.stats["hits_store"] += 1
                    return record, "store"
            self.stats["misses"] += 1
            return None, "miss"

    # -- single-flight ----------------------------------------------------------
    def lease(self, scenario_id: str) -> Tuple[Flight, bool]:
        """Join or open the flight for an id; returns ``(flight, is_leader)``."""
        with self._lock:
            flight = self._flights.get(scenario_id)
            if flight is not None:
                self.stats["coalesced"] += 1
                return flight, False
            flight = Flight()
            self._flights[scenario_id] = flight
            return flight, True

    def complete(self, scenario_id: str, flight: Flight, record: RunRecord) -> None:
        """Leader hand-off: publish the record, cache it, release followers."""
        cacheable = record.status in CACHEABLE_STATUSES
        with self._lock:
            if cacheable:
                self._remember(scenario_id, record)
                self.stats["puts"] += 1
            self._flights.pop(scenario_id, None)
        if cacheable and self.store is not None:
            # Persist outside the cache lock: the append takes a blocking
            # flock on the JSONL file, and a slow (or contended) write must
            # not stall every concurrent warm lookup behind it.
            self.store.append(record)
        flight.record = record
        flight.event.set()

    def abandon(self, scenario_id: str, flight: Flight) -> None:
        """Leader failed before producing a record; wake followers empty-handed."""
        with self._lock:
            self._flights.pop(scenario_id, None)
        flight.event.set()

    # -- accounting -------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        hits = self.stats["hits_memory"] + self.stats["hits_store"] + self.stats["coalesced"]
        lookups = hits + self.stats["misses"]
        return hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            snapshot = dict(self.stats)
            snapshot["size"] = len(self._memory)
            snapshot["in_flight"] = len(self._flights)
        snapshot["hit_rate"] = self.hit_rate
        return snapshot

    def __len__(self) -> int:
        return len(self._memory)
