"""Bounded worker pool dispatching cold requests onto the pipeline runner.

A thin admission-control layer over a spawn-based ``ProcessPoolExecutor``
running :func:`repro.experiments.runner.execute_scenario` — the same worker
entry point the sweep orchestrator uses, so a served request and a sweep run
are bit-identical computations.

The pool's job is *explicit backpressure*: at most ``workers`` requests
compute while at most ``max_pending`` wait; one more and :meth:`submit`
raises :class:`PoolSaturated` with a retry-after hint instead of queueing
without bound.  An overloaded service therefore degrades into fast, honest
429s — bounded memory, bounded queue delay — rather than collapsing.

Draining (SIGINT/SIGTERM) flips the pool into reject-new/finish-in-flight
mode, then :meth:`drain` blocks until the in-flight work has been handed
back to its waiters.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import get_context
from typing import Dict, Optional

from ..experiments.runner import execute_scenario


class PoolSaturated(Exception):
    """Raised when admission would exceed the bounded queue depth."""

    def __init__(self, message: str, retry_after_seconds: float):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class PoolDraining(PoolSaturated):
    """Raised for submissions arriving after shutdown began."""


def _ping() -> str:  # module-level: must be picklable for spawn
    return "pong"


class ServicePool:
    """Admission-controlled process pool for scenario execution."""

    def __init__(
        self,
        workers: int = 2,
        max_pending: int = 8,
        start_method: str = "spawn",
    ):
        if workers < 1:
            raise ValueError(f"workers must be at least 1 (got {workers})")
        if max_pending < 0:
            raise ValueError(f"max_pending must be non-negative (got {max_pending})")
        self.workers = workers
        self.max_pending = max_pending
        self._executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context(start_method)
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._draining = False
        self.stats: Dict[str, int] = {"submitted": 0, "completed": 0, "rejected": 0}

    # -- lifecycle --------------------------------------------------------------
    def warm_up(self, timeout: Optional[float] = 60.0) -> None:
        """Eagerly spawn every worker (first-request latency off the hot path)."""
        pings = [self._executor.submit(_ping) for _ in range(self.workers)]
        for ping in pings:
            ping.result(timeout=timeout)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight work, shut the executor down.

        Returns ``True`` when every in-flight request finished within
        ``timeout`` (``None`` waits indefinitely).
        """
        with self._idle:
            self._draining = True
            drained = self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)
        # cancel_futures only matters on abnormal exits: admission control
        # already guarantees nothing new entered after the drain flag flipped.
        self._executor.shutdown(wait=drained, cancel_futures=True)
        return drained

    # -- admission --------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def _retry_after(self) -> float:
        """A crude queue-delay estimate: pending depth over worker parallelism."""
        backlog = max(1, self._in_flight - self.workers + 1)
        return round(0.5 * backlog / self.workers + 0.5, 3)

    def submit(self, document: Dict, timeout_seconds: Optional[float] = None) -> Future:
        """Admit one scenario document, or raise :class:`PoolSaturated`."""
        with self._lock:
            if self._draining:
                self.stats["rejected"] += 1
                raise PoolDraining("service is draining", retry_after_seconds=5.0)
            if self._in_flight >= self.workers + self.max_pending:
                self.stats["rejected"] += 1
                raise PoolSaturated(
                    f"queue full ({self._in_flight} in flight, "
                    f"{self.workers} workers + {self.max_pending} pending allowed)",
                    retry_after_seconds=self._retry_after(),
                )
            self._in_flight += 1
            self.stats["submitted"] += 1
        try:
            # collect_obs: workers ship their run metrics (and any traced
            # spans) back inside the record for the service to merge.
            future = self._executor.submit(
                execute_scenario, document, timeout_seconds, True
            )
        except BaseException:
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()
            raise
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future: Future) -> None:
        with self._idle:
            self._in_flight -= 1
            self.stats["completed"] += 1
            self._idle.notify_all()

    # -- accounting -------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                **self.stats,
                "in_flight": self._in_flight,
                "workers": self.workers,
                "max_pending": self.max_pending,
                "draining": float(self._draining),
            }


__all__ = ["PoolDraining", "PoolSaturated", "ServicePool"]
