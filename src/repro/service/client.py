"""Stdlib HTTP client and the load-generator harness.

:class:`ServiceClient` is a thin ``http.client`` wrapper speaking the JSON
contract of :mod:`repro.service.server` — one persistent connection per
client, so a load-test thread models one keep-alive user.

:func:`run_loadtest` is the measurement harness behind ``repro loadtest``
and ``benchmarks/test_bench_service.py``.  It drives a running service
through three phases:

* **cold**  — every distinct scenario once, forced to recompute
  (``fresh=True``): the full solve→simulate pipeline latency;
* **warm**  — N concurrent clients hammering the same scenarios: the
  content-addressed cache path, which the acceptance bar requires to be
  ≥ 10× faster at the median than cold;
* **overload** (optional) — a burst of *distinct* fresh scenarios sized
  beyond the pool's admission bound: the service must answer every one,
  mostly with explicit 429 rejections, and never crash or queue unboundedly.

HTTP 429/503 are counted as *rejections* (correct overload behaviour), 5xx
as server errors, socket-level failures as transport errors; the report's
:meth:`~LoadTestReport.acceptable` collapses all of that into the PR's
acceptance criteria.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from ..experiments.scenario import ScenarioSpec
from ..experiments.store import RUN_STATUSES
from .api import ServiceRequest, ServiceResponse


class ServiceClientError(RuntimeError):
    """Raised for transport-level failures (connect/read/protocol)."""


class ServiceClient:
    """One keep-alive HTTP connection to a running service."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ServiceClientError(f"only http:// urls are supported (got {base_url!r})")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing ---------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):  # one retry after a dropped keep-alive connection
            connection = self._connect()
            try:
                connection.request(method, path, body=payload, headers=headers)
                reply = connection.getresponse()
                raw = reply.read()
                break
            except (OSError, http.client.HTTPException) as error:
                self.close()
                if attempt == 2:
                    raise ServiceClientError(
                        f"{method} {path} failed: {type(error).__name__}: {error}"
                    ) from error
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceClientError(f"{method} {path}: non-JSON reply: {error}") from error
        return reply.status, document

    # -- endpoints --------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")[1]

    def dashboard(self, events_limit: int = 50) -> Dict:
        return self._request("GET", f"/dashboard?events={events_limit}")[1]

    def optimize(self, document: Dict) -> Tuple[int, Dict]:
        """Start an optimization campaign (``POST /optimize``)."""
        return self._request("POST", "/optimize", body=document)

    def optimize_status(self, campaign_id: str = "") -> Tuple[int, Dict]:
        """One campaign's status, or the campaign registry when id is empty."""
        path = "/optimize/status" + (f"/{campaign_id}" if campaign_id else "")
        return self._request("GET", path)

    def wait_optimize(
        self, campaign_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> Dict:
        """Poll ``/optimize/status/<id>`` until the campaign leaves ``running``."""
        deadline = time.monotonic() + timeout
        while True:
            status, document = self.optimize_status(campaign_id)
            if status != 200:
                raise ServiceClientError(
                    f"campaign {campaign_id!r}: HTTP {status}: {document.get('error')}"
                )
            if document.get("state") != "running":
                return document
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"campaign {campaign_id!r} still running after {timeout:g}s"
                )
            time.sleep(poll)

    def stream_events(
        self,
        since: int = -1,
        max_events: int = 0,
        max_seconds: float = 30.0,
        keepalive: float = 15.0,
    ) -> List[Dict]:
        """Read the SSE ``/events`` stream and collect the ``data:`` payloads.

        Uses a dedicated connection (the stream is close-delimited, so it
        must not share the keep-alive connection).  Returns once the server
        closes the stream (``max_events`` reached, drain) or ``max_seconds``
        elapses client-side, whichever is first.
        """
        path = f"/events?since={since}&max={max_events}&keepalive={keepalive:g}"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=max(0.2, max_seconds)
        )
        events: List[Dict] = []
        deadline = time.monotonic() + max_seconds
        try:
            connection.request("GET", path)
            reply = connection.getresponse()
            if reply.status != 200:
                raise ServiceClientError(f"GET /events failed with HTTP {reply.status}")
            while time.monotonic() < deadline:
                line = reply.fp.readline()
                if not line:
                    break  # server closed the stream
                text = line.decode("utf-8", errors="replace").strip()
                if not text.startswith("data:"):
                    continue  # id:/event: fields and keep-alive comments
                try:
                    events.append(json.loads(text[len("data:"):].strip()))
                except json.JSONDecodeError as error:
                    raise ServiceClientError(f"malformed SSE data line: {error}")
                if max_events and len(events) >= max_events:
                    break
        except (OSError, http.client.HTTPException) as error:
            if not events:  # a timeout after some events is a normal tail end
                raise ServiceClientError(f"GET /events failed: {error}") from error
        finally:
            connection.close()
        return events

    def solve(self, request: ServiceRequest) -> Tuple[int, ServiceResponse]:
        status, document = self._request("POST", "/solve", request.to_dict())
        return status, ServiceResponse.from_dict(document)

    def submit(self, request: ServiceRequest) -> Tuple[int, ServiceResponse]:
        status, document = self._request("POST", "/submit", request.to_dict())
        return status, ServiceResponse.from_dict(document)

    def status(self, request_id: str) -> Tuple[int, Dict]:
        return self._request("GET", f"/status/{request_id}")

    def result(self, request_id: str) -> Tuple[int, ServiceResponse]:
        status, document = self._request("GET", f"/result/{request_id}")
        if status == 404:
            raise ServiceClientError(f"unknown request id {request_id!r}")
        return status, ServiceResponse.from_dict(document)

    def batch(self, requests: Sequence[ServiceRequest]) -> List[ServiceResponse]:
        """POST /batch; collects the NDJSON stream back into *input order*.

        The server streams lines in completion order, each tagged with its
        input ``index``; this client reorders on that tag (lines without one
        — older servers — are assumed already ordered).
        """
        payload = json.dumps([request.to_dict() for request in requests]).encode()
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "POST", "/batch", body=payload, headers={"Content-Type": "application/json"}
            )
            reply = connection.getresponse()
            if reply.status != 200:
                raise ServiceClientError(f"POST /batch failed with HTTP {reply.status}")
            tagged: List[Tuple[int, ServiceResponse]] = []
            for position, line in enumerate(reply.read().decode("utf-8").splitlines()):
                if not line.strip():
                    continue
                document = json.loads(line)
                index = document.pop("index", position)
                tagged.append((int(index), ServiceResponse.from_dict(document)))
            tagged.sort(key=lambda pair: pair[0])
            return [response for _, response in tagged]
        except (OSError, http.client.HTTPException) as error:
            raise ServiceClientError(f"POST /batch failed: {error}") from error
        finally:
            connection.close()


# ---------------------------------------------------------------------------
# high-rate clients
# ---------------------------------------------------------------------------

class _ResponseView:
    """The few response fields the load recorder reads, parsed cheaply.

    Quacks like :class:`~repro.service.api.ServiceResponse` for exactly the
    attributes the measurement path touches (``state``, ``cache``,
    ``terminal``, ``served_from_cache``) without the full schema validation —
    at tens of thousands of responses per second the difference shows.
    """

    __slots__ = ("state", "cache", "document")

    def __init__(self, document: Dict):
        self.state = str(document.get("state", ""))
        self.cache = str(document.get("cache", ""))
        #: The full parsed response document — a reference, not a copy, so the
        #: hot measurement path pays nothing while consumers that need the
        #: embedded run record (``repro.optimize``'s remote evaluator) keep it.
        self.document = document

    @property
    def terminal(self) -> bool:
        return self.state in RUN_STATUSES

    @property
    def served_from_cache(self) -> bool:
        return self.cache in ("hit", "store", "coalesced")


class FastServiceClient:
    """Raw-socket ``/solve`` client built for load generation.

    One keep-alive connection, request bytes rendered once and replayed
    (:meth:`render`), and a readline header scan instead of
    ``http.client``'s full response machinery.  Works against both the
    threading and the pre-fork servers — it speaks plain HTTP/1.1.
    """

    def __init__(self, base_url: str, timeout: float = 300.0):
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ServiceClientError(f"only http:// urls are supported (got {base_url!r})")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb", 65536)

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "FastServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def render(self, request: ServiceRequest) -> bytes:
        """Serialize one request to reusable wire bytes (head + body)."""
        body = json.dumps(request.to_dict()).encode()
        head = (
            f"POST /solve HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        return head + body

    def solve_prepared(self, wire: bytes) -> Tuple[int, _ResponseView]:
        """Send pre-rendered wire bytes; returns ``(status, response view)``."""
        for attempt in (1, 2):  # one retry after a dropped keep-alive connection
            try:
                if self._sock is None:
                    self._connect()
                self._sock.sendall(wire)
                return self._read_response()
            except (OSError, ValueError) as error:
                self.close()
                if attempt == 2:
                    raise ServiceClientError(
                        f"POST /solve failed: {type(error).__name__}: {error}"
                    ) from error
        raise ServiceClientError("unreachable")  # pragma: no cover

    def solve(self, request: ServiceRequest) -> Tuple[int, _ResponseView]:
        return self.solve_prepared(self.render(request))

    def _read_response(self) -> Tuple[int, _ResponseView]:
        rfile = self._rfile
        line = rfile.readline(65537)
        if not line:
            raise OSError("connection closed before the status line")
        status = int(line.split(None, 2)[1])
        length: Optional[int] = None
        close = False
        while True:
            line = rfile.readline(65537)
            if not line:
                raise OSError("connection closed inside the response headers")
            if line in (b"\r\n", b"\n"):
                break
            key, _, value = line.partition(b":")
            key = key.strip().lower()
            if key == b"content-length":
                length = int(value.strip())
            elif key == b"connection" and value.strip().lower() == b"close":
                close = True
        if status == 100:  # interim: the real response follows
            return self._read_response()
        if length is None:
            body = rfile.read()
            close = True
        else:
            body = rfile.read(length)
            if len(body) < length:
                raise OSError("connection closed inside the response body")
        if close:
            self.close()
        document = json.loads(body) if body else {}
        return status, _ResponseView(document)


class RoundRobinClient:
    """Fan one logical client out over N service replicas, round-robin.

    Holds one keep-alive :class:`FastServiceClient` per replica and rotates
    per request.  ``render`` produces replica-agnostic wire bytes (the
    servers do not dispatch on ``Host``), so one rendering serves the whole
    fleet.
    """

    def __init__(self, urls: Sequence[str], timeout: float = 300.0):
        if not urls:
            raise ServiceClientError("round-robin client needs at least one url")
        self.clients = [FastServiceClient(url, timeout=timeout) for url in urls]
        self._next = 0

    def render(self, request: ServiceRequest) -> bytes:
        return self.clients[0].render(request)

    def solve_prepared(self, wire: bytes) -> Tuple[int, _ResponseView]:
        client = self.clients[self._next]
        self._next = (self._next + 1) % len(self.clients)
        return client.solve_prepared(wire)

    def solve(self, request: ServiceRequest) -> Tuple[int, _ResponseView]:
        return self.solve_prepared(self.render(request))

    def close(self) -> None:
        for client in self.clients:
            client.close()

    def __enter__(self) -> "RoundRobinClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# load generator
# ---------------------------------------------------------------------------

def _registry_value(snapshot: Dict, name: str, labels: Optional[Dict] = None):
    """Look one metric up in a registry snapshot (``None`` when absent)."""
    for entry in snapshot.get("metrics", []):
        if entry.get("name") != name:
            continue
        if labels is not None and entry.get("labels", {}) != labels:
            continue
        return entry.get("value")
    return None


def service_summary(metrics: Dict) -> Dict:
    """Condense a ``/metrics`` document into the load-test report's service section.

    The interesting server-side numbers — cache hit rate, pool saturation,
    runs by pipeline status — live in the metrics registry snapshot; the
    ``cache``/``pool`` sections fill the gaps so the summary still works
    against a server predating the registry.
    """
    if not metrics:
        return {}
    registry = metrics.get("registry", {})
    cache = metrics.get("cache", {})
    pool = metrics.get("pool", {})

    def gauge(name: str, fallback: float) -> float:
        value = _registry_value(registry, name)
        return float(fallback if value is None else value)

    workers = gauge("repro_pool_workers", pool.get("workers", 0))
    in_flight = gauge("repro_pool_in_flight", pool.get("in_flight", 0))
    capacity = pool.get("workers", 0) + pool.get("max_pending", 0)
    fallback_saturation = in_flight / capacity if capacity else 0.0
    runs_by_status = {}
    for entry in registry.get("metrics", []):
        if entry.get("name") == "repro_runs_total":
            status = entry.get("labels", {}).get("status", "unknown")
            runs_by_status[status] = runs_by_status.get(status, 0) + int(entry["value"])
    return {
        "cache_hit_rate": gauge("repro_cache_hit_rate", cache.get("hit_rate", 0.0)),
        "cache_size": int(gauge("repro_cache_size", cache.get("size", 0))),
        "pool_saturation": gauge("repro_pool_saturation", fallback_saturation),
        "pool_in_flight": int(in_flight),
        "pool_workers": int(workers),
        "pool_rejected": int(pool.get("rejected", 0)),
        "runs_by_status": dict(sorted(runs_by_status.items())),
    }


@dataclass
class LoadTestOptions:
    """Shape of one load-test run."""

    clients: int = 8
    #: Warm-phase requests each client issues (round-robin over the specs).
    requests_per_client: int = 4
    #: Run the overload phase (burst of distinct fresh scenarios).
    overload: bool = False
    #: Overload burst size (0: 4× the pool's total admission bound is a good
    #: default, but the harness cannot see the server config — so explicit).
    overload_requests: int = 32
    timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be at least 1 (got {self.clients})")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be at least 1 (got {self.requests_per_client})"
            )


@dataclass
class LoadTestReport:
    """Everything one load-test run measured."""

    url: str
    num_scenarios: int
    clients: int
    #: Service replicas driven round-robin (1: classic single-server run).
    replicas: int = 1
    #: Saturation-curve points (clients × workers × replicas), when measured.
    saturation: List[Dict] = field(default_factory=list)
    #: Per-phase latency samples (seconds): cold / warm / overload.
    phase_latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Wall-clock seconds per phase.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: HTTP-status histogram over every request.
    http_statuses: Dict[int, int] = field(default_factory=dict)
    #: Terminal-state histogram over every parsed response.
    states: Dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0
    server_errors: int = 0
    rejections: int = 0
    cache_hits: int = 0
    #: /metrics snapshot taken after the run (in-memory convenience; the
    #: serialized report carries the condensed ``service`` section instead).
    metrics: Dict = field(default_factory=dict)
    #: Server-side headline numbers condensed from the metrics registry
    #: (cache hit rate, pool saturation, runs by status).
    service: Dict = field(default_factory=dict)

    # -- derived ----------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(self.http_statuses.values()) + self.transport_errors

    @property
    def warm_throughput_rps(self) -> float:
        seconds = self.phase_seconds.get("warm", 0.0)
        count = len(self.phase_latencies.get("warm", []))
        return count / seconds if seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        answered = sum(self.states.values())
        return self.cache_hits / answered if answered else 0.0

    @property
    def rejection_rate(self) -> float:
        total = self.total_requests
        return self.rejections / total if total else 0.0

    def percentile(self, phase: str, fraction: float) -> float:
        from ..analysis.service import percentile

        return percentile(self.phase_latencies.get(phase, []), fraction)

    @property
    def speedup_p50(self) -> float:
        """Cold p50 over warm p50 (the ≥ 10× acceptance bar)."""
        warm = self.percentile("warm", 0.5)
        cold = self.percentile("cold", 0.5)
        return cold / warm if warm > 0 else 0.0

    def acceptable(self) -> Tuple[bool, List[str]]:
        """The PR's acceptance bar; returns (ok, list of violated criteria)."""
        problems: List[str] = []
        if self.transport_errors:
            problems.append(f"{self.transport_errors} transport error(s)")
        if self.server_errors:
            problems.append(f"{self.server_errors} 5xx server error(s)")
        failed = self.states.get("error", 0)
        if failed:
            problems.append(f"{failed} run(s) ended in state 'error'")
        if self.cache_hits == 0:
            problems.append("no cache hits observed (warm phase never hit)")
        if self.speedup_p50 < 10.0:
            problems.append(
                f"warm p50 only {self.speedup_p50:.1f}x faster than cold (need >= 10x)"
            )
        return (not problems, problems)

    def headline(self) -> str:
        ok, problems = self.acceptable()
        verdict = "PASS" if ok else "FAIL: " + "; ".join(problems)
        return (
            f"loadtest {self.url}: {self.total_requests} requests, "
            f"{self.clients} clients, {self.num_scenarios} scenarios\n"
            f"  cold p50 {self.percentile('cold', 0.5) * 1000:.1f}ms -> warm p50 "
            f"{self.percentile('warm', 0.5) * 1000:.1f}ms ({self.speedup_p50:.0f}x), "
            f"warm throughput {self.warm_throughput_rps:.1f} req/s\n"
            f"  cache hit rate {self.cache_hit_rate:.0%}, rejections {self.rejections}, "
            f"transport errors {self.transport_errors}, server errors {self.server_errors}\n"
            f"  verdict: {verdict}"
        )

    def to_dict(self) -> Dict:
        from ..analysis.service import latency_summary

        document = {
            "schema": "bench-service",
            "version": 1,
            "url": self.url,
            "clients": self.clients,
            "replicas": self.replicas,
            "num_scenarios": self.num_scenarios,
            "total_requests": self.total_requests,
            "latency_seconds": {
                phase: latency_summary(samples)
                for phase, samples in self.phase_latencies.items()
            },
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
            "speedup_p50": self.speedup_p50,
            "warm_throughput_rps": self.warm_throughput_rps,
            "cache_hit_rate": self.cache_hit_rate,
            "rejection_rate": self.rejection_rate,
            "rejections": self.rejections,
            "transport_errors": self.transport_errors,
            "server_errors": self.server_errors,
            "http_statuses": {str(k): v for k, v in sorted(self.http_statuses.items())},
            "states": dict(sorted(self.states.items())),
            "service": self.service,
        }
        if self.saturation:
            document["saturation"] = self.saturation
        return document


class _Recorder:
    """Thread-safe accumulation of per-request observations."""

    def __init__(self, report: LoadTestReport):
        self.report = report
        self.lock = threading.Lock()

    def observe(
        self,
        phase: str,
        seconds: float,
        status: Optional[int],
        response: Optional[ServiceResponse],
    ) -> None:
        with self.lock:
            report = self.report
            if status is None:
                report.transport_errors += 1
                return
            report.http_statuses[status] = report.http_statuses.get(status, 0) + 1
            if status >= 500 and status != 503:
                report.server_errors += 1
            if status in (429, 503):
                report.rejections += 1
            if response is not None and response.terminal:
                report.states[response.state] = report.states.get(response.state, 0) + 1
                report.phase_latencies.setdefault(phase, []).append(seconds)
                if response.served_from_cache:
                    report.cache_hits += 1


def _drive(
    urls: Sequence[str],
    requests: Sequence[ServiceRequest],
    recorder: _Recorder,
    phase: str,
    timeout: float,
) -> None:
    """One client thread: keep-alive connections, replicas driven round-robin."""
    with RoundRobinClient(urls, timeout=timeout) as client:
        # Render outside the timed loop: the measurement is the service, not
        # this generator's JSON encoder (and replayed identical bytes are
        # exactly what a cache-warm fleet sees).
        wires = [client.render(request) for request in requests]
        for wire in wires:
            start = time.perf_counter()
            try:
                status, response = client.solve_prepared(wire)
            except ServiceClientError:
                recorder.observe(phase, time.perf_counter() - start, None, None)
                continue
            recorder.observe(phase, time.perf_counter() - start, status, response)


def _run_phase(
    urls: Sequence[str],
    phase: str,
    per_client: Sequence[Sequence[ServiceRequest]],
    recorder: _Recorder,
    timeout: float,
) -> float:
    threads = [
        threading.Thread(
            target=_drive, args=(urls, requests, recorder, phase, timeout), daemon=True
        )
        for requests in per_client
        if requests
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def run_loadtest(
    url: Union[str, Sequence[str]],
    specs: Sequence[ScenarioSpec],
    options: Optional[LoadTestOptions] = None,
) -> LoadTestReport:
    """Drive a running service (or replica fleet) through cold/warm(/overload).

    ``url`` may be one base url or a sequence of replica urls; with several,
    every client thread rotates across the fleet round-robin and the phases
    measure aggregate fleet behaviour (the persistent store is the layer
    that keeps replica caches coherent).
    """
    options = options or LoadTestOptions()
    if not specs:
        raise ValueError("loadtest needs at least one scenario spec")
    urls = [url] if isinstance(url, str) else list(url)
    if not urls:
        raise ValueError("loadtest needs at least one service url")
    report = LoadTestReport(
        url=urls[0],
        num_scenarios=len(specs),
        clients=options.clients,
        replicas=len(urls),
    )
    recorder = _Recorder(report)

    # -- cold: every distinct scenario once, recomputation forced --------------
    cold = [ServiceRequest(scenario=spec, fresh=True, tag="cold") for spec in specs]
    per_client: List[List[ServiceRequest]] = [[] for _ in range(options.clients)]
    for index, request in enumerate(cold):
        per_client[index % options.clients].append(request)
    report.phase_seconds["cold"] = _run_phase(
        urls, "cold", per_client, recorder, options.timeout
    )

    # -- warm: concurrent clients replaying the same scenarios -----------------
    warm_per_client = []
    for client_index in range(options.clients):
        batch = [
            ServiceRequest(scenario=specs[(client_index + i) % len(specs)], tag="warm")
            for i in range(options.requests_per_client)
        ]
        warm_per_client.append(batch)
    report.phase_seconds["warm"] = _run_phase(
        urls, "warm", warm_per_client, recorder, options.timeout
    )

    # -- overload: a burst of distinct fresh scenarios beyond admission --------
    if options.overload:
        burst = [
            ServiceRequest(
                scenario=replace(specs[i % len(specs)], seed=10_000 + i),
                fresh=True,
                tag="overload",
            )
            for i in range(options.overload_requests)
        ]
        overload_per_client: List[List[ServiceRequest]] = [
            [] for _ in range(options.clients)
        ]
        for index, request in enumerate(burst):
            overload_per_client[index % options.clients].append(request)
        report.phase_seconds["overload"] = _run_phase(
            urls, "overload", overload_per_client, recorder, options.timeout
        )

    try:
        with ServiceClient(urls[0], timeout=options.timeout) as client:
            report.metrics = client.metrics()
    except ServiceClientError:
        report.metrics = {}
    report.service = service_summary(report.metrics)
    return report


# ---------------------------------------------------------------------------
# saturation curve
# ---------------------------------------------------------------------------

def _saturate_thread(
    urls: Sequence[str],
    wires: Sequence[bytes],
    offset: int,
    deadline: float,
    timeout: float,
    results: List[Tuple[int, List[float], int, int]],
    index: int,
) -> None:
    completed = 0
    latencies: List[float] = []
    errors = 0
    rejections = 0
    try:
        with RoundRobinClient(urls, timeout=timeout) as client:
            cursor = offset
            while time.perf_counter() < deadline:
                wire = wires[cursor % len(wires)]
                cursor += 1
                start = time.perf_counter()
                try:
                    status, response = client.solve_prepared(wire)
                except ServiceClientError:
                    errors += 1
                    continue
                elapsed = time.perf_counter() - start
                if status in (429, 503):
                    rejections += 1
                elif status >= 500 or not response.terminal:
                    errors += 1
                else:
                    completed += 1
                    latencies.append(elapsed)
    except ServiceClientError:
        errors += 1
    results[index] = (completed, latencies, errors, rejections)


def run_saturation(
    urls: Union[str, Sequence[str]],
    specs: Sequence[ScenarioSpec],
    clients_grid: Sequence[int] = (1, 2, 4, 8),
    duration: float = 1.0,
    http_workers: int = 1,
    timeout: float = 30.0,
) -> List[Dict]:
    """Measure warm throughput at increasing concurrency; one dict per point.

    Assumes the fleet is already warm for ``specs`` (run a loadtest or replay
    the cold phase first): every request should be a cache hit, so the curve
    isolates the serving front end.  Each point drives N client threads for
    ``duration`` seconds and reports aggregate throughput plus latency
    percentiles; ``http_workers`` is carried into the point verbatim so the
    published curve is self-describing (clients × workers × replicas).
    """
    from ..analysis.service import percentile

    if not specs:
        raise ValueError("saturation needs at least one scenario spec")
    url_list = [urls] if isinstance(urls, str) else list(urls)
    probe = RoundRobinClient(url_list, timeout=timeout)
    wires = [
        probe.render(ServiceRequest(scenario=spec, tag="saturation")) for spec in specs
    ]
    probe.close()
    points: List[Dict] = []
    for clients in clients_grid:
        if clients < 1:
            raise ValueError(f"clients must be positive (got {clients})")
        results: List[Tuple[int, List[float], int, int]] = [(0, [], 0, 0)] * clients
        deadline = time.perf_counter() + duration
        threads = [
            threading.Thread(
                target=_saturate_thread,
                args=(url_list, wires, offset, deadline, timeout, results, offset),
                daemon=True,
            )
            for offset in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        completed = sum(entry[0] for entry in results)
        latencies = sorted(
            sample for entry in results for sample in entry[1]
        )
        errors = sum(entry[2] for entry in results)
        rejections = sum(entry[3] for entry in results)
        points.append(
            {
                "clients": clients,
                "http_workers": http_workers,
                "replicas": len(url_list),
                "seconds": round(elapsed, 6),
                "requests": completed,
                "throughput_rps": round(completed / elapsed, 3) if elapsed > 0 else 0.0,
                "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
                "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
                "errors": errors,
                "rejections": rejections,
            }
        )
    return points


__all__ = [
    "FastServiceClient",
    "LoadTestOptions",
    "LoadTestReport",
    "RoundRobinClient",
    "ServiceClient",
    "ServiceClientError",
    "run_loadtest",
    "run_saturation",
    "service_summary",
]
