"""Request/response contract of the serving layer.

A :class:`ServiceRequest` wraps one :class:`~repro.experiments.scenario.
ScenarioSpec` plus serving knobs; a :class:`ServiceResponse` reports how the
service resolved it — from which cache tier, after how long, and with which
:class:`~repro.experiments.store.RunRecord` (embedded as a document, so a
response is self-describing without the service that produced it).

States split in two families:

* *terminal pipeline outcomes* mirror the run-record statuses (``ok``,
  ``infeasible``, ``timeout``, ``error``) — all of these are HTTP 200: an
  infeasible instance is a result, not a server failure;
* *service-level states*: ``rejected`` (backpressure/draining; HTTP 429/503
  with a retry-after hint), ``invalid`` (malformed request; HTTP 400),
  ``pending``/``running`` (asynchronous submissions in flight; HTTP 202).

The JSON schemas live with every other artifact schema in
:mod:`repro.io.serialization` (``service_request_to_dict`` & friends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..experiments.scenario import ScenarioSpec
from ..experiments.store import RUN_STATUSES

#: Service-level states (terminal pipeline states are the run statuses).
STATE_REJECTED = "rejected"
STATE_INVALID = "invalid"
STATE_PENDING = "pending"
STATE_RUNNING = "running"
SERVICE_STATES = RUN_STATUSES + (
    STATE_REJECTED,
    STATE_INVALID,
    STATE_PENDING,
    STATE_RUNNING,
)

#: How a response was resolved against the content-addressed cache.
CACHE_HIT = "hit"  # in-memory LRU tier
CACHE_STORE = "store"  # persistent JSONL tier, promoted to memory
CACHE_COALESCED = "coalesced"  # joined an identical in-flight computation
CACHE_MISS = "miss"  # computed by the worker pool
CACHE_BYPASS = "bypass"  # request forced recomputation (``fresh=True``)
CACHE_OUTCOMES = (CACHE_HIT, CACHE_STORE, CACHE_COALESCED, CACHE_MISS, CACHE_BYPASS, "")


class ServiceRequestError(ValueError):
    """Raised for structurally invalid service requests."""


@dataclass(frozen=True)
class ServiceRequest:
    """One solve/simulate request: a scenario plus serving knobs."""

    scenario: ScenarioSpec
    #: Per-request compute budget (overrides the server default when set);
    #: enforced in the worker via SIGALRM + the ILP backend's native limit.
    timeout_seconds: Optional[float] = None
    #: Skip cache lookup and recompute (the result still refreshes the cache).
    fresh: bool = False
    #: Optional client-supplied tag echoed back in the response (tracing).
    tag: str = ""

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and not self.timeout_seconds > 0:
            raise ServiceRequestError(
                f"timeout_seconds must be positive when set (got {self.timeout_seconds!r})"
            )

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    def to_dict(self) -> Dict:
        from ..io.serialization import service_request_to_dict

        return service_request_to_dict(self)

    @staticmethod
    def from_dict(document: Dict) -> "ServiceRequest":
        from ..io.serialization import service_request_from_dict

        return service_request_from_dict(document)


@dataclass
class ServiceResponse:
    """How the service resolved one request."""

    state: str
    scenario_id: str = ""
    request_id: str = ""
    #: One of :data:`CACHE_OUTCOMES` ("" while pending/rejected/invalid).
    cache: str = ""
    #: The run-record document for terminal pipeline states, else ``None``.
    record: Optional[Dict] = None
    message: str = ""
    #: Client-supplied tag echoed from the request.
    tag: str = ""
    #: Seconds the request spent queued/admitted before compute started.
    queue_seconds: float = 0.0
    #: Seconds of worker-pool compute (0 for cache hits).
    compute_seconds: float = 0.0
    #: Suggested back-off for ``rejected`` responses (HTTP Retry-After).
    retry_after_seconds: Optional[float] = None
    #: Free-form serving metadata (worker counts, drain flags, ...).
    info: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.state not in SERVICE_STATES:
            raise ServiceRequestError(
                f"unknown service state {self.state!r}; expected one of {SERVICE_STATES}"
            )
        if self.cache not in CACHE_OUTCOMES:
            raise ServiceRequestError(
                f"unknown cache outcome {self.cache!r}; expected one of {CACHE_OUTCOMES}"
            )

    # -- queries ----------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        """True once the request has a final pipeline outcome."""
        return self.state in RUN_STATUSES

    @property
    def ok(self) -> bool:
        return self.state == "ok"

    @property
    def served_from_cache(self) -> bool:
        return self.cache in (CACHE_HIT, CACHE_STORE, CACHE_COALESCED)

    @property
    def http_status(self) -> int:
        """The HTTP status code this response travels under."""
        if self.state in RUN_STATUSES:
            return 200
        if self.state in (STATE_PENDING, STATE_RUNNING):
            return 202
        if self.state == STATE_INVALID:
            return 400
        # rejected: 429 under backpressure, 503 while draining
        return 503 if self.info.get("draining") else 429

    def to_dict(self) -> Dict:
        from ..io.serialization import service_response_to_dict

        return service_response_to_dict(self)

    @staticmethod
    def from_dict(document: Dict) -> "ServiceResponse":
        from ..io.serialization import service_response_from_dict

        return service_response_from_dict(document)
