"""Pre-fork HTTP front end: N server processes sharing one port.

One Python process tops out far below the serving targets the roadmap sets —
the GIL serializes request handling no matter how many threads the
``ThreadingHTTPServer`` spawns.  :class:`PreforkServer` runs ``http_workers``
*processes*, each a full :class:`~repro.service.server.SolveService` with its
own sharded cache, compute pool and metrics registry, all accepting on the
same address:

* **SO_REUSEPORT** (Linux, the primary mode): every worker binds its own
  listening socket on the shared port and the kernel load-balances incoming
  connections across them — no accept lock, no passing file descriptors.
  The parent holds a bound-but-not-listening probe socket so the port stays
  reserved (and port 0 resolves) without ever stealing a connection.
* **shared-listener fallback** (no SO_REUSEPORT): the parent binds and
  listens once and ships the socket to every spawned worker through
  :mod:`multiprocessing`'s fd-passing reduction; workers compete on
  ``accept``.

State that must be shared is shared through files, not memory: the
persistent JSONL tier is the common warm layer (any worker's computation
warms every other worker via :meth:`~repro.experiments.store.ResultStore.
refresh`), and the event log appends under ``flock``.  Per-worker metrics
come back to the parent on shutdown via the ``MetricsRegistry.drain()``
snapshot hand-off and merge into one fleet-wide registry.

Inside each worker, :class:`_TurboHandler` short-circuits ``POST /solve`` —
by far the hottest verb — before any of ``http.server``'s generic machinery
runs: a single readline header scan, a memoized body→request parse, the
:meth:`~repro.service.server.SolveService.try_fast` warm path, and one
``write`` for the whole response.  Every other verb/path falls through to
the stock :class:`~repro.service.server._ServiceHandler` routes unchanged.
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import socket
import threading
import time
import uuid
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional

from .api import STATE_INVALID, ServiceRequest, ServiceRequestError, ServiceResponse
from .server import ServiceConfig, SolveService, _parse_request, _ServiceHandler

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    411: "Length Required",
    413: "Content Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Memoized raw-body-bytes -> parsed request.  Loadtests (and real fleets
#: replaying popular scenarios) send byte-identical bodies thousands of
#: times; parsing JSON + rebuilding the spec + hashing the scenario id costs
#: more than the rest of the warm path combined.  Bounded by periodic clear.
_PARSE_CACHE: Dict[bytes, ServiceRequest] = {}
_PARSE_CACHE_LIMIT = 4096


def _parse_body_cached(body: bytes) -> ServiceRequest:
    """Parse a ``/solve`` body, memoized on the exact bytes."""
    request = _PARSE_CACHE.get(body)
    if request is None:
        request = _parse_request(json.loads(body.decode("utf-8")))
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[body] = request
    return request


class _TurboHandler(_ServiceHandler):
    """:class:`_ServiceHandler` with a hand-rolled ``POST /solve`` hot path."""

    def handle_one_request(self) -> None:  # noqa: C901 - mirrors the stdlib shape
        try:
            self.raw_requestline = self.rfile.readline(65537)
            if len(self.raw_requestline) > 65536:
                self.requestline = ""
                self.request_version = ""
                self.command = ""
                self.send_error(414)
                return
            if not self.raw_requestline:
                self.close_connection = True
                return
            if self.raw_requestline.startswith(b"POST /solve "):
                self._fast_solve()
                return
            # Anything else: the stock http.server machinery, verbatim.
            if not self.parse_request():
                return
            method_name = "do_" + self.command
            if not hasattr(self, method_name):
                self.send_error(501, f"Unsupported method ({self.command!r})")
                return
            getattr(self, method_name)()
            self.wfile.flush()
        except TimeoutError as error:
            self.log_error("Request timed out: %r", error)
            self.close_connection = True

    # -- hot path ---------------------------------------------------------------
    def _fast_solve(self) -> None:
        """One ``POST /solve`` with minimal framing: readline header scan,
        memoized parse, ``try_fast`` warm answer, single response write."""
        rfile = self.rfile
        content_length = -1
        request_id = ""
        expect_continue = False
        self.close_connection = False
        while True:
            line = rfile.readline(65537)
            if not line or line in (b"\r\n", b"\n"):
                break
            key, _, value = line.partition(b":")
            key = key.strip().lower()
            if key == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -2
            elif key == b"x-request-id":
                request_id = value.strip().decode("latin-1", "replace")
            elif key == b"connection":
                if value.strip().lower() == b"close":
                    self.close_connection = True
            elif key == b"expect":
                if value.strip().lower() == b"100-continue":
                    expect_continue = True
        config = self.service.config
        if content_length == -1:
            self._fast_json(411, {"error": "Content-Length required"}, close=True)
            return
        if content_length < 0:
            self._fast_json(
                400, {"error": "Content-Length must be a non-negative integer"},
                close=True,
            )
            return
        if content_length > config.max_body_bytes:
            self._fast_json(
                413,
                {
                    "error": (
                        f"request body of {content_length} bytes exceeds the "
                        f"{config.max_body_bytes}-byte limit"
                    )
                },
                close=True,
            )
            return
        if expect_continue:
            self.wfile.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        body = rfile.read(content_length)
        if len(body) < content_length:
            self.close_connection = True
            return
        if not (request_id and len(request_id) <= 128 and request_id.isprintable()):
            request_id = f"req-{uuid.uuid4().hex[:12]}"
        self.request_id = request_id
        try:
            request = _parse_body_cached(body)
        except (ValueError, TypeError, ServiceRequestError) as error:
            response = ServiceResponse(state=STATE_INVALID, message=str(error))
            response.request_id = request_id
            self._fast_json(response.http_status, response.to_dict())
            return
        payload = self.service.try_fast(request, request_id)
        if payload is not None:
            self._fast_send(200, payload)
            return
        # Cold/coalesced/draining/fresh: the full resolution machinery.
        response = self.service.resolve(request, request_id=request_id)
        payload = (json.dumps(response.to_dict(), sort_keys=True) + "\n").encode()
        self._fast_send(
            response.http_status, payload, retry_after=response.retry_after_seconds
        )

    def _fast_json(self, status: int, document: Dict, close: bool = False) -> None:
        if close:
            self.close_connection = True
        payload = (json.dumps(document, sort_keys=True) + "\n").encode()
        self._fast_send(status, payload)

    def _fast_send(
        self, status: int, payload: bytes, retry_after: Optional[float] = None
    ) -> None:
        """Status line + headers + body in one buffer, one ``write``."""
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if self.request_id:
            head += f"X-Request-Id: {self.request_id}\r\n"
        if retry_after is not None:
            head += f"Retry-After: {max(1, round(retry_after))}\r\n"
        head += (
            "Connection: close\r\n\r\n"
            if self.close_connection
            else "Connection: keep-alive\r\n\r\n"
        )
        self.wfile.write(head.encode("latin-1") + payload)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _bind_reuseport(host: str, port: int, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    if listen:
        sock.listen(128)
    return sock


class _WorkerHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` adopting an already-bound, listening socket."""

    def __init__(self, sock: socket.socket, handler) -> None:
        super().__init__(sock.getsockname()[:2], handler, bind_and_activate=False)
        self.socket.close()  # the unbound one the base class minted
        self.socket = sock
        host, port = sock.getsockname()[:2]
        self.server_name = host
        self.server_port = port
        self.daemon_threads = True


def _worker_main(
    config: ServiceConfig,
    conn,
    listener: Optional[socket.socket],
    port: int,
    quiet: bool,
) -> None:
    """One pre-fork worker: a full service + accept loop, parent-controlled.

    Protocol on ``conn``: the worker sends ``("ready", port)`` once it is
    accepting (or ``("error", message)``), then blocks for the parent's
    ``"stop"``; on stop it drains, sends ``("metrics", snapshot)`` — the
    ``MetricsRegistry.drain()`` hand-off the parent merges — and exits.
    """
    # Shutdown is orchestrated by the parent over the pipe; a terminal
    # Ctrl-C must not yank workers out from under in-flight requests.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        service = SolveService(config)
        if listener is None:
            listener = _bind_reuseport(config.host, port, listen=True)
        handler = type(
            "BoundTurboHandler",
            (_TurboHandler,),
            {"service": service, "quiet": quiet},
        )
        httpd = _WorkerHTTPServer(listener, handler)
    except Exception as error:  # noqa: BLE001 - the parent needs the reason
        conn.send(("error", f"{type(error).__name__}: {error}"))
        return
    thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="prefork-accept",
        daemon=True,
    )
    thread.start()
    conn.send(("ready", httpd.server_port))
    try:
        while True:
            message = conn.recv()
            if message == "stop":
                break
    except (EOFError, OSError):
        pass  # the parent went away; drain and exit anyway
    service.begin_drain()
    httpd.shutdown()
    httpd.server_close()
    service.drain(timeout=30.0)
    try:
        conn.send(("metrics", service.registry.drain()))
    except (BrokenPipeError, OSError):
        pass


# ---------------------------------------------------------------------------
# parent
# ---------------------------------------------------------------------------

class PreforkServer:
    """N worker processes accepting on one shared port (see module docs).

    API mirrors :class:`~repro.service.server.ServiceServer` — ``start()`` /
    ``serve_forever()`` / ``stop()`` / ``url`` — so the CLI and the
    benchmarks treat the two interchangeably.  After ``stop()``,
    :attr:`registry` holds the merged per-worker metrics.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        quiet: bool = True,
        reuse_port: Optional[bool] = None,
    ):
        self.config = config or ServiceConfig()
        if self.config.http_workers < 1:
            raise ValueError(
                f"http_workers must be at least 1 (got {self.config.http_workers})"
            )
        self.quiet = quiet
        self.reuse_port = (
            hasattr(socket, "SO_REUSEPORT") if reuse_port is None else reuse_port
        )
        from ..obs import MetricsRegistry

        #: Fleet-wide metrics, merged from worker ``drain()`` snapshots.
        self.registry = MetricsRegistry()
        self._listener: Optional[socket.socket] = None
        self._probe: Optional[socket.socket] = None
        self._workers: List[multiprocessing.Process] = []
        self._pipes: List = []
        self._port = 0
        self._stopped = threading.Event()

    # -- addresses --------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle --------------------------------------------------------------
    def start(self, ready_timeout: float = 60.0) -> "PreforkServer":
        """Bind, spawn every worker, and wait until all of them accept."""
        if self.reuse_port:
            # Bound but *not* listening: reserves the port (resolving port 0)
            # without joining the kernel's connection distribution — only the
            # workers' listening sockets ever receive a connection.
            self._probe = _bind_reuseport(self.config.host, self.config.port, listen=False)
            self._port = self._probe.getsockname()[1]
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(128)
            self._listener = listener
            self._port = listener.getsockname()[1]
        context = multiprocessing.get_context(self.config.start_method)
        for index in range(self.config.http_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    self.config,
                    child_conn,
                    self._listener,
                    self._port,
                    self.quiet,
                ),
                # Not daemonic: each worker runs its own compute pool (child
                # processes), which daemonic processes may not have.  Orphan
                # protection comes from the pipe instead — a worker that sees
                # EOF on its control pipe drains and exits.
                name=f"repro-http-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._pipes.append(parent_conn)
        deadline = time.monotonic() + ready_timeout
        for index, conn in enumerate(self._pipes):
            remaining = max(0.1, deadline - time.monotonic())
            if not conn.poll(remaining):
                self.stop(drain_timeout=1.0)
                raise RuntimeError(f"http worker {index} did not come up in {ready_timeout:g}s")
            kind, detail = conn.recv()
            if kind != "ready":
                self.stop(drain_timeout=1.0)
                raise RuntimeError(f"http worker {index} failed to start: {detail}")
        return self

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`stop` (the CLI foreground)."""
        self._stopped.wait()

    def stop(self, drain_timeout: Optional[float] = 60.0) -> bool:
        """Drain every worker, merge its metrics snapshot, reap processes."""
        timeout = 60.0 if drain_timeout is None else drain_timeout
        for conn in self._pipes:
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
        clean = True
        deadline = time.monotonic() + timeout
        for conn in self._pipes:
            try:
                if conn.poll(max(0.1, deadline - time.monotonic())):
                    kind, payload = conn.recv()
                    if kind == "metrics":
                        self.registry.merge(payload)
                    else:
                        clean = False
                else:
                    clean = False
            except (EOFError, OSError):
                clean = False
            finally:
                conn.close()
        for process in self._workers:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
                clean = False
        self._workers.clear()
        self._pipes.clear()
        for sock in (self._probe, self._listener):
            if sock is not None:
                sock.close()
        self._probe = None
        self._listener = None
        self._stopped.set()
        return clean


__all__ = ["PreforkServer"]
