"""Concurrent solve/simulate serving layer.

Turns the one-shot pipeline into a long-lived service traffic can hit:

* :mod:`repro.service.api`    — the request/response contract
  (:class:`ServiceRequest`/:class:`ServiceResponse`, serialized in
  :mod:`repro.io.serialization`);
* :mod:`repro.service.cache`  — content-addressed result cache keyed on
  ``scenario_id``: in-memory LRU + persistent JSONL tier
  (:class:`~repro.experiments.store.ResultStore`) + single-flight
  coalescing of concurrent identical requests;
* :mod:`repro.service.pool`   — bounded worker pool over the spawn-based
  pipeline runner, with per-request timeouts and explicit backpressure;
* :mod:`repro.service.server` — the transport-independent
  :class:`SolveService` core and the ``ThreadingHTTPServer`` front end
  (submit/status/result/health/metrics endpoints, NDJSON batch streaming,
  graceful SIGINT/SIGTERM drain);
* :mod:`repro.service.prefork` — the multi-process pre-fork front end:
  ``http_workers`` server processes sharing one port (SO_REUSEPORT, or a
  shared inherited listener), the JSONL store as the cross-process warm
  layer, and a hand-rolled ``POST /solve`` hot path;
* :mod:`repro.service.client` — stdlib HTTP client, the raw-socket
  :class:`FastServiceClient` / round-robin replica fan-out, and the
  cold/warm/overload + saturation load-generator harness behind
  ``repro loadtest``.

``repro serve`` boots the server; latency/throughput reporting lives in
:mod:`repro.analysis.service`.
"""

from .api import (
    CACHE_OUTCOMES,
    SERVICE_STATES,
    STATE_INVALID,
    STATE_PENDING,
    STATE_REJECTED,
    STATE_RUNNING,
    ServiceRequest,
    ServiceRequestError,
    ServiceResponse,
)
from .cache import CACHEABLE_STATUSES, ResultCache
from .client import (
    FastServiceClient,
    LoadTestOptions,
    LoadTestReport,
    RoundRobinClient,
    ServiceClient,
    ServiceClientError,
    run_loadtest,
    run_saturation,
    service_summary,
)
from .pool import PoolDraining, PoolSaturated, ServicePool
from .prefork import PreforkServer
from .server import ServiceConfig, ServiceServer, SolveService

__all__ = [
    "CACHEABLE_STATUSES",
    "CACHE_OUTCOMES",
    "SERVICE_STATES",
    "STATE_INVALID",
    "STATE_PENDING",
    "STATE_REJECTED",
    "STATE_RUNNING",
    "FastServiceClient",
    "LoadTestOptions",
    "LoadTestReport",
    "PoolDraining",
    "PoolSaturated",
    "PreforkServer",
    "ResultCache",
    "RoundRobinClient",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceRequestError",
    "ServiceResponse",
    "ServiceServer",
    "ServicePool",
    "SolveService",
    "run_loadtest",
    "run_saturation",
    "service_summary",
]
