"""The serving layer: request resolution core + HTTP front end.

Two classes, deliberately separated:

* :class:`SolveService` is the transport-independent core.  It resolves
  :class:`~repro.service.api.ServiceRequest` objects against the
  content-addressed :class:`~repro.service.cache.ResultCache` (memory LRU,
  persistent JSONL tier, single-flight coalescing) and dispatches cold
  requests onto the bounded :class:`~repro.service.pool.ServicePool`.
  Every request resolves to exactly one
  :class:`~repro.service.api.ServiceResponse`; overload resolves to an
  explicit rejection with a retry-after hint, never an unbounded queue.

* :class:`ServiceServer` wraps the core in a ``ThreadingHTTPServer``:

  ============================  ======  =========================================
  endpoint                      method  behaviour
  ============================  ======  =========================================
  ``/healthz``                  GET     liveness: version, uptime, drain state
  ``/metrics``                  GET     counters, cache/pool stats, latency pcts
  ``/events``                   GET     live SSE stream of structured events
  ``/dashboard``                GET     one JSON snapshot: metrics + recent events
  ``/solve``                    POST    synchronous solve/simulate (one JSON doc)
  ``/batch``                    POST    NDJSON stream, one response line per spec
  ``/submit``                   POST    asynchronous solve -> ``request_id``
  ``/status/<id>``              GET     state of an asynchronous submission
  ``/result/<id>``              GET     response of a finished submission
  ``/optimize``                 POST    start an optimization campaign -> id
  ``/optimize/status[/<id>]``   GET     campaign list / one campaign's state
  ============================  ======  =========================================

  ``/events`` speaks Server-Sent Events (``text/event-stream``): one
  ``id:``/``event:``/``data:`` frame per structured event, a ``: keep-alive``
  comment while idle, replay of the retained ring via ``?since=SEQ`` or the
  standard ``Last-Event-ID`` header (the reconnect path).  A slow or dead
  client drops events, it never stalls the service.

  Terminal pipeline outcomes (``ok``/``infeasible``/``timeout``/``error``)
  travel as HTTP 200 — an infeasible instance is an answer.  Backpressure is
  429 with ``Retry-After``, draining is 503, malformed input is 400.

Shutdown: ``stop()`` (the CLI wires it to SIGINT/SIGTERM) flips the service
into draining mode — new work is rejected with 503, in-flight requests run
to completion, the worker pool drains, and only then does the listening
socket close.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
import uuid
from collections import Counter, deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..experiments.scenario import ScenarioSpec
from ..obs import AlertMonitor, EventLog, MetricsRegistry, parse_rules, span
from ..experiments.store import (
    STATUS_ERROR,
    STATUS_TIMEOUT,
    ResultStore,
    RunRecord,
)
from .api import (
    CACHE_MISS,
    STATE_INVALID,
    STATE_PENDING,
    STATE_REJECTED,
    STATE_RUNNING,
    ServiceRequest,
    ServiceRequestError,
    ServiceResponse,
)
from .cache import ResultCache
from .pool import PoolDraining, PoolSaturated, ServicePool


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service instance."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port (read it back from ``ServiceServer.port``).
    port: int = 8321
    workers: int = 2
    #: Cold requests allowed to wait beyond the computing ones; one more
    #: concurrent cold request is rejected with 429 + Retry-After.
    max_pending: int = 8
    cache_capacity: int = 1024
    #: Default per-request compute budget (requests may override).
    timeout_seconds: Optional[float] = None
    #: Hard service-side ceiling on one computation when no timeout is set —
    #: the backstop that stops a wedged worker from consuming a pool slot
    #: (and blocking its leader thread) forever.
    max_compute_seconds: float = 3600.0
    #: Path of the persistent JSONL cache tier (None: memory only).
    store_path: Optional[str] = None
    #: How long a coalesced follower waits for its leader before erroring.
    coalesce_wait_seconds: float = 600.0
    #: Independently locked cache shards (keyed by scenario_id prefix).
    cache_shards: int = 8
    #: Largest request body accepted before answering 413 — the bound that
    #: stops a hostile or buggy Content-Length from driving an unbounded
    #: read/allocation on the handler thread.
    max_body_bytes: int = 8 * 1024 * 1024
    #: HTTP worker *processes*.  1 keeps the in-process ThreadingHTTPServer;
    #: >1 serves through the pre-fork accept loop (:mod:`repro.service.
    #: prefork`), one process per worker sharing the port via SO_REUSEPORT
    #: (or a shared inherited listener where unavailable).
    http_workers: int = 1
    #: Spawn the worker processes at startup instead of on first request.
    warm_up: bool = True
    start_method: str = "spawn"
    #: Retained for configuration compatibility; latency percentiles now come
    #: from fixed-bucket histograms (constant memory), not a reservoir.
    reservoir: int = 4096
    #: Structured events retained in memory (the SSE replay / dashboard tail).
    events_capacity: int = 2048
    #: Optional JSONL sink every event appends to (flock-safe).
    events_path: Optional[str] = None
    #: Alert rule specs evaluated server-side over the metrics registry;
    #: firings surface as ``alert.fired`` events on ``/events``.
    alert_rules: Tuple[str, ...] = ()
    #: Seconds between server-side alert evaluations.
    alert_interval: float = 1.0


@dataclass
class _Submission:
    """Registry entry of one asynchronous ``/submit`` request."""

    request_id: str
    scenario_id: str
    state: str = STATE_PENDING
    response: Optional[ServiceResponse] = None
    done: threading.Event = field(default_factory=threading.Event)


@dataclass
class _Campaign:
    """Registry entry of one ``/optimize`` campaign running on the service."""

    campaign_id: str
    optimizer: str
    objective: str
    budget: int
    seed: int
    preset: str = ""
    state: str = "running"  # running | done | failed
    steps: int = 0
    evaluations: int = 0
    baseline_score: Optional[float] = None
    best_score: Optional[float] = None
    best_scenario_id: str = ""
    error: str = ""
    #: The full ``optimize-report`` document once the campaign finishes.
    report: Optional[Dict] = None
    done: threading.Event = field(default_factory=threading.Event)

    def summary(self) -> Dict:
        return {
            "campaign_id": self.campaign_id,
            "state": self.state,
            "preset": self.preset,
            "optimizer": self.optimizer,
            "objective": self.objective,
            "budget": self.budget,
            "seed": self.seed,
            "steps": self.steps,
            "evaluations": self.evaluations,
            "baseline_score": self.baseline_score,
            "best_score": self.best_score,
            "best_scenario_id": self.best_scenario_id,
            "error": self.error,
        }

    def detail(self) -> Dict:
        document = self.summary()
        document["schema"] = "optimize-status"
        document["version"] = 1
        if self.report is not None:
            document["report"] = self.report
        return document


class SolveService:
    """Transport-independent request resolution (cache -> coalesce -> pool)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        store = (
            ResultStore(self.config.store_path)
            if self.config.store_path
            else None
        )
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            store=store,
            shards=self.config.cache_shards,
        )
        self.pool = ServicePool(
            workers=self.config.workers,
            max_pending=self.config.max_pending,
            start_method=self.config.start_method,
        )
        self._draining = False
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._states: Counter = Counter()
        self._active = 0
        #: Per-instance registry: request counters, latency histograms, and
        #: the per-run metrics every pool worker serializes back.  Latency
        #: percentiles derive from the shared histogram buckets — bounded
        #: memory under sustained load, one source of truth for both the
        #: JSON and the Prometheus exposition.
        self.registry = MetricsRegistry()
        for tier in ("cold", "warm", "coalesced"):
            self.registry.histogram(
                "repro_request_seconds",
                "Terminal request latency by cache tier",
                tier=tier,
            )
        #: Prefetched metric handles for :meth:`try_fast` — the registry
        #: lookup (name + label matching) is measurable at fast-path rates.
        self._warm_seconds = self.registry.histogram(
            "repro_request_seconds", tier="warm"
        )
        self._fast_counters: Dict[str, object] = {}
        #: Per-instance structured event log: the operational moments the
        #: ``/events`` SSE stream, ``/dashboard`` and ``repro top`` observe.
        self.events = EventLog(
            capacity=self.config.events_capacity, path=self.config.events_path
        )
        #: Server-side alert evaluation (rules from the config), firing
        #: ``alert.fired``/``alert.resolved`` events into the same stream.
        self.alerts: Optional[AlertMonitor] = None
        if self.config.alert_rules:
            self.alerts = AlertMonitor(
                self._alert_snapshot,
                parse_rules(list(self.config.alert_rules)),
                interval=self.config.alert_interval,
                events=self.events,
            ).start()
        self._submissions: Dict[str, _Submission] = {}
        self._submission_order: deque = deque()
        self._request_ids = itertools.count(1)
        self._campaigns: Dict[str, _Campaign] = {}
        self._campaign_order: deque = deque()
        self._campaign_ids = itertools.count(1)
        if self.config.warm_up:
            self.pool.warm_up()
        self.events.emit(
            "service.started",
            "service",
            workers=self.config.workers,
            max_pending=self.config.max_pending,
            alert_rules=len(self.config.alert_rules),
        )

    def _alert_snapshot(self) -> Dict:
        """The registry snapshot the server-side alert rules evaluate."""
        self._sync_gauges()
        return self.registry.snapshot()

    # -- bookkeeping ------------------------------------------------------------
    def _observe(self, response: ServiceResponse, seconds: float) -> None:
        with self._lock:
            self._states[response.state] += 1
        self.registry.counter(
            "repro_requests_total", "Requests resolved, by final state",
            state=response.state,
        ).inc()
        if response.terminal:
            bucket = (
                "coalesced"
                if response.cache == "coalesced"
                else ("warm" if response.served_from_cache else "cold")
            )
            self.registry.histogram("repro_request_seconds", tier=bucket).observe(
                seconds
            )

    def _next_request_id(self) -> str:
        return f"req-{next(self._request_ids):06d}"

    @property
    def draining(self) -> bool:
        return self._draining

    # -- resolution -------------------------------------------------------------
    def resolve(
        self, request: ServiceRequest, request_id: str = ""
    ) -> ServiceResponse:
        """Resolve one request to a terminal or rejected response (blocking).

        ``request_id`` (client-supplied or front-end generated) is echoed on
        the response and stamped on the request's span so one id follows a
        request through logs, traces and the HTTP reply.
        """
        arrival = time.perf_counter()
        with self._lock:
            self._active += 1
        try:
            with span(
                "service.resolve",
                scenario_id=request.scenario_id,
                request_id=request_id,
            ) as sp:
                response = self._resolve_inner(request, arrival)
                sp.set_attr("state", response.state)
                sp.set_attr("cache", response.cache)
        finally:
            with self._lock:
                self._active -= 1
        if request_id and not response.request_id:
            response.request_id = request_id
        seconds = time.perf_counter() - arrival
        self._observe(response, seconds)
        if response.terminal:
            self.events.emit(
                "service.request",
                "service",
                level="debug",
                request_id=request_id,
                scenario_id=request.scenario_id,
                state=response.state,
                cache=response.cache,
                seconds=round(seconds, 6),
            )
        return response

    def _rejected(self, request: ServiceRequest, message: str, retry_after: float) -> ServiceResponse:
        self.events.emit(
            "service.rejected",
            "service",
            level="warning",
            message=message,
            scenario_id=request.scenario_id,
            retry_after=retry_after,
            draining=self._draining,
        )
        return ServiceResponse(
            state=STATE_REJECTED,
            scenario_id=request.scenario_id,
            message=message,
            tag=request.tag,
            retry_after_seconds=retry_after,
            info={"draining": 1.0} if self._draining else {},
        )

    def _terminal(
        self,
        request: ServiceRequest,
        record: RunRecord,
        cache: str,
        arrival: float,
        compute_seconds: float = 0.0,
    ) -> ServiceResponse:
        queue_seconds = max(0.0, time.perf_counter() - arrival - compute_seconds)
        return ServiceResponse(
            state=record.status,
            scenario_id=request.scenario_id,
            cache=cache,
            record=record.to_dict(),
            message=record.message,
            tag=request.tag,
            queue_seconds=queue_seconds,
            compute_seconds=compute_seconds,
        )

    def _resolve_inner(self, request: ServiceRequest, arrival: float) -> ServiceResponse:
        if self._draining:
            return self._rejected(request, "service is draining", retry_after=5.0)
        scenario_id = request.scenario_id

        if not request.fresh:
            record, tier = self.cache.get(scenario_id)
            if record is not None:
                return self._terminal(request, record, tier, arrival)

        leader = False
        for attempt in range(2):  # a follower re-leases once if its leader abandons
            if attempt and not request.fresh:
                # The abandonment may have raced another thread's completion;
                # never recompute a record that is cached by now.
                record, tier = self.cache.get(scenario_id)
                if record is not None:
                    return self._terminal(request, record, tier, arrival)
            flight, leader = self.cache.lease(scenario_id)
            if leader:
                break
            if flight.event.wait(timeout=self.config.coalesce_wait_seconds):
                if flight.record is not None:
                    return self._terminal(request, flight.record, "coalesced", arrival)
                if flight.abandoned and attempt == 0:
                    # The leader gave up without a record (pool rejection,
                    # crash); the pool may have slots again — race the other
                    # followers to lease and lead the retry ourselves.
                    continue
                message = "coalesced computation was abandoned by its leader"
            else:
                message = (
                    f"coalesced computation did not finish within "
                    f"{self.config.coalesce_wait_seconds:g}s"
                )
            # A fabricated failure record did not come from the cache: leave
            # the cache label empty so clients don't count it as a hit.
            record = RunRecord(spec=request.scenario, status=STATUS_ERROR, message=message)
            return self._terminal(request, record, "", arrival)

        # Leader: this request owns the computation for its scenario id.
        timeout = request.timeout_seconds or self.config.timeout_seconds
        try:
            try:
                future = self.pool.submit(request.scenario.to_dict(), timeout)
            except PoolDraining as error:
                self.cache.abandon(scenario_id, flight)
                return self._rejected(request, str(error), error.retry_after_seconds)
            except PoolSaturated as error:
                self.cache.abandon(scenario_id, flight)
                return self._rejected(request, str(error), error.retry_after_seconds)

            compute_start = time.perf_counter()
            # The worker enforces the budget itself (SIGALRM + the backend's
            # native limit); the service-side wait is only a generous backstop
            # against a wedged worker — and it always exists, because a
            # forever-blocked leader would leak a pool slot and a thread.
            backstop = (
                self.config.max_compute_seconds
                if timeout is None
                else timeout * 2.0 + 60.0
            )
            try:
                document = future.result(timeout=backstop)
                obs_payload = document.pop("obs", None)
                if obs_payload:
                    # Worker-side run metrics fold into this instance's
                    # registry before the record is cached or served.
                    self.registry.merge(obs_payload.get("metrics", {}))
                record = RunRecord.from_dict(document)
            except FutureTimeout:
                record = RunRecord(
                    spec=request.scenario,
                    status=STATUS_TIMEOUT,
                    message=f"worker did not answer within the {backstop:g}s backstop",
                )
            except Exception as error:  # noqa: BLE001 - incl. BrokenExecutor
                record = RunRecord(
                    spec=request.scenario,
                    status=STATUS_ERROR,
                    message=f"worker failed: {type(error).__name__}: {error}",
                )
            compute_seconds = time.perf_counter() - compute_start
            self.cache.complete(scenario_id, flight, record)
            cache = "bypass" if request.fresh else CACHE_MISS
            return self._terminal(request, record, cache, arrival, compute_seconds)
        except BaseException:
            self.cache.abandon(scenario_id, flight)
            raise

    # -- fast path --------------------------------------------------------------
    def _fast_counter(self, state: str):
        handle = self._fast_counters.get(state)
        if handle is None:
            handle = self.registry.counter(
                "repro_requests_total", "Requests resolved, by final state",
                state=state,
            )
            self._fast_counters[state] = handle
        return handle

    def try_fast(self, request: ServiceRequest, request_id: str = "") -> Optional[bytes]:
        """Answer a warm memory hit with minimal bookkeeping, or ``None``.

        The serving fast path: one sharded-dict probe, a response body
        assembled from a payload pre-rendered once per record, prefetched
        metric handles — no span, no per-request debug event, no submission
        registry.  Anything that is not a plain warm memory hit (miss,
        ``fresh``, draining, store-tier promotion) returns ``None`` and the
        caller falls back to :meth:`resolve`, which owns the full semantics.

        Returns the complete JSON response body (newline-terminated bytes)
        with the exact ``service-response`` field set, so clients cannot
        tell which path answered.
        """
        if self._draining or request.fresh:
            return None
        arrival = time.perf_counter()
        record = self.cache.get_memory(request.scenario_id)
        if record is None:
            return None
        parts = getattr(record, "_fast_parts", None)
        if parts is None:
            # Everything constant for this record renders once; only
            # request_id, tag and queue_seconds vary per request.
            from ..io.serialization import SCHEMA_VERSION

            parts = (
                '{"schema": "service-response", "version": '
                + str(SCHEMA_VERSION)
                + ', "state": ' + json.dumps(record.status)
                + ', "scenario_id": ' + json.dumps(record.scenario_id)
                + ', "request_id": ',
                ', "cache": "hit", "record": '
                + json.dumps(record.to_dict(), sort_keys=True)
                + ', "message": ' + json.dumps(record.message)
                + ', "tag": ',
                ', "queue_seconds": ',
                ', "compute_seconds": 0.0, "retry_after_seconds": null, "info": {}}\n',
            )
            record._fast_parts = parts  # idempotent; benign if threads race
        seconds = time.perf_counter() - arrival
        with self._lock:
            self._states[record.status] += 1
        self._fast_counter(record.status).inc()
        self._warm_seconds.observe(seconds)
        body = (
            parts[0] + json.dumps(request_id)
            + parts[1] + json.dumps(request.tag)
            + parts[2] + f"{seconds:.6f}" + parts[3]
        )
        return body.encode("utf-8")

    # -- asynchronous submissions ----------------------------------------------
    #: Finished submissions retained for ``/result`` polling.
    _SUBMISSION_HISTORY = 1024

    def submit(self, request: ServiceRequest, request_id: str = "") -> ServiceResponse:
        """Start resolving in the background; answer immediately with an id.

        A client-supplied ``request_id`` becomes the submission id (so the
        caller can poll ``/status/<id>`` with its own correlation id) unless
        it is already taken, in which case a fresh one is generated.
        """
        if self._draining:
            return self._rejected(request, "service is draining", retry_after=5.0)
        with self._lock:
            taken = request_id in self._submissions
        submission = _Submission(
            request_id=(
                request_id if request_id and not taken else self._next_request_id()
            ),
            scenario_id=request.scenario_id,
        )
        with self._lock:
            self._submissions[submission.request_id] = submission
            self._submission_order.append(submission.request_id)
            # Trim history, but never evict a submission that is still in
            # flight: an acknowledged id must stay resolvable until done.
            while len(self._submission_order) > self._SUBMISSION_HISTORY:
                for index, stale_id in enumerate(self._submission_order):
                    stale = self._submissions.get(stale_id)
                    if stale is None or stale.done.is_set():
                        del self._submission_order[index]
                        self._submissions.pop(stale_id, None)
                        break
                else:  # everything retained is still running; allow growth
                    break

        def run() -> None:
            submission.state = STATE_RUNNING
            response = self.resolve(request, request_id=submission.request_id)
            response.request_id = submission.request_id
            submission.response = response
            submission.state = response.state
            submission.done.set()

        threading.Thread(target=run, name=submission.request_id, daemon=True).start()
        return ServiceResponse(
            state=STATE_PENDING,
            scenario_id=submission.scenario_id,
            request_id=submission.request_id,
            tag=request.tag,
        )

    def status(self, request_id: str) -> Optional[ServiceResponse]:
        """The current state of a submission (None for unknown ids)."""
        with self._lock:
            submission = self._submissions.get(request_id)
        if submission is None:
            return None
        if submission.response is not None:
            return submission.response
        return ServiceResponse(
            state=submission.state,
            scenario_id=submission.scenario_id,
            request_id=request_id,
        )

    def wait(self, request_id: str, timeout: Optional[float] = None) -> Optional[ServiceResponse]:
        """Block until a submission finishes; None for unknown ids."""
        with self._lock:
            submission = self._submissions.get(request_id)
        if submission is None:
            return None
        submission.done.wait(timeout=timeout)
        return self.status(request_id)

    # -- batches ----------------------------------------------------------------
    def resolve_batch_completed(
        self, requests: List[ServiceRequest]
    ) -> Iterable[Tuple[int, ServiceResponse]]:
        """Resolve a batch concurrently, yielding ``(index, response)`` pairs
        in *completion* order.

        This is what the ``/batch`` NDJSON stream serves: a fast line (cache
        hit) reaches the client immediately instead of queueing behind a slow
        cold solve that happened to come earlier in the input.  Each pair
        carries its input index so consumers can reorder.  Identical specs
        inside one batch coalesce exactly like concurrent clients would.
        """
        done: "queue.Queue[Tuple[int, ServiceResponse]]" = queue.Queue()
        # Bound the thread fan-out (the pool bounds compute; this bounds the
        # coalescing/waiting threads a huge batch would otherwise spawn).
        slots = threading.Semaphore(64)

        def run(index: int, request: ServiceRequest) -> None:
            try:
                response = self.resolve(request)
            except Exception as error:  # noqa: BLE001 - a batch line never kills the stream
                response = ServiceResponse(
                    state=STATUS_ERROR,
                    scenario_id=request.scenario_id,
                    message=f"unexpected service failure: {type(error).__name__}: {error}",
                    tag=request.tag,
                )
            done.put((index, response))
            slots.release()

        def start_all() -> None:
            for index, request in enumerate(requests):
                slots.acquire()
                threading.Thread(
                    target=run, args=(index, request), name=f"batch-{index}", daemon=True
                ).start()

        # Launch from a producer thread: for batches larger than the slot
        # bound, early responses must stream while later ones still wait to
        # start — the consumer loop below cannot wait for the full fan-out.
        threading.Thread(target=start_all, name="batch-producer", daemon=True).start()
        for _ in range(len(requests)):
            yield done.get()

    def resolve_batch(self, requests: List[ServiceRequest]) -> Iterable[ServiceResponse]:
        """Resolve a batch concurrently, yielding responses in input order.

        Responses stream as soon as they are available *in order* — the
        consumer can act on early results while later ones still compute.
        (The HTTP front end streams :meth:`resolve_batch_completed` instead,
        tagging lines with their index; this wrapper keeps the in-order
        contract for in-process callers.)
        """
        buffered: Dict[int, ServiceResponse] = {}
        next_index = 0
        for index, response in self.resolve_batch_completed(requests):
            buffered[index] = response
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1

    # -- optimization campaigns --------------------------------------------------
    #: Hard ceiling on one campaign's evaluation budget: every evaluation is
    #: a pipeline run on this service's pool, so an unbounded budget would be
    #: an unbounded compute request hiding behind a single POST.
    OPTIMIZE_MAX_BUDGET = 512
    #: Concurrent running campaigns (each fans out onto the shared pool).
    OPTIMIZE_MAX_RUNNING = 2
    #: Finished campaigns retained for ``/optimize/status`` polling.
    _CAMPAIGN_HISTORY = 64

    def start_optimize(self, document: Dict) -> Tuple[int, Dict]:
        """Start an optimization campaign; returns ``(http_status, body)``.

        The campaign runs on a background thread and evaluates every
        candidate through :meth:`resolve` — sharing the cache, coalescing,
        worker pool and metrics with ordinary traffic — while progress is
        published under ``/optimize/status/<id>`` and as ``optimize.*``
        events on the SSE stream.
        """
        from ..optimize import (
            DesignSpace,
            OptimizeError,
            ServiceEvaluator,
            knob_from_dict,
            make_objective,
            make_optimizer,
            preset_space,
            run_campaign,
        )

        if self._draining:
            return 503, {"error": "service is draining", "retry_after_seconds": 5.0}
        if not isinstance(document, dict):
            return 400, {"error": "optimize request must be a JSON object"}
        preset = str(document.get("preset", "slotting-small"))
        try:
            budget = int(document.get("budget", 16))
            seed = int(document.get("seed", 0))
            if not 1 <= budget <= self.OPTIMIZE_MAX_BUDGET:
                raise OptimizeError(
                    f"budget must be between 1 and {self.OPTIMIZE_MAX_BUDGET} "
                    f"evaluations (got {budget})"
                )
            space_document = document.get("space")
            if space_document is not None:
                space = DesignSpace(
                    base=ScenarioSpec.from_dict(space_document["base"]),
                    knobs=tuple(
                        knob_from_dict(knob) for knob in space_document["knobs"]
                    ),
                )
                preset = ""
            else:
                space = preset_space(preset, seed=int(document.get("space_seed", 0)))
            options = document.get("options") or {}
            if not isinstance(options, dict):
                raise OptimizeError("options must be a JSON object")
            optimizer = make_optimizer(
                str(document.get("optimizer", "anneal")), **options
            )
            objective = make_objective(
                str(document.get("objective", "throughput")),
                violation_weight=float(document.get("violation_weight", 0.1)),
            )
        except (OptimizeError, KeyError, TypeError, ValueError) as error:
            return 400, {"error": f"invalid optimize request: {error}"}

        with self._lock:
            running = sum(
                1 for entry in self._campaigns.values() if entry.state == "running"
            )
            if running >= self.OPTIMIZE_MAX_RUNNING:
                return 429, {
                    "error": (
                        f"{running} campaigns already running "
                        f"(limit {self.OPTIMIZE_MAX_RUNNING})"
                    ),
                    "retry_after_seconds": 10.0,
                }
            campaign = _Campaign(
                campaign_id=f"opt-{next(self._campaign_ids):06d}",
                optimizer=optimizer.name,
                objective=objective.name,
                budget=budget,
                seed=seed,
                preset=preset,
            )
            self._campaigns[campaign.campaign_id] = campaign
            self._campaign_order.append(campaign.campaign_id)
            while len(self._campaign_order) > self._CAMPAIGN_HISTORY:
                for index, stale_id in enumerate(self._campaign_order):
                    stale = self._campaigns.get(stale_id)
                    if stale is None or stale.done.is_set():
                        del self._campaign_order[index]
                        self._campaigns.pop(stale_id, None)
                        break
                else:  # every retained campaign still running; allow growth
                    break

        evaluator = ServiceEvaluator(self, timeout_seconds=self.config.timeout_seconds)

        def progress(record, _replayed: bool) -> None:
            with self._lock:
                campaign.steps = record.step + 1
                campaign.evaluations = record.evaluations
                campaign.best_score = record.best_score
                campaign.best_scenario_id = record.best_scenario_id

        def run() -> None:
            try:
                result = run_campaign(
                    space,
                    optimizer,
                    objective,
                    evaluator,
                    budget=budget,
                    seed=seed,
                    events=self.events,
                    registry=self.registry,
                    progress=progress,
                )
                with self._lock:
                    campaign.state = "done"
                    campaign.baseline_score = result.baseline_score
                    campaign.best_score = result.best_score
                    campaign.best_scenario_id = result.best_spec.scenario_id
                    campaign.evaluations = result.evaluations
                    campaign.steps = len(result.steps)
                    campaign.report = result.to_dict()
            except Exception as error:  # noqa: BLE001 - campaign failure is a status
                with self._lock:
                    campaign.state = "failed"
                    campaign.error = f"{type(error).__name__}: {error}"
            finally:
                campaign.done.set()

        threading.Thread(target=run, name=campaign.campaign_id, daemon=True).start()
        return 202, {
            "schema": "optimize-submitted",
            "version": 1,
            "campaign_id": campaign.campaign_id,
            "state": "running",
            "preset": preset,
            "optimizer": optimizer.name,
            "objective": objective.name,
            "budget": budget,
            "seed": seed,
        }

    def optimize_status(self, campaign_id: Optional[str] = None) -> Optional[Dict]:
        """One campaign's detail, or the registry summary (None: unknown id)."""
        with self._lock:
            if campaign_id is None:
                return {
                    "schema": "optimize-status",
                    "version": 1,
                    "campaigns": [
                        self._campaigns[entry].summary()
                        for entry in self._campaign_order
                        if entry in self._campaigns
                    ],
                }
            campaign = self._campaigns.get(campaign_id)
            return campaign.detail() if campaign is not None else None

    def wait_optimize(
        self, campaign_id: str, timeout: Optional[float] = None
    ) -> Optional[Dict]:
        """Block until a campaign finishes; None for unknown ids."""
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            return None
        campaign.done.wait(timeout=timeout)
        return self.optimize_status(campaign_id)

    # -- health/metrics ---------------------------------------------------------
    def health(self) -> Dict:
        from .. import __version__

        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "workers": self.pool.workers,
            "in_flight": self.pool.in_flight,
        }

    def dashboard(self, events_limit: int = 50) -> Dict:
        """One JSON snapshot for live monitors: health + metrics + event tail."""
        return {
            "schema": "service-dashboard",
            "version": 1,
            "health": self.health(),
            "metrics": self.metrics(),
            "events": self.events.recent(limit=events_limit),
            "last_event_seq": self.events.last_seq,
        }

    def _sync_gauges(self) -> None:
        """Refresh the scrape-time gauges from the live cache/pool state."""
        cache = self.cache.snapshot()
        pool = self.pool.snapshot()
        capacity = max(1.0, float(pool["workers"] + pool["max_pending"]))
        gauges = {
            "repro_uptime_seconds": round(time.monotonic() - self._started, 3),
            "repro_requests_active": self._active,
            "repro_draining": float(self._draining),
            "repro_cache_size": cache["size"],
            "repro_cache_hit_rate": cache["hit_rate"],
            "repro_pool_in_flight": pool["in_flight"],
            "repro_pool_workers": pool["workers"],
            "repro_pool_saturation": pool["in_flight"] / capacity,
        }
        for name, value in gauges.items():
            self.registry.gauge(name, f"Service gauge {name}").set(value)

    def metrics(self) -> Dict:
        with self._lock:
            states = dict(self._states)
            active = self._active
        self._sync_gauges()
        latencies = {
            tier: self.registry.histogram("repro_request_seconds", tier=tier).summary()
            for tier in ("cold", "warm", "coalesced")
        }
        return {
            "requests": {"total": sum(states.values()), "by_state": states, "active": active},
            "cache": self.cache.snapshot(),
            "pool": self.pool.snapshot(),
            "latency_seconds": latencies,
            "registry": self.registry.snapshot(),
            "draining": self._draining,
        }

    def metrics_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        self._sync_gauges()
        return self.registry.to_prometheus()

    # -- shutdown ---------------------------------------------------------------
    def begin_drain(self) -> None:
        if not self._draining:
            self.events.emit(
                "service.drain", "service", in_flight=self.pool.in_flight
            )
        self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Reject new work, wait for in-flight work, shut the pool down."""
        self.begin_drain()
        if self.alerts is not None:
            self.alerts.stop()
        drained = self.pool.drain(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._active > 0:
            if deadline is not None and time.monotonic() > deadline:
                self.events.emit(
                    "service.drained", "service", level="warning", complete=False
                )
                return False
            time.sleep(0.01)
        self.events.emit("service.drained", "service", complete=drained)
        return drained


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------

def _parse_request(document: Dict) -> ServiceRequest:
    """Accept a service-request document or a bare scenario document."""
    if not isinstance(document, dict):
        raise ServiceRequestError("request body must be a JSON object")
    if document.get("schema") == "scenario":
        return ServiceRequest(scenario=ScenarioSpec.from_dict(document))
    return ServiceRequest.from_dict(document)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the :class:`SolveService` core."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    #: http.server writes status line, headers and body as separate small
    #: sends; with Nagle + delayed ACK that costs ~40ms per warm response.
    disable_nagle_algorithm = True
    #: Set by :class:`ServiceServer`.
    service: SolveService
    quiet: bool = True
    #: The correlation id of the request currently being handled (set per
    #: request in do_GET/do_POST, echoed on responses and in log lines).
    request_id: str = ""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid only
            if self.request_id:
                format = f"{format} rid={self.request_id}"
            super().log_message(format, *args)

    def _assign_request_id(self) -> str:
        """Accept the client's ``X-Request-Id`` or mint one."""
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        # Header values travel into logs and response headers verbatim; keep
        # them bounded and printable.
        if supplied and len(supplied) <= 128 and supplied.isprintable():
            self.request_id = supplied
        else:
            self.request_id = f"req-{uuid.uuid4().hex[:12]}"
        return self.request_id

    # -- plumbing ---------------------------------------------------------------
    def _send_json(self, status: int, document: Dict, retry_after: Optional[float] = None) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(1, round(retry_after))}")
        self.end_headers()
        self.wfile.write(body)

    def _send_response(self, response: ServiceResponse) -> None:
        self._send_json(
            response.http_status, response.to_dict(), response.retry_after_seconds
        )

    def _read_body(self) -> Optional[bytes]:
        length = self.headers.get("Content-Length")
        if length is None:
            # The body was never consumed: keep-alive would desynchronize.
            self.close_connection = True
            self._send_json(411, {"error": "Content-Length required"})
            return None
        try:
            length = int(length)
        except ValueError:
            self.close_connection = True
            self._send_json(400, {"error": f"malformed Content-Length {length!r}"})
            return None
        if length < 0:
            self.close_connection = True
            self._send_json(400, {"error": "Content-Length must be non-negative"})
            return None
        limit = self.service.config.max_body_bytes
        if length > limit:
            # Reading (or skipping) the body would be exactly the unbounded
            # work the limit exists to avoid: answer and drop the connection.
            self.close_connection = True
            self._send_json(
                413,
                {"error": f"request body of {length} bytes exceeds the {limit}-byte limit"},
            )
            return None
        try:
            return self.rfile.read(length)
        except OSError:
            self.close_connection = True
            self._send_json(400, {"error": "unreadable request body"})
            return None

    def _parse_body(self, raw: bytes) -> Optional[Dict]:
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"malformed JSON body: {error}"})
            return None

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)

    # -- GET --------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._assign_request_id()
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            health = self.service.health()
            self._send_json(200 if health["status"] == "ok" else 503, health)
            return
        if parsed.path == "/metrics":
            query = parse_qs(parsed.query)
            if query.get("format", [""])[0] == "prometheus":
                self._send_text(
                    200,
                    self.service.metrics_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                return
            self._send_json(200, self.service.metrics())
            return
        if parsed.path == "/dashboard":
            query = parse_qs(parsed.query)
            try:
                limit = int(query.get("events", ["50"])[0])
            except ValueError:
                self._send_json(400, {"error": "events must be an integer"})
                return
            self._send_json(200, self.service.dashboard(events_limit=limit))
            return
        if parsed.path == "/events":
            self._handle_events(parse_qs(parsed.query))
            return
        if parsed.path in ("/optimize/status", "/optimize/status/"):
            self._send_json(200, self.service.optimize_status())
            return
        if parsed.path.startswith("/optimize/status/"):
            campaign_id = parsed.path[len("/optimize/status/"):]
            status = self.service.optimize_status(campaign_id)
            if status is None:
                self._send_json(404, {"error": f"unknown campaign {campaign_id!r}"})
                return
            self._send_json(200, status)
            return
        for prefix, waits in (("/status/", False), ("/result/", True)):
            if self.path.startswith(prefix):
                request_id = self.path[len(prefix):]
                response = (
                    self.service.wait(
                        request_id, timeout=self.service.config.coalesce_wait_seconds
                    )
                    if waits
                    else self.service.status(request_id)
                )
                if response is None:
                    self._send_json(404, {"error": f"unknown request id {request_id!r}"})
                    return
                self._send_response(response)
                return
        self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    # -- SSE --------------------------------------------------------------------
    def _handle_events(self, query: Dict[str, List[str]]) -> None:
        """Stream structured events as Server-Sent Events until disconnect.

        Query parameters:

        * ``since=SEQ``     — replay retained events with ``seq > SEQ`` first
          (``0`` replays the whole ring; default: live only).  The standard
          ``Last-Event-ID`` header takes precedence — a reconnecting
          EventSource client resumes without losing retained events.
        * ``max=N``         — close cleanly after N events (0 = unbounded);
          the bounded-read mode tests and smoke jobs use.
        * ``keepalive=S``   — idle seconds between ``: keep-alive`` comments.

        The stream is delimited by connection close; a client that goes away
        simply ends the handler thread (its subscription is dropped).
        """
        last_event_id = (self.headers.get("Last-Event-ID") or "").strip()
        try:
            since = int(last_event_id) if last_event_id else int(query.get("since", ["-1"])[0])
            max_events = int(query.get("max", ["0"])[0])
            keepalive = float(query.get("keepalive", ["15"])[0])
        except ValueError:
            self._send_json(400, {"error": "since/max must be integers, keepalive a number"})
            return
        keepalive = max(0.05, keepalive)
        subscription = self.service.events.subscribe(since=since)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.close_connection = True
        sent = 0
        try:
            # An opening comment confirms liveness before any event arrives.
            self.wfile.write(b": stream opened\n\n")
            self.wfile.flush()
            idle = 0.0
            while max_events <= 0 or sent < max_events:
                # Wake at least twice per second so a drain ends the stream
                # promptly; only send the keep-alive once idle long enough.
                tick = min(keepalive, 0.5)
                event = subscription.get(timeout=tick)
                if event is None:
                    if self.service.draining:
                        break
                    idle += tick
                    if idle >= keepalive:
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                        idle = 0.0
                    continue
                idle = 0.0
                frame = (
                    f"id: {event.seq}\nevent: {event.kind}\ndata: {event.to_json()}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # the client went away mid-stream; nothing to answer
        finally:
            self.service.events.unsubscribe(subscription)

    # -- POST -------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._assign_request_id()
        raw = self._read_body()
        if raw is None:
            return
        if self.path in ("/solve", "/submit"):
            document = self._parse_body(raw)
            if document is None:
                return
            try:
                request = _parse_request(document)
            except (ServiceRequestError, ValueError, TypeError) as error:
                self._send_response(
                    ServiceResponse(state=STATE_INVALID, message=str(error))
                )
                return
            if self.path == "/solve":
                self._send_response(
                    self.service.resolve(request, request_id=self.request_id)
                )
            else:
                self._send_response(
                    self.service.submit(request, request_id=self.request_id)
                )
            return
        if self.path == "/batch":
            self._handle_batch(raw)
            return
        if self.path == "/optimize":
            document = self._parse_body(raw)
            if document is None:
                return
            status, payload = self.service.start_optimize(document)
            self._send_json(
                status, payload, retry_after=payload.get("retry_after_seconds")
            )
            return
        self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    def _handle_batch(self, raw: bytes) -> None:
        """NDJSON stream: one response line per input spec, in *completion*
        order, each line tagged with its input ``index``.

        The response is length-delimited by connection close (no
        Content-Length), so lines flush to the client the moment they
        resolve — a warm hit never queues behind an earlier cold solve.
        Clients that need input order reorder on ``index``
        (:meth:`~repro.service.client.ServiceClient.batch` does).
        """
        try:
            text = raw.decode("utf-8")
            if text.lstrip().startswith("["):
                documents = json.loads(text)
            else:  # NDJSON input
                documents = [json.loads(line) for line in text.splitlines() if line.strip()]
            if not isinstance(documents, list):
                raise ValueError("batch body must be a JSON array or NDJSON lines")
            requests = [_parse_request(document) for document in documents]
        except (ValueError, TypeError, ServiceRequestError) as error:
            self._send_json(400, {"error": f"malformed batch: {error}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        for index, response in self.service.resolve_batch_completed(requests):
            document = response.to_dict()
            document["index"] = index
            self.wfile.write((json.dumps(document, sort_keys=True) + "\n").encode())
            self.wfile.flush()


class ServiceServer:
    """``ThreadingHTTPServer`` front end with a graceful start/stop lifecycle."""

    def __init__(self, config: Optional[ServiceConfig] = None, quiet: bool = True):
        self.config = config or ServiceConfig()
        self.service = SolveService(self.config)
        handler = type(
            "BoundServiceHandler",
            (_ServiceHandler,),
            {"service": self.service, "quiet": quiet},
        )
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral assignment)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve in a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground mode)."""
        self._httpd.serve_forever(poll_interval=0.05)

    def stop(self, drain_timeout: Optional[float] = 60.0) -> bool:
        """Graceful shutdown: drain in-flight work, then close the socket.

        New requests are rejected (503) the moment this is called; requests
        already executing complete and are answered.  Returns ``True`` when
        everything drained within ``drain_timeout``.
        """
        self.service.begin_drain()
        drained = self.service.drain(timeout=drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return drained


__all__ = ["ServiceConfig", "ServiceServer", "SolveService"]
