"""The traffic system and its component graph ``Gs`` (Sec. IV-A of the paper).

A :class:`TrafficSystem` is a set of disjoint components over a warehouse
floorplan plus the inlet/outlet relations between them.  The relations induce
the directed *traffic-system graph* ``Gs = (Vs, Es)`` whose vertices are the
components; an arc ``(Ci, Cj)`` means ``Ci`` is an inlet of ``Cj`` (agents can
move from ``Ci``'s exit to ``Cj``'s entry).

The class offers the queries the rest of the methodology needs: kind-filtered
component lists, the longest-component length ``m`` (which fixes the cycle
time ``tc = 2m``), vertex→component lookup, and a networkx export used by the
flow decomposition and by reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.warehouse import Warehouse
from .component import Component, ComponentKind, TrafficError, make_component

ComponentId = int


@dataclass
class TrafficSystem:
    """A traffic system: components + inlet/outlet wiring over a warehouse.

    Build one with :meth:`from_paths` (explicit connections) or via
    :mod:`repro.traffic.design` helpers; the constructor itself only checks
    basic referential integrity — run :func:`repro.traffic.validation.validate`
    for the full design-rule check.
    """

    warehouse: Warehouse
    components: Tuple[Component, ...]
    outlets: Dict[ComponentId, Tuple[ComponentId, ...]]
    name: str = "traffic-system"
    _vertex_owner: Dict[VertexId, ComponentId] = field(default_factory=dict, repr=False)
    _inlets: Dict[ComponentId, Tuple[ComponentId, ...]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        indices = [c.index for c in self.components]
        if indices != list(range(len(self.components))):
            raise TrafficError("component indices must be dense and ordered 0..n-1")
        owner: Dict[VertexId, ComponentId] = {}
        for component in self.components:
            for vertex in component.vertices:
                if vertex in owner:
                    raise TrafficError(
                        f"vertex {vertex} belongs to both component "
                        f"{self.components[owner[vertex]].name!r} and {component.name!r}"
                    )
                owner[vertex] = component.index
        self._vertex_owner = owner

        inlets: Dict[ComponentId, List[ComponentId]] = {c.index: [] for c in self.components}
        for source, targets in self.outlets.items():
            if not 0 <= source < len(self.components):
                raise TrafficError(f"outlet source {source} is not a component index")
            for target in targets:
                if not 0 <= target < len(self.components):
                    raise TrafficError(f"outlet target {target} is not a component index")
                inlets[target].append(source)
        for component in self.components:
            self.outlets.setdefault(component.index, ())
        self._inlets = {cid: tuple(sources) for cid, sources in inlets.items()}

    # -- construction --------------------------------------------------------
    @staticmethod
    def from_paths(
        warehouse: Warehouse,
        paths: Sequence[Tuple[str, Sequence[VertexId]]],
        connections: Sequence[Tuple[str, str]],
        name: str = "traffic-system",
    ) -> "TrafficSystem":
        """Build a traffic system from named vertex paths and named connections.

        ``paths`` is a sequence of ``(component_name, vertex_path)``;
        ``connections`` is a sequence of ``(from_name, to_name)`` meaning the
        first component is an inlet of the second.
        """
        floorplan = warehouse.floorplan
        components: List[Component] = []
        by_name: Dict[str, int] = {}
        for index, (component_name, vertices) in enumerate(paths):
            if component_name in by_name:
                raise TrafficError(f"duplicate component name {component_name!r}")
            components.append(
                make_component(floorplan, index, component_name, vertices)
            )
            by_name[component_name] = index
        outlets: Dict[ComponentId, List[ComponentId]] = {i: [] for i in range(len(components))}
        for from_name, to_name in connections:
            if from_name not in by_name or to_name not in by_name:
                raise TrafficError(
                    f"connection ({from_name!r} -> {to_name!r}) references unknown components"
                )
            outlets[by_name[from_name]].append(by_name[to_name])
        return TrafficSystem(
            warehouse=warehouse,
            components=tuple(components),
            outlets={cid: tuple(targets) for cid, targets in outlets.items()},
            name=name,
        )

    @staticmethod
    def from_cell_paths(
        warehouse: Warehouse,
        cell_paths: Sequence[Tuple[str, Sequence[Tuple[int, int]]]],
        connections: Sequence[Tuple[str, str]],
        name: str = "traffic-system",
    ) -> "TrafficSystem":
        """Like :meth:`from_paths` but with paths given as grid cells."""
        floorplan = warehouse.floorplan
        vertex_paths = [
            (component_name, [floorplan.vertex_at(cell) for cell in cells])
            for component_name, cells in cell_paths
        ]
        return TrafficSystem.from_paths(warehouse, vertex_paths, connections, name=name)

    # -- basic queries --------------------------------------------------------
    @property
    def floorplan(self) -> FloorplanGraph:
        return self.warehouse.floorplan

    @property
    def num_components(self) -> int:
        return len(self.components)

    def component(self, component_id: ComponentId) -> Component:
        return self.components[component_id]

    def component_by_name(self, name: str) -> Component:
        for component in self.components:
            if component.name == name:
                return component
        raise TrafficError(f"no component named {name!r}")

    def outlets_of(self, component_id: ComponentId) -> Tuple[ComponentId, ...]:
        return self.outlets.get(component_id, ())

    def inlets_of(self, component_id: ComponentId) -> Tuple[ComponentId, ...]:
        return self._inlets.get(component_id, ())

    def owner_of(self, vertex: VertexId) -> Optional[ComponentId]:
        """The component containing ``vertex`` (None for unused vertices)."""
        return self._vertex_owner.get(vertex)

    def used_vertices(self) -> Tuple[VertexId, ...]:
        return tuple(self._vertex_owner)

    def unused_vertices(self) -> Tuple[VertexId, ...]:
        used = self._vertex_owner
        return tuple(
            v for v in range(self.floorplan.num_vertices) if v not in used
        )

    # -- kind-filtered views ----------------------------------------------------
    def shelving_rows(self) -> Tuple[Component, ...]:
        return tuple(c for c in self.components if c.is_shelving_row)

    def station_queues(self) -> Tuple[Component, ...]:
        return tuple(c for c in self.components if c.is_station_queue)

    def transports(self) -> Tuple[Component, ...]:
        return tuple(c for c in self.components if c.is_transport)

    # -- methodology-level quantities ---------------------------------------------
    @property
    def max_component_length(self) -> int:
        """``m`` — the length of the longest component (fixes tc = 2m)."""
        return max(c.length for c in self.components)

    def cycle_time(self, factor: int = 2) -> int:
        """The cycle time ``tc = factor * m`` (Property 4.1 uses factor = 2)."""
        return factor * self.max_component_length

    def station_throughput_capacity(self) -> int:
        """Upper bound on deliveries per cycle period: Σ ⌊|C|/2⌋ over station queues."""
        return sum(c.capacity for c in self.station_queues())

    def max_shelving_to_station_hops(self) -> int:
        """Longest shortest-hop distance from a shelving row to a station queue.

        Used by the synthesis stage to size the warm-up margin of the workload
        contract: a unit picked up ``d`` components away from its drop-off
        queue is delivered ``d`` cycle periods later, so the last useful pickup
        period is ``q_c - d``.
        """
        graph = self.to_networkx()
        stations = [c.index for c in self.station_queues()]
        if not stations:
            return 0
        reversed_graph = graph.reverse(copy=False)
        distances: Dict[ComponentId, int] = {}
        for station in stations:
            lengths = nx.single_source_shortest_path_length(reversed_graph, station)
            for node, distance in lengths.items():
                if node not in distances or distance < distances[node]:
                    distances[node] = distance
        hops = [
            distances.get(c.index)
            for c in self.shelving_rows()
            if distances.get(c.index) is not None
        ]
        return max(hops) if hops else 0

    def units_at(self, component_id: ComponentId, product: int) -> int:
        """UNITSAT(Ci, ρk): stocked units of a product accessible from a component."""
        stock = self.warehouse.stock
        return sum(
            stock.units_at(product, vertex)
            for vertex in self.component(component_id).vertices
            if self.floorplan.is_shelf_access(vertex)
        )

    def station_vertices_in(self, component_id: ComponentId) -> Tuple[VertexId, ...]:
        stations = self.warehouse.station_vertices
        return tuple(v for v in self.component(component_id).vertices if v in stations)

    # -- graph views ----------------------------------------------------------------
    def edges(self) -> Tuple[Tuple[ComponentId, ComponentId], ...]:
        """All arcs (Ci, Cj) of the traffic-system graph Gs."""
        result: List[Tuple[ComponentId, ComponentId]] = []
        for source, targets in sorted(self.outlets.items()):
            for target in targets:
                result.append((source, target))
        return tuple(result)

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph(name=self.name)
        for component in self.components:
            graph.add_node(
                component.index,
                name=component.name,
                kind=component.kind.value,
                length=component.length,
            )
        graph.add_edges_from(self.edges())
        return graph

    def is_strongly_connected(self) -> bool:
        graph = self.to_networkx()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_strongly_connected(graph)

    def summary(self) -> str:
        return (
            f"traffic system {self.name!r}: {self.num_components} components "
            f"({len(self.shelving_rows())} shelving rows, "
            f"{len(self.station_queues())} station queues, "
            f"{len(self.transports())} transports), "
            f"m={self.max_component_length}, "
            f"{len(self.edges())} connections"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficSystem({self.summary()})"
