"""Helpers for designing traffic systems.

The paper frames traffic-system design as a manual activity guided by the
framework's rules ("an operator can construct a traffic system by dividing the
vertices ... into disjoint simple paths").  In this repository the "operator"
is usually a map generator (:mod:`repro.maps`), which knows its own geometry
and emits the component paths and connections directly.  This module holds the
generator-independent utilities:

* :func:`split_path`            — split a long path into chained sub-components
  no longer than a target length (keeps the cycle time ``tc = 2m`` small, which
  is what gives the methodology its throughput — see DESIGN.md §2);
* :func:`chain_connections`     — the (a→b, b→c, ...) connections of a chain;
* :func:`auto_connections`      — derive connections from exit/entry adjacency
  (useful for small hand-drawn maps);
* :func:`build_traffic_system`  — assemble and validate a system from cell
  paths and connections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..warehouse.grid import Cell
from ..warehouse.warehouse import Warehouse
from .component import TrafficError
from .system import TrafficSystem
from .validation import assert_valid


def split_path(
    cells: Sequence[Cell], max_length: int, min_length: int = 2
) -> List[List[Cell]]:
    """Split a path into consecutive pieces of at most ``max_length`` cells.

    The pieces chain head-to-tail (each piece's last cell is adjacent to the
    next piece's first cell because they are consecutive along the original
    path).  The split is balanced so that no piece ends up shorter than
    ``min_length`` — a component of length 1 would have capacity
    ``⌊1/2⌋ = 0`` and block all flow through the chain.
    """
    cells = list(cells)
    if max_length < min_length:
        raise TrafficError(
            f"max_length {max_length} must be at least min_length {min_length}"
        )
    if len(cells) <= max_length:
        return [cells]
    num_pieces = -(-len(cells) // max_length)  # ceil division
    base, remainder = divmod(len(cells), num_pieces)
    if base < min_length:
        raise TrafficError(
            f"cannot split a {len(cells)}-cell path into pieces of length "
            f">= {min_length} and <= {max_length}"
        )
    pieces: List[List[Cell]] = []
    start = 0
    for piece_index in range(num_pieces):
        size = base + (1 if piece_index < remainder else 0)
        pieces.append(cells[start : start + size])
        start += size
    return pieces


def chain_connections(names: Sequence[str]) -> List[Tuple[str, str]]:
    """Connections of a simple chain: ``names[i] -> names[i + 1]``."""
    return [(a, b) for a, b in zip(names, names[1:])]


def auto_connections(
    warehouse: Warehouse,
    cell_paths: Sequence[Tuple[str, Sequence[Cell]]],
    max_outlets: int = 2,
) -> List[Tuple[str, str]]:
    """Derive connections from floorplan adjacency between exits and entries.

    A connection ``A → B`` is created whenever the last cell of ``A``'s path is
    4-adjacent to the first cell of ``B``'s path.  When a component would end
    up with more than ``max_outlets`` outlets, a :class:`TrafficError` is
    raised — the caller should then specify connections explicitly (the rule
    limit is part of the design framework, not something to silently trim).
    """
    floorplan = warehouse.floorplan
    entries: Dict[str, Cell] = {name: tuple(cells)[0] for name, cells in cell_paths}
    exits: Dict[str, Cell] = {name: tuple(cells)[-1] for name, cells in cell_paths}
    connections: List[Tuple[str, str]] = []
    for from_name, exit_cell in exits.items():
        exit_vertex = floorplan.vertex_at(exit_cell)
        outlets = []
        for to_name, entry_cell in entries.items():
            if to_name == from_name:
                continue
            entry_vertex = floorplan.vertex_at(entry_cell)
            if floorplan.are_adjacent(exit_vertex, entry_vertex):
                outlets.append(to_name)
        if len(outlets) > max_outlets:
            raise TrafficError(
                f"component {from_name!r} would have {len(outlets)} outlets "
                f"({outlets}); specify connections explicitly"
            )
        connections.extend((from_name, to_name) for to_name in outlets)
    return connections


def build_traffic_system(
    warehouse: Warehouse,
    cell_paths: Sequence[Tuple[str, Sequence[Cell]]],
    connections: Optional[Sequence[Tuple[str, str]]] = None,
    name: str = "traffic-system",
    validate_rules: bool = True,
) -> TrafficSystem:
    """Assemble a traffic system from cell paths, then check the design rules.

    When ``connections`` is omitted they are derived with
    :func:`auto_connections`.
    """
    if connections is None:
        connections = auto_connections(warehouse, cell_paths)
    system = TrafficSystem.from_cell_paths(warehouse, cell_paths, connections, name=name)
    if validate_rules:
        assert_valid(system)
    return system
