"""Traffic-system components (Sec. IV-A of the paper).

A component is a *disjoint simple path* of floorplan vertices that behaves like
a one-way road: agents enter at one end, traverse the path one cell at a time
and leave from the other end.  Components come in three kinds:

* **shelving row**   — contains at least one shelf-access vertex;
* **station queue**  — contains at least one station vertex;
* **transport**      — contains neither.

A component may never contain both shelf-access and station vertices.

Naming note.  The paper calls the two ends ``HEAD`` and ``TAIL`` but uses the
terms inconsistently between Sec. IV-A and Algorithm 1 (see DESIGN.md).  We use
the unambiguous names **entry** (where agents come in) and **exit** (where they
leave); ``head``/``tail`` are provided as aliases of entry/exit to match the
Sec. IV-A reading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId


class TrafficError(ValueError):
    """Raised for invalid components or traffic systems."""


class ComponentKind(enum.Enum):
    """The three component types of the traffic-system design framework."""

    SHELVING_ROW = "shelving_row"
    STATION_QUEUE = "station_queue"
    TRANSPORT = "transport"


@dataclass(frozen=True)
class Component:
    """A one-way road: an ordered simple path of floorplan vertices.

    Parameters
    ----------
    index:
        Dense id of the component within its traffic system.
    name:
        Human-readable name (e.g. ``"slice2/serpentine/1"``).
    vertices:
        The path, ordered from entry to exit.
    kind:
        The component kind; normally derived with :func:`classify_component`.
    """

    index: int
    name: str
    vertices: Tuple[VertexId, ...]
    kind: ComponentKind
    _positions: Dict[VertexId, int] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not self.vertices:
            raise TrafficError(f"component {self.name!r} has no vertices")
        if len(set(self.vertices)) != len(self.vertices):
            raise TrafficError(f"component {self.name!r} repeats a vertex")
        object.__setattr__(
            self, "_positions", {v: i for i, v in enumerate(self.vertices)}
        )

    # -- geometry ------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of vertices |Ci| (used by the capacity rule ⌊|Ci|/2⌋)."""
        return len(self.vertices)

    @property
    def capacity(self) -> int:
        """Maximum number of agent cycles through this component: ⌊|Ci|/2⌋."""
        return self.length // 2

    @property
    def entry(self) -> VertexId:
        """The vertex agents enter the component at."""
        return self.vertices[0]

    @property
    def exit(self) -> VertexId:
        """The vertex agents leave the component from."""
        return self.vertices[-1]

    # Aliases matching the paper's Sec. IV-A terminology.
    @property
    def head(self) -> VertexId:
        return self.entry

    @property
    def tail(self) -> VertexId:
        return self.exit

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._positions

    def position_of(self, vertex: VertexId) -> int:
        """Index of a vertex along the path (0 at the entry)."""
        try:
            return self._positions[vertex]
        except KeyError as exc:
            raise TrafficError(
                f"vertex {vertex} is not part of component {self.name!r}"
            ) from exc

    def next_vertex(self, vertex: VertexId) -> Optional[VertexId]:
        """The vertex following ``vertex`` on the way to the exit (NEXT(Ci, u))."""
        position = self.position_of(vertex)
        if position + 1 < self.length:
            return self.vertices[position + 1]
        return None

    def distance_to_exit(self, vertex: VertexId) -> int:
        return self.length - 1 - self.position_of(vertex)

    # -- kind ----------------------------------------------------------------
    @property
    def is_shelving_row(self) -> bool:
        return self.kind == ComponentKind.SHELVING_ROW

    @property
    def is_station_queue(self) -> bool:
        return self.kind == ComponentKind.STATION_QUEUE

    @property
    def is_transport(self) -> bool:
        return self.kind == ComponentKind.TRANSPORT

    def summary(self) -> str:
        return f"{self.name} [{self.kind.value}, {self.length} cells]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Component({self.summary()})"


def classify_vertices(
    floorplan: FloorplanGraph, vertices: Sequence[VertexId]
) -> ComponentKind:
    """Derive a component kind from the vertices it contains.

    Raises :class:`TrafficError` when the vertex set mixes shelf-access and
    station vertices, which the design rules forbid.
    """
    has_shelf = any(v in floorplan.shelf_access for v in vertices)
    has_station = any(v in floorplan.stations for v in vertices)
    if has_shelf and has_station:
        raise TrafficError(
            "a component may not contain both shelf-access and station vertices"
        )
    if has_shelf:
        return ComponentKind.SHELVING_ROW
    if has_station:
        return ComponentKind.STATION_QUEUE
    return ComponentKind.TRANSPORT


def make_component(
    floorplan: FloorplanGraph,
    index: int,
    name: str,
    vertices: Sequence[VertexId],
    kind: Optional[ComponentKind] = None,
    check_path: bool = True,
) -> Component:
    """Build a component, deriving its kind and checking it is a simple path."""
    vertices = tuple(vertices)
    if check_path and not floorplan.induced_path_is_simple(vertices):
        raise TrafficError(
            f"component {name!r} is not a simple path in the floorplan graph"
        )
    derived = classify_vertices(floorplan, vertices)
    if kind is not None and kind != derived:
        raise TrafficError(
            f"component {name!r} declared as {kind.value} but its vertices imply {derived.value}"
        )
    return Component(index=index, name=name, vertices=vertices, kind=derived)
