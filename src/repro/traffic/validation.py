"""Design-rule checking for traffic systems (the rules of Sec. IV-A).

The framework imposes the following rules on a traffic system; the validator
reports every violation with a short explanation so a designer can fix the
layout:

1. every component is a non-empty *simple path* in the floorplan graph;
2. components are pairwise vertex-disjoint;
3. no component contains both shelf-access and station vertices;
4. every shelf-access vertex and every station vertex belongs to a component
   (other vertices may be left unused);
5. every component has between 1 and 2 inlets and between 1 and 2 outlets;
6. for every connection ``Ci → Cj`` there is a floorplan edge between the exit
   of ``Ci`` and the entry of ``Cj``;
7. the traffic-system graph is strongly connected.

Rules 1–3 are enforced eagerly at construction time by
:class:`~repro.traffic.component.Component` / :class:`TrafficSystem`; the
validator re-checks them anyway so hand-built systems loaded from disk get a
complete report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .component import ComponentKind
from .system import TrafficSystem


@dataclass(frozen=True)
class RuleViolation:
    """One violated design rule."""

    rule: str
    component: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] {self.component}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`."""

    violations: List[RuleViolation]

    @property
    def is_valid(self) -> bool:
        return not self.violations

    def by_rule(self, rule: str) -> Tuple[RuleViolation, ...]:
        return tuple(v for v in self.violations if v.rule == rule)

    def summary(self) -> str:
        if self.is_valid:
            return "traffic system satisfies all design rules"
        return f"traffic system violates {len(self.violations)} design rule(s)"


def validate(system: TrafficSystem) -> ValidationReport:
    """Check every design rule and return a full report."""
    violations: List[RuleViolation] = []
    floorplan = system.floorplan

    # Rule 1: simple paths.
    for component in system.components:
        if not floorplan.induced_path_is_simple(component.vertices):
            violations.append(
                RuleViolation("simple-path", component.name, "vertices do not form a simple path")
            )

    # Rule 2: disjointness (TrafficSystem enforces it at construction; re-derive
    # here for systems built by other means).
    seen = {}
    for component in system.components:
        for vertex in component.vertices:
            if vertex in seen and seen[vertex] != component.index:
                violations.append(
                    RuleViolation(
                        "disjoint",
                        component.name,
                        f"vertex {vertex} also belongs to "
                        f"{system.component(seen[vertex]).name!r}",
                    )
                )
            seen.setdefault(vertex, component.index)

    # Rule 3: no mixing of shelf-access and station vertices.
    for component in system.components:
        has_shelf = any(v in floorplan.shelf_access for v in component.vertices)
        has_station = any(v in floorplan.stations for v in component.vertices)
        if has_shelf and has_station:
            violations.append(
                RuleViolation(
                    "no-mixing", component.name, "contains both shelf-access and station vertices"
                )
            )
        expected = (
            ComponentKind.SHELVING_ROW
            if has_shelf
            else ComponentKind.STATION_QUEUE
            if has_station
            else ComponentKind.TRANSPORT
        )
        if not (has_shelf and has_station) and component.kind != expected:
            violations.append(
                RuleViolation(
                    "kind",
                    component.name,
                    f"classified as {component.kind.value} but vertices imply {expected.value}",
                )
            )

    # Rule 4: coverage of shelf-access and station vertices.
    for vertex in sorted(floorplan.shelf_access):
        if system.owner_of(vertex) is None:
            violations.append(
                RuleViolation(
                    "coverage",
                    "<floorplan>",
                    f"shelf-access vertex {vertex} ({floorplan.cell_of(vertex)}) "
                    "is not contained in any component",
                )
            )
    for vertex in sorted(floorplan.stations):
        if system.owner_of(vertex) is None:
            violations.append(
                RuleViolation(
                    "coverage",
                    "<floorplan>",
                    f"station vertex {vertex} ({floorplan.cell_of(vertex)}) "
                    "is not contained in any component",
                )
            )

    # Rule 5: inlet / outlet counts.
    for component in system.components:
        n_out = len(system.outlets_of(component.index))
        n_in = len(system.inlets_of(component.index))
        if not 1 <= n_out <= 2:
            violations.append(
                RuleViolation(
                    "outlet-count", component.name, f"has {n_out} outlets (must be 1 or 2)"
                )
            )
        if not 1 <= n_in <= 2:
            violations.append(
                RuleViolation(
                    "inlet-count", component.name, f"has {n_in} inlets (must be 1 or 2)"
                )
            )

    # Rule 6: exit/entry adjacency of every connection.
    for source, target in system.edges():
        exit_vertex = system.component(source).exit
        entry_vertex = system.component(target).entry
        if not floorplan.are_adjacent(exit_vertex, entry_vertex):
            violations.append(
                RuleViolation(
                    "connection-adjacency",
                    system.component(source).name,
                    f"exit {floorplan.cell_of(exit_vertex)} is not adjacent to the entry "
                    f"{floorplan.cell_of(entry_vertex)} of {system.component(target).name!r}",
                )
            )

    # Rule 7: strong connectivity of Gs.
    if not system.is_strongly_connected():
        violations.append(
            RuleViolation(
                "strong-connectivity", "<traffic-system>", "the component graph is not strongly connected"
            )
        )

    return ValidationReport(violations=violations)


def assert_valid(system: TrafficSystem) -> None:
    """Raise ``TrafficError`` with a readable message when any rule is violated."""
    from .component import TrafficError

    report = validate(system)
    if not report.is_valid:
        details = "\n  ".join(str(v) for v in report.violations[:20])
        more = "" if len(report.violations) <= 20 else f"\n  (+{len(report.violations) - 20} more)"
        raise TrafficError(
            f"traffic system {system.name!r} violates design rules:\n  {details}{more}"
        )
