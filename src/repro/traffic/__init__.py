"""The traffic-system design framework (Sec. IV-A of the paper).

* :class:`Component` / :class:`ComponentKind` — one-way-road components
  (shelving rows, station queues, transports);
* :class:`TrafficSystem` — components + inlet/outlet wiring and the derived
  traffic-system graph ``Gs``;
* :func:`validate` / :func:`assert_valid` — the design-rule checker;
* :mod:`repro.traffic.design` — utilities used by map generators to emit
  valid traffic systems (path splitting, chaining, auto-connection).
"""

from .component import Component, ComponentKind, TrafficError, classify_vertices, make_component
from .design import auto_connections, build_traffic_system, chain_connections, split_path
from .system import ComponentId, TrafficSystem
from .validation import RuleViolation, ValidationReport, assert_valid, validate

__all__ = [
    "Component",
    "ComponentId",
    "ComponentKind",
    "RuleViolation",
    "TrafficError",
    "TrafficSystem",
    "ValidationReport",
    "assert_valid",
    "auto_connections",
    "build_traffic_system",
    "chain_connections",
    "classify_vertices",
    "make_component",
    "split_path",
    "validate",
]
