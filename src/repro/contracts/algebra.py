"""Decision procedures for the conjunctive-linear contract fragment.

Every algebraic check on :class:`~repro.contracts.contract.AGContract` reduces
to linear-programming feasibility queries:

* :func:`is_satisfiable`  — does a constraint conjunction admit any behaviour?
* :func:`entails`         — does ``Φ`` imply a single constraint ``c``?
  (checked as infeasibility of ``Φ ∧ ¬c``, with a strict-inequality margin);
* :func:`refines`         — contract refinement ``C1 ⪯ C2``;
* :func:`is_consistent` / :func:`is_compatible` — non-emptiness of guarantees /
  assumptions;
* :func:`check_composition_consistency` — the synthesis-time sanity check the
  methodology performs before handing the composed contract to the solver.

The checks treat integer variables as reals (a sound relaxation for
entailment/refinement: if the relaxed query says "entailed", the integer
restriction is also entailed).  Satisfiability checks can optionally enforce
integrality by using a MILP backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..solver import SolveStatus, solve_model
from ..solver.expressions import EQ, GE, LE, LinearConstraint, LinearExpr
from ..solver.model import ConstraintModel
from .contract import AGContract

#: Margin used to encode the negation of a non-strict inequality.  Flow
#: variables are integers, so a margin below 1 is exact for integral data and
#: safe for the rational relaxation.
DEFAULT_STRICTNESS = 1e-6


def _model_from_constraints(
    constraints: Iterable[LinearConstraint], name: str, relax_integrality: bool
) -> ConstraintModel:
    model = ConstraintModel(name)
    for constraint in constraints:
        model.add_constraint(constraint)
    if relax_integrality:
        return model.relaxed()
    return model


def is_satisfiable(
    constraints: Iterable[LinearConstraint],
    backend: str = "highs",
    integer: bool = False,
) -> bool:
    """True when the conjunction of ``constraints`` admits a behaviour.

    ``integer=True`` keeps the variables' integrality requirements; otherwise
    the rational relaxation is checked (cheaper, sufficient for algebra checks).
    """
    model = _model_from_constraints(constraints, "satisfiability", not integer)
    result = solve_model(model, backend=backend)
    return result.status.has_solution


def negation_constraints(
    constraint: LinearConstraint, strictness: float = DEFAULT_STRICTNESS
) -> List[Tuple[LinearConstraint, ...]]:
    """The negation of a linear constraint as a list of conjunctive cases.

    ``¬(e <= 0)`` is ``e >= strictness``; ``¬(e >= 0)`` is ``e <= -strictness``;
    ``¬(e == 0)`` splits into the two cases.  Each returned tuple is one case
    (they are mutually exclusive alternatives).
    """
    expr = constraint.expr
    if constraint.sense == LE:
        return [((expr >= strictness),)]
    if constraint.sense == GE:
        return [((expr <= -strictness),)]
    if constraint.sense == EQ:
        return [((expr >= strictness),), ((expr <= -strictness),)]
    raise ValueError(f"unknown sense {constraint.sense!r}")  # pragma: no cover


def entails(
    premises: Iterable[LinearConstraint],
    conclusion: LinearConstraint,
    backend: str = "highs",
    strictness: float = DEFAULT_STRICTNESS,
) -> bool:
    """Semantic entailment ``premises ⊨ conclusion`` over the rational relaxation.

    Checked by asking whether ``premises ∧ ¬conclusion`` is satisfiable for each
    disjunct of the negation; entailment holds when every such case is
    infeasible.  Variable bounds declared on the variables themselves are part
    of the premise set automatically (the model always enforces them).
    """
    premises = tuple(premises)
    for case in negation_constraints(conclusion, strictness):
        if is_satisfiable(premises + case, backend=backend):
            return False
    return True


def entails_all(
    premises: Iterable[LinearConstraint],
    conclusions: Iterable[LinearConstraint],
    backend: str = "highs",
) -> bool:
    """``premises ⊨ c`` for every ``c`` in ``conclusions``."""
    premises = tuple(premises)
    return all(entails(premises, c, backend=backend) for c in conclusions)


@dataclass
class RefinementReport:
    """Outcome of a refinement check, with the offending constraints if any."""

    holds: bool
    failed_assumptions: Tuple[LinearConstraint, ...] = ()
    failed_guarantees: Tuple[LinearConstraint, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def refines(
    refined: AGContract,
    abstract: AGContract,
    backend: str = "highs",
) -> RefinementReport:
    """Check contract refinement ``refined ⪯ abstract``.

    In the conjunctive fragment this is:

    * every assumption of ``abstract`` entails the assumptions of ``refined``
      being *weaker or equal*, i.e. ``A_abstract ⊨ a`` for each ``a`` in
      ``A_refined`` — the refined contract may not assume more;
    * the refined guarantees are stronger: ``A_abstract ∧ G_refined ⊨ g`` for
      each ``g`` in ``G_abstract``.
    """
    failed_assumptions = tuple(
        a
        for a in refined.assumptions
        if not entails(abstract.assumptions, a, backend=backend)
    )
    premises = tuple(abstract.assumptions) + tuple(refined.guarantees)
    failed_guarantees = tuple(
        g for g in abstract.guarantees if not entails(premises, g, backend=backend)
    )
    return RefinementReport(
        holds=not failed_assumptions and not failed_guarantees,
        failed_assumptions=failed_assumptions,
        failed_guarantees=failed_guarantees,
    )


def is_consistent(contract: AGContract, backend: str = "highs") -> bool:
    """A contract is consistent when its guarantees admit at least one behaviour."""
    return is_satisfiable(contract.guarantees, backend=backend)


def is_compatible(contract: AGContract, backend: str = "highs") -> bool:
    """A contract is compatible when its assumptions admit at least one behaviour."""
    return is_satisfiable(contract.assumptions, backend=backend)


def check_composition_consistency(
    contracts: Sequence[AGContract], backend: str = "highs"
) -> Optional[str]:
    """Sanity-check a set of contracts before synthesis.

    Returns ``None`` when the composition of all contracts is consistent and
    compatible, otherwise a human-readable explanation.  The flow-synthesis
    front end calls this to give designers an actionable error instead of a
    bare "infeasible" from the solver.
    """
    if not contracts:
        return None
    for contract in contracts:
        if not is_consistent(contract, backend=backend):
            return f"contract {contract.name!r} is inconsistent (unsatisfiable guarantees)"
        if not is_compatible(contract, backend=backend):
            return f"contract {contract.name!r} is incompatible (unsatisfiable assumptions)"
    composed = contracts[0]
    for contract in contracts[1:]:
        composed = composed.compose(contract)
    if not is_satisfiable(composed.all_constraints(), backend=backend):
        return "the composed contract admits no behaviour (assumptions ∧ guarantees unsatisfiable)"
    return None


def strongest_bound(
    constraints: Iterable[LinearConstraint],
    expr: LinearExpr,
    sense: str = "max",
    backend: str = "highs",
) -> Optional[float]:
    """Tightest bound on ``expr`` implied by ``constraints`` (None if unbounded).

    Useful for inspecting what throughput a traffic-system contract can
    actually promise — e.g. the maximum per-period station outflow of a
    product — without running the full synthesis.
    """
    model = _model_from_constraints(constraints, "bound-query", relax_integrality=False)
    for var in expr.variables():
        model.register(var)
    model = model.relaxed()
    relaxed_expr = LinearExpr(
        {model.variable_by_name(v.name): c for v, c in expr.coeffs.items()},
        expr.constant,
    )
    model.set_objective(relaxed_expr, sense=sense)
    result = solve_model(model, backend=backend)
    if result.status == SolveStatus.UNBOUNDED:
        return None
    if not result.status.has_solution:
        return None
    return result.objective
