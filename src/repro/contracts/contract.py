"""Assume-guarantee contracts over linear arithmetic constraints.

This module replaces the CHASE requirement-engineering framework [Nuzzo et al.,
DATE 2018] used by the paper to compile and compose component and workload
contracts.  A contract is the standard triple ``(V, A, G)`` of Benveniste et
al., *Contracts for System Design*:

* ``V`` — the component variables (here: per-cycle-period agent flows and
  pickup/drop-off rates, i.e. :class:`repro.solver.expressions.Variable`);
* ``A`` — assumptions: behaviours the component expects from its environment;
* ``G`` — guarantees: behaviours the component promises when the assumptions hold.

**Fragment.**  Assumptions and guarantees are *conjunctions of linear
(in)equalities* over bounded numeric variables.  This is exactly the fragment
needed by the methodology (Sec. IV-D of the paper) and it keeps every algebraic
query decidable with an LP/ILP call:

* satisfiability of a constraint set           → one feasibility solve;
* entailment ``Φ ⊨ c``                          → one LP per constraint
  (is ``Φ ∧ ¬c`` infeasible?);
* refinement, consistency, compatibility        → combinations of the above
  (see :mod:`repro.contracts.algebra`).

**Approximation note.**  In the general theory, composition weakens the
assumptions to ``(A1 ∧ A2) ∨ ¬(G1 ∧ G2)`` and saturation replaces ``G`` by
``G ∨ ¬A``.  Disjunction is not expressible in a conjunctive fragment, so
:meth:`AGContract.compose` and :meth:`AGContract.conjoin` use the *stronger*
(sound) conjunctive forms ``A1 ∧ A2`` / ``G1 ∧ G2``.  For the synthesis query
performed by the methodology — "find one flow assignment satisfying the
composition of all component contracts conjoined with the workload contract" —
the stronger form accepts a subset of the flows the exact form would accept,
so any flow synthesized here is also correct for the exact semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..solver.expressions import LinearConstraint, Variable, variables_of
from ..solver.model import ConstraintModel


class ContractError(ValueError):
    """Raised for malformed contracts or invalid contract operations."""


def _as_constraint_tuple(
    constraints: Optional[Iterable[LinearConstraint]],
) -> Tuple[LinearConstraint, ...]:
    items = tuple(constraints or ())
    for item in items:
        if not isinstance(item, LinearConstraint):
            raise ContractError(
                f"contracts take LinearConstraint items, got {type(item).__name__}; "
                "did a '==' comparison fall back to a plain bool?"
            )
    return items


@dataclass(frozen=True)
class AGContract:
    """An assume-guarantee contract ``(V, A, G)`` in the conjunctive linear fragment.

    Parameters
    ----------
    name:
        Diagnostic name ("component[C3]", "workload", "traffic-system", ...).
    assumptions:
        Conjunction of linear constraints the environment must satisfy.
    guarantees:
        Conjunction of linear constraints the component promises.
    variables:
        Optional explicit variable set; defaults to every variable mentioned
        by the assumptions and guarantees.
    """

    name: str
    assumptions: Tuple[LinearConstraint, ...] = ()
    guarantees: Tuple[LinearConstraint, ...] = ()
    variables: Tuple[Variable, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "assumptions", _as_constraint_tuple(self.assumptions))
        object.__setattr__(self, "guarantees", _as_constraint_tuple(self.guarantees))
        mentioned = set(variables_of(self.assumptions)) | set(variables_of(self.guarantees))
        declared = set(self.variables)
        if not declared:
            ordered = tuple(variables_of(tuple(self.assumptions) + tuple(self.guarantees)))
            object.__setattr__(self, "variables", ordered)
        else:
            missing = mentioned - declared
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise ContractError(
                    f"contract {self.name!r} uses undeclared variables: {names}"
                )

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def from_constraints(
        name: str,
        assumptions: Optional[Iterable[LinearConstraint]] = None,
        guarantees: Optional[Iterable[LinearConstraint]] = None,
    ) -> "AGContract":
        return AGContract(
            name=name,
            assumptions=tuple(assumptions or ()),
            guarantees=tuple(guarantees or ()),
        )

    # -- queries --------------------------------------------------------------
    @property
    def num_assumptions(self) -> int:
        return len(self.assumptions)

    @property
    def num_guarantees(self) -> int:
        return len(self.guarantees)

    def all_constraints(self) -> Tuple[LinearConstraint, ...]:
        """Assumptions and guarantees as one conjunction.

        A behaviour (variable assignment) is *in* the contract's implementation
        ∩ environment exactly when it satisfies this conjunction; this is the
        set the synthesis query draws from.
        """
        return tuple(self.assumptions) + tuple(self.guarantees)

    def satisfied_by(
        self, assignment: Mapping[Variable, float], tol: float = 1e-6
    ) -> bool:
        """True when ``assignment`` satisfies both assumptions and guarantees."""
        return all(c.is_satisfied(assignment, tol=tol) for c in self.all_constraints())

    def violated_constraints(
        self, assignment: Mapping[Variable, float], tol: float = 1e-6
    ) -> Tuple[LinearConstraint, ...]:
        """The assumptions / guarantees violated by ``assignment`` (diagnostics)."""
        return tuple(
            c for c in self.all_constraints() if not c.is_satisfied(assignment, tol=tol)
        )

    # -- algebra --------------------------------------------------------------
    def compose(self, other: "AGContract", name: Optional[str] = None) -> "AGContract":
        """Contract composition ``self ⊗ other`` (conjunctive approximation).

        Guarantees are joined; assumptions are joined (the exact rule would
        further weaken the assumptions by ``¬(G1 ∧ G2)``, which the conjunctive
        fragment cannot express — see the module docstring).
        """
        return AGContract(
            name=name or f"({self.name} ⊗ {other.name})",
            assumptions=self.assumptions + other.assumptions,
            guarantees=self.guarantees + other.guarantees,
        )

    def conjoin(self, other: "AGContract", name: Optional[str] = None) -> "AGContract":
        """Contract conjunction ``self ∧ other`` (conjunctive approximation).

        The conjunction combines the requirements of both contracts: the
        resulting guarantee is ``G1 ∧ G2``; the resulting assumption is the
        conjunctive strengthening ``A1 ∧ A2`` (the exact rule uses ``A1 ∨ A2``).
        """
        return AGContract(
            name=name or f"({self.name} ∧ {other.name})",
            assumptions=self.assumptions + other.assumptions,
            guarantees=self.guarantees + other.guarantees,
        )

    def __mul__(self, other: "AGContract") -> "AGContract":
        """``c1 * c2`` is composition (mirrors the ⊗ operator in the paper)."""
        return self.compose(other)

    def __and__(self, other: "AGContract") -> "AGContract":
        """``c1 & c2`` is conjunction (mirrors the ∧ operator in the paper)."""
        return self.conjoin(other)

    # -- export ---------------------------------------------------------------
    def to_model(self, name: Optional[str] = None) -> ConstraintModel:
        """Export ``A ∧ G`` as a :class:`ConstraintModel` (feasibility problem)."""
        model = ConstraintModel(name or f"contract[{self.name}]")
        for var in self.variables:
            model.register(var)
        for constraint in self.all_constraints():
            model.add_constraint(constraint)
        return model

    def renamed(self, name: str) -> "AGContract":
        return AGContract(
            name=name,
            assumptions=self.assumptions,
            guarantees=self.guarantees,
            variables=self.variables,
        )

    def summary(self) -> str:
        return (
            f"contract {self.name!r}: |V|={len(self.variables)}, "
            f"|A|={self.num_assumptions}, |G|={self.num_guarantees}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AGContract({self.summary()})"


def compose_all(
    contracts: Sequence[AGContract], name: str = "composition"
) -> AGContract:
    """Compose a collection of contracts into one (``⨂ contracts``).

    This is how the paper builds the traffic-system contract out of the
    per-component contracts.
    """
    if not contracts:
        return AGContract(name=name)
    assumptions: Tuple[LinearConstraint, ...] = ()
    guarantees: Tuple[LinearConstraint, ...] = ()
    for contract in contracts:
        assumptions += contract.assumptions
        guarantees += contract.guarantees
    return AGContract(name=name, assumptions=assumptions, guarantees=guarantees)


def top_contract(name: str = "true") -> AGContract:
    """The contract that assumes nothing and guarantees nothing (identity of ⊗)."""
    return AGContract(name=name)


def variable_index(contract: AGContract) -> Dict[str, Variable]:
    """Map variable names to variables (useful for tests and reporting)."""
    return {var.name: var for var in contract.variables}
