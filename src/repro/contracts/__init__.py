"""Assume-guarantee contract substrate (replaces the CHASE framework).

Public surface:

* :class:`AGContract`, :func:`compose_all`, :func:`top_contract` — the contract
  objects and the composition used to build the traffic-system contract;
* :func:`refines`, :func:`entails`, :func:`is_satisfiable`,
  :func:`is_consistent`, :func:`is_compatible`,
  :func:`check_composition_consistency` — decision procedures over the
  conjunctive linear fragment, all reduced to LP/ILP queries.
"""

from .algebra import (
    DEFAULT_STRICTNESS,
    RefinementReport,
    check_composition_consistency,
    entails,
    entails_all,
    is_compatible,
    is_consistent,
    is_satisfiable,
    negation_constraints,
    refines,
    strongest_bound,
)
from .contract import AGContract, ContractError, compose_all, top_contract, variable_index

__all__ = [
    "AGContract",
    "ContractError",
    "DEFAULT_STRICTNESS",
    "RefinementReport",
    "check_composition_consistency",
    "compose_all",
    "entails",
    "entails_all",
    "is_compatible",
    "is_consistent",
    "is_satisfiable",
    "negation_constraints",
    "refines",
    "strongest_bound",
    "top_contract",
    "variable_index",
]
