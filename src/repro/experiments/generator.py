"""Parametric scenario generators: grid sweeps, random sampling, named presets.

All generators produce lists of valid :class:`~repro.experiments.scenario.
ScenarioSpec` objects (combinations that violate the map generators' design
rules — e.g. an even number of shelf bands — are skipped or re-drawn), except
where a preset *deliberately* includes an infeasible instance to exercise the
runner's structured-failure path.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from .scenario import SWEEPABLE_FIELDS, ScenarioError, ScenarioSpec


def _check_axes(axes: Mapping[str, Sequence]) -> None:
    unknown = sorted(set(axes) - set(SWEEPABLE_FIELDS))
    if unknown:
        raise ScenarioError(
            f"unknown scenario field(s) {unknown}; sweepable fields: "
            f"{', '.join(SWEEPABLE_FIELDS)}"
        )
    for name, values in axes.items():
        if not values:
            raise ScenarioError(f"axis {name!r} has no values")


def grid_scenarios(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence],
    strict: bool = False,
) -> List[ScenarioSpec]:
    """The cartesian product of ``axes`` applied to ``base``.

    Invalid combinations are silently dropped unless ``strict`` is set (the
    serpentine constraints make some corners of a grid meaningless, e.g. even
    ``shelf_bands``); with ``strict`` the first invalid combination raises.
    """
    _check_axes(axes)
    names = sorted(axes)
    specs: List[ScenarioSpec] = []
    for values in itertools.product(*(axes[name] for name in names)):
        spec = replace(base, **dict(zip(names, values)))
        try:
            spec.validate()
        except ScenarioError:
            if strict:
                raise
            continue
        specs.append(spec)
    return specs


def random_scenarios(
    base: ScenarioSpec,
    count: int,
    ranges: Mapping[str, Sequence],
    seed: int = 0,
    max_draws_per_scenario: int = 100,
) -> List[ScenarioSpec]:
    """``count`` scenarios with each field in ``ranges`` drawn uniformly.

    Sampling is deterministic in ``seed``.  Invalid draws are rejected and
    re-drawn; duplicate draws (same :attr:`ScenarioSpec.scenario_id`) are also
    rejected so the sample explores ``count`` *distinct* points.  Raises when
    the ranges cannot produce enough valid distinct scenarios.
    """
    _check_axes(ranges)
    rng = random.Random(seed)
    names = sorted(ranges)
    specs: List[ScenarioSpec] = []
    seen: set = set()
    for index in range(count):
        for _ in range(max_draws_per_scenario):
            overrides = {name: rng.choice(list(ranges[name])) for name in names}
            spec = replace(base, **overrides)
            if spec.scenario_id in seen or not spec.is_valid():
                continue
            seen.add(spec.scenario_id)
            specs.append(spec)
            break
        else:
            raise ScenarioError(
                f"could not draw a valid distinct scenario #{index + 1} after "
                f"{max_draws_per_scenario} attempts; widen the ranges"
            )
    return specs


# ---------------------------------------------------------------------------
# named preset sweeps
# ---------------------------------------------------------------------------

def smoke_suite(seed: int = 0) -> List[ScenarioSpec]:
    """The CI smoke sweep: nine tiny scenarios covering both map kinds, both
    workload mixes, and one deliberately infeasible instance (demand beyond
    the warehouse's total stock) that must surface as a structured failure.
    """
    fulfillment = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=4,
        shelf_bands=3,
        shelf_depth=1,
        num_stations=1,
        num_products=6,
        horizon=900,
        seed=seed,
    )
    sorting = ScenarioSpec(
        kind="sorting",
        num_slices=2,
        shelf_columns=5,
        shelf_bands=1,
        num_stations=2,
        horizon=900,
        seed=seed,
    )
    specs = grid_scenarios(fulfillment, {"num_slices": (2, 3), "units": (12, 24)})
    specs += grid_scenarios(sorting, {"units": (8, 16)})
    specs.append(replace(fulfillment, units=18, workload_mix="zipf", name="smoke/zipf"))
    specs.append(replace(fulfillment, shelf_depth=2, units=16, name="smoke/deep-shelves"))
    # Demand far beyond total stock: the stock-sufficiency check rejects the
    # instance, which the runner must record as a structured failure.
    specs.append(replace(fulfillment, units=1_000_000, name="smoke/infeasible-stock"))
    return specs


def scaling_suite(seed: int = 0) -> List[ScenarioSpec]:
    """Throughput scaling in the number of slices at constant per-slice load."""
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=4,
        shelf_bands=3,
        shelf_depth=1,
        num_stations=2,
        num_products=8,
        horizon=1200,
        seed=seed,
    )
    return [
        replace(base, num_slices=slices, num_stations=slices, units=12 * slices)
        for slices in (2, 3, 4, 6)
    ]


def mix_suite(seed: int = 0) -> List[ScenarioSpec]:
    """Uniform vs. Zipf demand at matched totals, over three seeds."""
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=5,
        shelf_bands=3,
        num_stations=2,
        num_products=10,
        horizon=1200,
    )
    return grid_scenarios(
        base,
        {
            "workload_mix": ("uniform", "zipf"),
            "units": (20, 40),
            "seed": tuple(seed + i for i in range(3)),
        },
    )


def routing_suite(seed: int = 0) -> List[ScenarioSpec]:
    """Every execution mode over one small instance: the abstract replay and
    all four grid routers, plus a tight-window lifelong variant exercising the
    replanning-window trade-off.

    The map is deliberately tiny (one slice, five agents) so even optimal CBS
    routes it in well under a second — the point of the suite is the
    per-router congestion/inflation comparison, not scale.
    """
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
        seed=seed,
    )
    specs = grid_scenarios(
        base, {"router": ("abstract", "prioritized", "cbs", "ecbs", "lifelong")}
    )
    specs.append(
        replace(base, router="lifelong", routing_window=4, name="routing/lifelong-w4")
    )
    return specs


def routing_scale_suite(seed: int = 0) -> List[ScenarioSpec]:
    """Grid-routed execution at growing fleet sizes (the MAPF speed campaign).

    Sweeps the ECBS router over fulfillment instances of increasing slice
    count at constant per-slice load — the co-design fleet grows with the
    map — plus a windowed-lifelong variant of the largest instance.  Before
    the heuristic-table/SIPP search core this sweep was intractable; it now
    runs in seconds and serves as the scenario-level companion of the
    synthesized-fleet scaling section in ``benchmarks/test_bench_routing.py``.
    """
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=2,
        shelf_columns=5,
        shelf_bands=3,
        shelf_depth=1,
        num_stations=2,
        num_products=8,
        horizon=1200,
        router="ecbs",
        seed=seed,
    )
    specs = [
        replace(base, num_slices=slices, num_stations=slices, units=12 * slices)
        for slices in (2, 3, 4)
    ]
    specs.append(
        replace(
            specs[-1],
            router="lifelong",
            routing_window=8,
            name="routing-scale/lifelong-w8",
        )
    )
    return specs


def resilience_suite(seed: int = 0) -> List[ScenarioSpec]:
    """Failure injection over one small instance: the nominal baseline, each
    disruption family in isolation, a combined storm, and a no-recovery
    ablation of the storm (how much the online recovery policies buy back).

    The rates are deliberately aggressive for the short horizon, so every run
    observes genuine degradation — throughput retention, recovery latency and
    contract-breach windows come out non-trivial instead of vacuously perfect.
    """
    base = ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=3,
        shelf_bands=1,
        num_stations=1,
        num_products=2,
        units=4,
        horizon=150,
        seed=seed,
    )
    storm = "breakdown:0.02:12,slowdown:0.02:10,outage:0.01:20,block:0.02:8,surge:0.05:2"
    profiles = (
        ("resilience/nominal", "none"),
        ("resilience/breakdown", "breakdown:0.03:15"),
        ("resilience/slowdown", "slowdown:0.05:20"),
        ("resilience/outage", "outage:0.02:25"),
        ("resilience/block", "block:0.03:10"),
        ("resilience/surge", "surge:0.08:3,deadline:60"),
        ("resilience/storm", storm),
        ("resilience/storm-norecover", storm + ",norecover"),
    )
    return [
        replace(base, name=name, disruptions=disruptions)
        for name, disruptions in profiles
    ]


#: Named suites reachable from ``repro sweep --preset``.
PRESET_SUITES: Dict[str, Callable[[int], List[ScenarioSpec]]] = {
    "smoke": smoke_suite,
    "scaling": scaling_suite,
    "mix": mix_suite,
    "routing": routing_suite,
    "routing-scale": routing_scale_suite,
    "resilience": resilience_suite,
}


def preset_scenarios(name: str, seed: int = 0) -> List[ScenarioSpec]:
    """The scenarios of a named preset suite."""
    if name not in PRESET_SUITES:
        raise ScenarioError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESET_SUITES))}"
        )
    return PRESET_SUITES[name](seed)


def describe_suite(specs: Iterable[ScenarioSpec]) -> str:
    return "\n".join(spec.describe() for spec in specs)
