"""Run records and the append-only JSONL result store.

Each executed scenario produces exactly one :class:`RunRecord` — successful
or not — with the spec embedded, so a result file is self-describing: every
instance can be regenerated from its record alone.  Records are persisted as
one JSON object per line (schema-versioned in :mod:`repro.io.serialization`),
appended as runs complete; the store also keeps an in-memory index by
:attr:`~repro.experiments.scenario.ScenarioSpec.scenario_id` for aggregation
and regression comparison.

Wall-clock ``timings`` are reporting-only: :meth:`RunRecord.fingerprint`
excludes them, and is the payload two runs of the same seeded scenario must
reproduce bit for bit.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # POSIX advisory file locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None  # type: ignore[assignment]

from .scenario import ScenarioSpec

PathLike = Union[str, Path]

#: Run statuses, from best to worst.
STATUS_OK = "ok"
STATUS_INFEASIBLE = "infeasible"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
RUN_STATUSES = (STATUS_OK, STATUS_INFEASIBLE, STATUS_TIMEOUT, STATUS_ERROR)


@dataclass
class RunRecord:
    """The outcome of executing one scenario end to end."""

    spec: ScenarioSpec
    status: str
    message: str = ""
    #: Per-stage wall-clock seconds (generate, synthesis, decomposition,
    #: realization, validation, simulation).  Reporting only.
    timings: Dict[str, float] = field(default_factory=dict)
    num_agents: int = 0
    units_delivered: int = 0
    plan_feasible: Optional[bool] = None
    workload_serviced: Optional[bool] = None
    #: Digital-twin results (empty when the scenario did not simulate):
    #: units_served, realized/synthesized throughput, throughput_ratio,
    #: orders created/served, contract_violations, contracts_ok.
    sim: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {self.status!r}; expected {RUN_STATUSES}")

    # -- queries ----------------------------------------------------------------
    @property
    def scenario_id(self) -> str:
        return self.spec.scenario_id

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def failed(self) -> bool:
        """True for crashes/timeouts (an infeasible instance is a *result*)."""
        return self.status in (STATUS_TIMEOUT, STATUS_ERROR)

    @property
    def synthesis_seconds(self) -> float:
        return self.timings.get("synthesis", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    @property
    def contracts_ok(self) -> Optional[bool]:
        if "contracts_ok" not in self.sim:
            return None
        return bool(self.sim["contracts_ok"])

    @property
    def throughput_ratio(self) -> Optional[float]:
        value = self.sim.get("throughput_ratio")
        return None if value is None else float(value)

    def fingerprint(self) -> Dict:
        """The deterministic payload: everything except wall-clock timings.

        Two runs of the same scenario (same seed) must produce equal
        fingerprints — this is the property the determinism tests and the
        regression comparator rely on.
        """
        document = self.to_dict()
        document.pop("timings")
        return document

    def to_dict(self) -> Dict:
        from ..io.serialization import run_record_to_dict

        return run_record_to_dict(self)

    @staticmethod
    def from_dict(document: Dict) -> "RunRecord":
        from ..io.serialization import run_record_from_dict

        return run_record_from_dict(document)

    def summary(self) -> str:
        head = f"{self.spec.label:<44s} {self.status:<10s}"
        if self.ok:
            ratio = self.throughput_ratio
            sim_note = "" if ratio is None else f", sim ratio {ratio:.3f}"
            return (
                f"{head} agents={self.num_agents:<4d} delivered={self.units_delivered:<5d} "
                f"synthesis={self.synthesis_seconds:.3f}s{sim_note}"
            )
        return f"{head} {self.message}".rstrip()


class ResultStore:
    """Append-only JSONL store of :class:`RunRecord` documents."""

    def __init__(self, path: PathLike, load_existing: bool = True):
        """``load_existing=False`` skips parsing a pre-existing file — the
        pure append mode the sweep runner uses, which must not refuse to add
        records just because the file already holds foreign or older-schema
        lines."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records: List[RunRecord] = []
        self._by_id: Dict[str, List[RunRecord]] = {}
        self._lock = threading.Lock()
        #: Byte offset up to which the file has been indexed (refresh() tails
        #: from here to pick up lines appended by other processes).
        self._offset = 0
        if load_existing and self.path.exists():
            for record in load_records(self.path):
                self._remember(record)
            self._offset = self.path.stat().st_size
        elif self.path.exists():
            # Pure-append mode: never re-read foreign pre-existing lines.
            self._offset = self.path.stat().st_size

    def _remember(self, record: RunRecord) -> None:
        self._records.append(record)
        self._by_id.setdefault(record.scenario_id, []).append(record)

    def append(self, record: RunRecord) -> None:
        """Persist one record (one JSON line, flushed) and index it.

        Safe for concurrent appenders, both threads in one process (the store
        lock) and multiple processes on the same file: the line is fully built
        before any I/O and written by a single ``write`` call on a handle that
        holds a POSIX advisory lock (``flock``), so two writers can never
        interleave partial lines.  The lock is released when the handle
        closes; on platforms without ``fcntl`` the O_APPEND single-write path
        is the (weaker) fallback.
        """
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            with self.path.open("a") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                handle.write(line)
                handle.flush()
            self._remember(record)

    def refresh(self) -> int:
        """Index records appended to the file since the last read; return the count.

        This is what makes one JSONL file a *shared* warm tier for a fleet of
        server processes: each process appends under ``flock`` and every other
        process can tail the new complete lines on demand.  A cheap ``stat``
        short-circuits the common nothing-new case.  Records this process
        appended itself re-appear in the tail; exact duplicates (identical
        documents under an already-indexed id) are skipped, so the index never
        double-counts its own writes.
        """
        with self._lock:
            try:
                size = self.path.stat().st_size
            except OSError:
                return 0
            if size <= self._offset:
                return 0
            with self.path.open("rb") as handle:
                handle.seek(self._offset)
                data = handle.read(size - self._offset)
            added = 0
            consumed = 0
            for raw in data.splitlines(keepends=True):
                if not raw.endswith(b"\n"):
                    break  # a writer is mid-append; re-read next refresh
                consumed += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                    record = RunRecord.from_dict(document)
                except (ValueError, KeyError):
                    continue  # foreign/older-schema line; never poison the tail
                known = self._by_id.get(record.scenario_id, ())
                if any(existing.to_dict() == document for existing in known):
                    continue  # our own append (or a byte-identical re-run)
                self._remember(record)
                added += 1
            self._offset += consumed
            return added

    # -- queries ----------------------------------------------------------------
    def records(self) -> List[RunRecord]:
        return list(self._records)

    def by_id(self, scenario_id: str) -> List[RunRecord]:
        return list(self._by_id.get(scenario_id, []))

    def scenario_ids(self) -> List[str]:
        return list(self._by_id)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)


def load_records(path: PathLike) -> List[RunRecord]:
    """Read every record of a JSONL result file (blank lines are skipped)."""
    records: List[RunRecord] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not a JSON record: {error}") from error
        records.append(RunRecord.from_dict(document))
    return records
